"""Security-configuration analyses (paper §5, Appendix B).

Every function here consumes :class:`~repro.scanner.records.HostRecord`
lists — what crossed the wire — never the generator's ground truth, so
the pipeline has the same information boundary as the paper's.
"""

from repro.analysis.modes import ModeStatistics, analyze_security_modes
from repro.analysis.policies import PolicyStatistics, analyze_security_policies
from repro.analysis.certs import (
    CertificateConformance,
    analyze_certificate_conformance,
)
from repro.analysis.reuse import (
    ReuseAnalysis,
    analyze_certificate_reuse,
    find_shared_primes,
)
from repro.analysis.access import (
    AccessAnalysis,
    analyze_access_control,
    classify_system,
)
from repro.analysis.rights import RightsCdf, analyze_access_rights
from repro.analysis.longitudinal import (
    LongitudinalAnalysis,
    analyze_longitudinal,
)
from repro.analysis.breakdown import DeficitBreakdown, analyze_deficit_breakdown
from repro.analysis.deficits import DeficitSummary, analyze_deficits
from repro.analysis.pipeline import (
    ANALYSES,
    ANALYSIS_NAMES,
    AnalysisContext,
    AnalysisReport,
    run_analyses,
)

__all__ = [
    "ANALYSES",
    "ANALYSIS_NAMES",
    "AccessAnalysis",
    "AnalysisContext",
    "AnalysisReport",
    "run_analyses",
    "CertificateConformance",
    "DeficitBreakdown",
    "DeficitSummary",
    "LongitudinalAnalysis",
    "ModeStatistics",
    "PolicyStatistics",
    "ReuseAnalysis",
    "RightsCdf",
    "analyze_access_control",
    "analyze_access_rights",
    "analyze_certificate_conformance",
    "analyze_certificate_reuse",
    "analyze_deficit_breakdown",
    "analyze_deficits",
    "analyze_longitudinal",
    "analyze_security_modes",
    "analyze_security_policies",
    "classify_system",
    "find_shared_primes",
]
