"""Structures shared across service sets.

``EndpointDescription`` is the study's central observable: everything
the paper's Figures 3 and 6 report is read off the endpoint lists that
servers return from GetEndpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uabin.enums import ApplicationType, MessageSecurityMode, UserTokenType
from repro.uabin.builtin import LocalizedText
from repro.uabin.structs import UaStruct


@dataclass
class ApplicationDescription(UaStruct):
    """Identifies an OPC UA application (server or client).

    ``application_uri`` is the field the paper clusters manually to
    attribute servers to manufacturers (Section 4).
    """

    application_uri: str | None = None
    product_uri: str | None = None
    application_name: LocalizedText = field(default_factory=LocalizedText)
    application_type: ApplicationType = ApplicationType.SERVER
    gateway_server_uri: str | None = None
    discovery_profile_uri: str | None = None
    discovery_urls: list[str] | None = None

    _fields_ = [
        ("application_uri", "string"),
        ("product_uri", "string"),
        ("application_name", "localizedtext"),
        ("application_type", ApplicationType),
        ("gateway_server_uri", "string"),
        ("discovery_profile_uri", "string"),
        ("discovery_urls", ("array", "string")),
    ]


@dataclass
class UserTokenPolicy(UaStruct):
    """One way a client may authenticate during session activation."""

    policy_id: str | None = None
    token_type: UserTokenType = UserTokenType.ANONYMOUS
    issued_token_type: str | None = None
    issuer_endpoint_url: str | None = None
    security_policy_uri: str | None = None

    _fields_ = [
        ("policy_id", "string"),
        ("token_type", UserTokenType),
        ("issued_token_type", "string"),
        ("issuer_endpoint_url", "string"),
        ("security_policy_uri", "string"),
    ]


@dataclass
class EndpointDescription(UaStruct):
    """A connection offer: URL + security mode + policy + token types."""

    endpoint_url: str | None = None
    server: ApplicationDescription = field(default_factory=ApplicationDescription)
    server_certificate: bytes | None = None
    security_mode: MessageSecurityMode = MessageSecurityMode.NONE
    security_policy_uri: str | None = None
    user_identity_tokens: list[UserTokenPolicy] | None = None
    transport_profile_uri: str | None = None
    security_level: int = 0

    _fields_ = [
        ("endpoint_url", "string"),
        ("server", ApplicationDescription),
        ("server_certificate", "bytestring"),
        ("security_mode", MessageSecurityMode),
        ("security_policy_uri", "string"),
        ("user_identity_tokens", ("array", UserTokenPolicy)),
        ("transport_profile_uri", "string"),
        ("security_level", "byte"),
    ]

    def token_types(self) -> set[UserTokenType]:
        return {p.token_type for p in self.user_identity_tokens or []}


@dataclass
class SignatureData(UaStruct):
    """Algorithm URI + signature bytes."""

    algorithm: str | None = None
    signature: bytes | None = None

    _fields_ = [
        ("algorithm", "string"),
        ("signature", "bytestring"),
    ]


@dataclass
class SignedSoftwareCertificate(UaStruct):
    certificate_data: bytes | None = None
    signature: bytes | None = None

    _fields_ = [
        ("certificate_data", "bytestring"),
        ("signature", "bytestring"),
    ]
