"""Declarative codec for OPC UA service structures.

Every service message derives from :class:`UaStruct` and declares a
``_fields_`` table mapping attribute names to type specs:

* a string — one of the built-in codec names of
  :mod:`repro.uabin.builtin`, or the specials ``"variant"``,
  ``"datavalue"``, ``"extensionobject"``;
* a :class:`UaStruct` subclass — nested structure;
* an :class:`enum.IntEnum`/:class:`enum.IntFlag` subclass — encoded as
  Int32 (the OPC UA enum wire type);
* ``("array", spec)`` — length-prefixed array of any of the above.

The table *is* the wire format, which keeps each message definition
next to its fields and makes encode/decode impossible to drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime

from repro.uabin import builtin
from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.variant import DataValue, Variant
from repro.util.binary import BinaryReader, BinaryWriter, NotEnoughData


class DecodingError(Exception):
    """Raised when a message cannot be decoded."""


@dataclass(frozen=True)
class ExtensionObject:
    """A value wrapped with its binary-encoding NodeId.

    ``encoding`` 0 means no body, 1 a binary ByteString body, 2 an XML
    body (never produced here but tolerated on decode).
    """

    type_id: NodeId = field(default_factory=NodeId)
    body: bytes | None = None
    encoding: int = 0

    def encode(self, writer: BinaryWriter) -> None:
        self.type_id.encode(writer)
        if self.body is None:
            writer.write_uint8(0)
        else:
            writer.write_uint8(self.encoding or 1)
            builtin.write_bytestring(writer, self.body)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "ExtensionObject":
        type_id = NodeId.decode(reader)
        encoding = reader.read_uint8()
        if encoding == 0:
            return cls(type_id, None, 0)
        if encoding in (1, 2):
            return cls(type_id, builtin.read_bytestring(reader), encoding)
        raise DecodingError(f"invalid ExtensionObject encoding: {encoding}")

    @classmethod
    def null(cls) -> "ExtensionObject":
        return cls(NodeId(0, 0), None, 0)


def _compile_spec(spec):
    """Resolve a field spec to an ``(encode, decode)`` closure pair.

    Resolution (codec-table lookups, ``isinstance`` ladders, subclass
    checks) happens once per spec here instead of once per field per
    message on the hot path; the returned closures take only
    ``(writer, value)`` / ``(reader)``.
    """
    if isinstance(spec, tuple) and spec[0] == "array":
        encode_item, decode_item = _compile_spec(spec[1])

        def encode_array(writer, value):
            if value is None:
                writer.write_int32(-1)
                return
            writer.write_int32(len(value))
            for item in value:
                encode_item(writer, item)

        def decode_array(reader):
            length = reader.read_int32()
            if length < 0:
                return None
            if length > reader.remaining:
                raise DecodingError(
                    f"array length {length} exceeds message size"
                )
            return [decode_item(reader) for _ in range(length)]

        return encode_array, decode_array
    if isinstance(spec, str):
        if spec == "variant":

            def encode_variant(writer, value):
                (value if value is not None else Variant()).encode(writer)

            return encode_variant, Variant.decode
        if spec == "datavalue":

            def encode_datavalue(writer, value):
                (value if value is not None else DataValue()).encode(writer)

            return encode_datavalue, DataValue.decode
        if spec == "extensionobject":

            def encode_extensionobject(writer, value):
                (
                    value if value is not None else ExtensionObject.null()
                ).encode(writer)

            return encode_extensionobject, ExtensionObject.decode
        codec = builtin.CODECS.get(spec)
        if codec is None:
            raise TypeError(f"unsupported field spec: {spec!r}")
        return codec
    if isinstance(spec, type) and issubclass(spec, UaStruct):

        def encode_nested(writer, value):
            (value if value is not None else spec()).encode(writer)

        return encode_nested, spec.decode
    if isinstance(spec, type) and issubclass(spec, enum.IntEnum | enum.IntFlag):

        def encode_enum(writer, value):
            writer.write_int32(int(value))

        def decode_enum(reader):
            return spec(reader.read_int32())

        return encode_enum, decode_enum
    raise TypeError(f"unsupported field spec: {spec!r}")


def _encode_field(writer: BinaryWriter, spec, value) -> None:
    _compile_spec(spec)[0](writer, value)


def _decode_field(reader: BinaryReader, spec):
    return _compile_spec(spec)[1](reader)


#: class -> ((name, encode) ...), class -> ((name, decode) ...); keyed
#: by the concrete class so subclasses refining ``_fields_`` never see
#: a parent's plan.
_ENCODE_PLANS: dict[type, tuple] = {}
_DECODE_PLANS: dict[type, tuple] = {}


def _compile_plans(cls) -> tuple[tuple, tuple]:
    compiled = [
        (name, *_compile_spec(spec)) for name, spec in cls._fields_
    ]
    encoders = tuple((name, encode) for name, encode, _ in compiled)
    decoders = tuple((name, decode) for name, _, decode in compiled)
    _ENCODE_PLANS[cls] = encoders
    _DECODE_PLANS[cls] = decoders
    return encoders, decoders


class UaStruct:
    """Base class for declaratively encoded structures."""

    _fields_: list[tuple[str, object]] = []

    def encode(self, writer: BinaryWriter) -> None:
        cls = self.__class__
        plan = _ENCODE_PLANS.get(cls)
        if plan is None:
            plan = _compile_plans(cls)[0]
        for name, encode_field in plan:
            encode_field(writer, getattr(self, name))

    @classmethod
    def decode(cls, reader: BinaryReader):
        plan = _DECODE_PLANS.get(cls)
        if plan is None:
            plan = _compile_plans(cls)[1]
        values = {}
        name = None
        try:
            for name, decode_field in plan:
                values[name] = decode_field(reader)
        except (NotEnoughData, ValueError) as exc:
            raise DecodingError(
                f"cannot decode {cls.__name__}.{name}: {exc}"
            ) from exc
        return cls(**values)

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        self.encode(writer)
        return writer.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes):
        reader = BinaryReader(data)
        value = cls.decode(reader)
        return value


def encode_struct(value: UaStruct) -> bytes:
    return value.to_bytes()


def decode_struct(cls: type[UaStruct], data: bytes) -> UaStruct:
    return cls.from_bytes(data)


# --- request/response headers (used by every service) -----------------------


@dataclass
class RequestHeader(UaStruct):
    """Common header carried by every service request."""

    authentication_token: NodeId = field(default_factory=NodeId)
    timestamp: datetime | None = None
    request_handle: int = 0
    return_diagnostics: int = 0
    audit_entry_id: str | None = None
    timeout_hint: int = 0
    additional_header: ExtensionObject = field(default_factory=ExtensionObject.null)

    _fields_ = [
        ("authentication_token", "nodeid"),
        ("timestamp", "datetime"),
        ("request_handle", "uint32"),
        ("return_diagnostics", "uint32"),
        ("audit_entry_id", "string"),
        ("timeout_hint", "uint32"),
        ("additional_header", "extensionobject"),
    ]


@dataclass
class ResponseHeader(UaStruct):
    """Common header carried by every service response."""

    timestamp: datetime | None = None
    request_handle: int = 0
    service_result: StatusCode = field(default_factory=lambda: StatusCodes.Good)
    service_diagnostics: builtin.DiagnosticInfo = field(
        default_factory=builtin.DiagnosticInfo
    )
    string_table: list[str] | None = None
    additional_header: ExtensionObject = field(default_factory=ExtensionObject.null)

    _fields_ = [
        ("timestamp", "datetime"),
        ("request_handle", "uint32"),
        ("service_result", "statuscode"),
        ("service_diagnostics", "diagnosticinfo"),
        ("string_table", ("array", "string")),
        ("additional_header", "extensionobject"),
    ]
