"""The population specification: paper-exact joint distribution.

``build_default_spec()`` produces ~1114 server definitions grouped
into archetype rows.  Every row pins all security-relevant attributes;
``PopulationSpec.validate()`` recomputes each marginal the paper
publishes and raises on any mismatch, so the spec cannot silently
drift from the paper.

The derivation of the numbers is documented in DESIGN.md §5 and in
the comments below.  One deliberate extension beyond Table 2: the
paper's printed rows sum to 1111 of 1114 hosts ("unused combinations
... are omitted"); we add a 3-host {anonymous, certificate} combo in
the authentication-rejected column so column totals (541/80) match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deployments.profiles import (
    CERT_CLASSES,
    POLICY_GROUPS,
)
from repro.secure.policies import POLICY_NONE, policy_by_label
from repro.uabin.enums import MessageSecurityMode, UserTokenType

# Token combo shorthands (paper Table 2 rows).
A = (UserTokenType.ANONYMOUS,)
C = (UserTokenType.USERNAME,)
AC = (UserTokenType.ANONYMOUS, UserTokenType.USERNAME)
CC = (UserTokenType.USERNAME, UserTokenType.CERTIFICATE)
ACC = (
    UserTokenType.ANONYMOUS,
    UserTokenType.USERNAME,
    UserTokenType.CERTIFICATE,
)
CCT = (
    UserTokenType.USERNAME,
    UserTokenType.CERTIFICATE,
    UserTokenType.ISSUED_TOKEN,
)
ACCT = (
    UserTokenType.ANONYMOUS,
    UserTokenType.USERNAME,
    UserTokenType.CERTIFICATE,
    UserTokenType.ISSUED_TOKEN,
)
# The 3 omitted-row hosts (see module docstring): certificate-only.
Crt = (UserTokenType.CERTIFICATE,)

# Outcomes (Table 2 columns).
PROD = "accessible-production"
TEST = "accessible-test"
UNCL = "accessible-unclassified"
AUTH = "rejected-authentication"
SC = "rejected-secure-channel"

ACCESSIBLE_OUTCOMES = (PROD, TEST, UNCL)


@dataclass(frozen=True)
class SpecRow:
    """One archetype: ``count`` identical hosts."""

    row_id: str
    count: int
    policy_group: str
    mode_set: tuple[MessageSecurityMode, ...]
    token_combo: tuple[UserTokenType, ...]
    outcome: str
    cert_class: str
    manufacturer: str
    reuse_group: str | None = None
    # The one Table-2 host that advertises None endpoints but offers
    # anonymous only on its secure endpoints (making a certificate
    # rejection block access despite a usable None channel).
    anon_on_secure_only: bool = False
    # Hostile device-zoo personality (None: well-behaved).  Named rows
    # override certificates, endpoints, or the connection factory —
    # see :mod:`repro.deployments.personalities`.
    personality: str | None = None

    def __post_init__(self):
        if self.policy_group not in POLICY_GROUPS:
            raise ValueError(f"unknown policy group: {self.policy_group}")
        if self.cert_class not in CERT_CLASSES:
            raise ValueError(f"unknown certificate class: {self.cert_class}")
        if self.count <= 0:
            raise ValueError(f"row {self.row_id} has count {self.count}")
        if self.personality is not None:
            # Imported lazily: the personality module builds SpecRows
            # itself, so a module-level import would be circular.
            from repro.deployments.personalities import PERSONALITIES

            if self.personality not in PERSONALITIES:
                raise ValueError(
                    f"unknown personality: {self.personality}"
                )

    @property
    def accessible(self) -> bool:
        return self.outcome in ACCESSIBLE_OUTCOMES

    @property
    def offers_anonymous(self) -> bool:
        return UserTokenType.ANONYMOUS in self.token_combo

    def best_advertised_pair(self):
        """Strongest secure ``(policy, mode)`` this row advertises.

        This is, by construction, the pair the scanner's negotiated
        re-grab targets: the deployment generator builds one endpoint
        per (mode × non-None policy) cross product, so the strongest
        policy always pairs with the strongest secure mode.  Returns
        None for rows advertising only the None policy or only the
        None mode.
        """
        policies = [
            p
            for p in POLICY_GROUPS[self.policy_group].policies
            if p is not POLICY_NONE
        ]
        modes = [m for m in self.mode_set if m != MessageSecurityMode.NONE]
        if not policies or not modes:
            return None
        return (
            max(policies, key=lambda p: p.security_rank),
            max(modes, key=lambda m: m.security_rank),
        )

    def expected_negotiation(self):
        """Ground truth for the negotiated re-grab against this row.

        Returns ``(policy_uri, mode, error)`` mirroring the sparse
        ``negotiated_*``/``negotiation_error`` record fields: all three
        None for None-only rows, an error name for strict rows that
        reject the scanner's self-signed certificate, and the
        completed pair otherwise.
        """
        pair = self.best_advertised_pair()
        if pair is None:
            return (None, None, None)
        if self.outcome == SC:
            return (None, None, "BadSecurityChecksFailed")
        policy, mode = pair
        return (policy.uri, int(mode), None)


N = MessageSecurityMode.NONE
S = MessageSecurityMode.SIGN
SE = MessageSecurityMode.SIGN_AND_ENCRYPT

M_N = (N,)
M_NSE = (N, SE)
M_NSSE = (N, S, SE)
M_SE = (SE,)
M_SSE = (S, SE)
M_S = (S,)


def _rows() -> list[SpecRow]:
    """The full archetype table (derivation: DESIGN.md §5)."""
    rows: list[SpecRow] = []

    def add(row_id, count, group, modes, tokens, outcome, cert, manu,
            reuse=None, anon_secure_only=False):
        rows.append(
            SpecRow(
                row_id=row_id,
                count=count,
                policy_group=group,
                mode_set=modes,
                token_combo=tokens,
                outcome=outcome,
                cert_class=cert,
                manufacturer=manu,
                reuse_group=reuse,
                anon_on_secure_only=anon_secure_only,
            )
        )

    # --- PA: {None} only (270) — the 24 % with no security at all ----------
    add("PA-acc-prod-r5", 3, "PA", M_N, A, PROD, "sha1-2048", "Beckhoff", "R5")
    add("PA-acc-prod-r8", 4, "PA", M_N, A, PROD, "sha1-2048", "Bachmann", "R8")
    add("PA-acc-prod", 53, "PA", M_N, A, PROD, "sha1-2048", "Bachmann")
    add("PA-acc-test", 8, "PA", M_N, A, TEST, "sha1-2048", "other")
    add("PA-acc-uncl", 5, "PA", M_N, A, UNCL, "sha256-2048", "other")
    add("PA-acc-ac-r7", 3, "PA", M_N, AC, PROD, "sha1-2048", "other", "R7")
    add("PA-acc-ac", 42, "PA", M_N, AC, PROD, "sha1-2048", "Beckhoff")
    add("PA-auth-anon", 9, "PA", M_N, A, AUTH, "sha1-1024", "ControlCorp")
    add("PA-auth-ac", 20, "PA", M_N, AC, AUTH, "sha1-1024", "ControlCorp")
    add("PA-auth-c-r6", 3, "PA", M_N, C, AUTH, "sha1-2048", "Wago", "R6")
    add("PA-auth-c-r9", 4, "PA", M_N, C, AUTH, "sha1-2048", "Bachmann", "R9")
    add("PA-auth-c-cc", 31, "PA", M_N, C, AUTH, "sha1-2048", "ControlCorp")
    add("PA-auth-c-ba", 39, "PA", M_N, C, AUTH, "sha1-2048", "Bachmann")
    add("PA-auth-c-wg", 27, "PA", M_N, C, AUTH, "sha1-2048", "Wago")
    add("PA-auth-c-ot", 10, "PA", M_N, C, AUTH, "sha1-2048", "other")
    add("PA-auth-c-wg2", 1, "PA", M_N, C, AUTH, "sha1-2048", "Wago")
    add("PA-auth-c-bk2", 3, "PA", M_N, C, AUTH, "sha1-2048", "Beckhoff")
    add("PA-auth-c-bk", 5, "PA", M_N, C, AUTH, "sha256-2048", "Beckhoff")

    # --- P1: {N, D1} (24), most-secure D1; carries the 7 MD5 certs ---------
    add("P1-md5", 7, "P1", M_NSE, AC, PROD, "md5-1024", "Beckhoff")
    add("P1-sha1", 17, "P1", M_NSE, AC, PROD, "sha1-2048", "Wago")

    # --- P2: {N, D1, D2} (243), most-secure D2 ------------------------------
    # AutomataWerk's reuse certificates R1/R2/R3 live here and in P4.
    add("P2-sc-c", 21, "P2", M_NSE, C, SC, "sha1-2048", "AutomataWerk", "R1")
    add("P2-sc-cc", 7, "P2", M_NSE, CC, SC, "sha1-2048", "AutomataWerk", "R1")
    add("P2-auth-r1a", 117, "P2", M_NSSE, C, AUTH, "sha1-2048",
        "AutomataWerk", "R1")
    add("P2-auth-r1b", 28, "P2", M_NSE, C, AUTH, "sha1-2048",
        "AutomataWerk", "R1")
    add("P2-auth-r2", 9, "P2", M_NSE, C, AUTH, "sha1-2048", "AutomataWerk", "R2")
    add("P2-auth-r3", 6, "P2", M_NSE, C, AUTH, "sha1-2048", "AutomataWerk", "R3")
    add("P2-acc-ac", 47, "P2", M_NSE, AC, PROD, "sha1-1024", "Bachmann")
    add("P2-acc-ac2", 8, "P2", M_NSSE, AC, PROD, "sha1-1024", "Bachmann")

    # --- P3: {N, D2} (13), most-secure D2 -----------------------------------
    add("P3-auth", 13, "P3", M_NSE, C, AUTH, "sha1-2048", "Wago")

    # --- P4 family: {N, D1, D2, S2} (425) + S1 variant (10) ------------------
    # The S2 supporters whose certificates are too weak (SHA-1) sit here.
    add("P4-sc-token-override", 1, "P4", M_NSSE, AC, SC, "sha1-2048",
        "AutomataWerk", "R1", anon_secure_only=True)
    add("P4-sc-cct", 43, "P4", M_NSSE, CCT, SC, "sha1-2048",
        "AutomataWerk", "R1")
    add("P4-auth-c-r1", 43, "P4", M_NSSE, C, AUTH, "sha1-2048",
        "AutomataWerk", "R1")
    add("P4-auth-c-1024", 34, "P4", M_NSSE, C, AUTH, "sha1-1024", "Bachmann")
    add("P4-auth-ac", 18, "P4", M_NSSE, AC, AUTH, "sha1-1024", "Bachmann")
    add("P4-auth-cc", 4, "P4", M_NSSE, CC, AUTH, "sha1-1024", "Bachmann")
    add("P4-auth-acc", 17, "P4", M_NSSE, ACC, AUTH, "sha1-1024", "Bachmann")
    add("P4-auth-acct", 6, "P4", M_NSSE, ACCT, AUTH, "sha1-1024", "Bachmann")
    add("P4-auth-crt", 3, "P4", M_NSSE, Crt, AUTH, "sha1-1024", "Bachmann")
    # Accessible P4 hosts: all with SHA-1 certificates (keeps the 92 %
    # union exact; see DESIGN.md §5).
    add("P4-acc-a", 46, "P4", M_NSSE, A, PROD, "sha1-2048", "AutomataWerk", "R1")
    add("P4-acc-ac-prod", 4, "P4", M_NSSE, AC, PROD, "sha1-2048",
        "AutomataWerk", "R1")
    add("P4-acc-ac-test", 20, "P4", M_NSSE, AC, TEST, "sha1-2048",
        "AutomataWerk", "R1")
    add("P4-acc-ac-uncl", 47, "P4", M_NSSE, AC, UNCL, "sha1-2048",
        "AutomataWerk", "R1")
    add("P4-acc-ac-uncl2", 71, "P4", M_NSSE, AC, UNCL, "sha1-1024", "Bachmann")
    add("P4-acc-acc-test", 8, "P4", M_NSSE, ACC, TEST, "sha1-2048",
        "AutomataWerk", "R1")
    # SHA-256 certificates on D1-announcing hosts ("too strong", ↑75
    # together with Q1's 5): 55 + 5 (reuse group R4) + 10 (S1 hosts).
    add("P4-sha256", 55, "P4", M_NSSE, C, AUTH, "sha256-2048", "Bachmann")
    add("P4-sha256-r4", 5, "P4", M_NSSE, C, AUTH, "sha256-2048", "other", "R4")
    # The 10 S1-announcing hosts (SHA-256 certificates).
    add("P4s1-auth", 10, "P4s1", M_NSSE, C, AUTH, "sha256-2048", "Beckhoff")

    # --- P6: {N, S2} (42) ----------------------------------------------------
    add("P6-auth-sha1", 5, "P6", M_NSE, C, AUTH, "sha1-2048", "Beckhoff")
    add("P6-auth-sha256", 15, "P6", M_NSE, C, AUTH, "sha256-2048", "Beckhoff")
    add("P6-acc-sha1", 6, "P6", M_NSE, ACC, TEST, "sha1-2048", "Beckhoff")
    add("P6-acc-sha1-u", 1, "P6", M_NSE, ACC, UNCL, "sha1-2048", "Beckhoff")
    add("P6-acc-sha256", 15, "P6", M_NSE, ACC, UNCL, "sha256-2048", "Beckhoff")

    # --- P8: {N, D2, S2, S3} (8) — the 5 "too strong" 4096-bit keys ---------
    add("P8-auth", 1, "P8", M_NSE, C, AUTH, "sha256-4096", "other")
    add("P8-acc-prod", 4, "P8", M_NSE, ACC, PROD, "sha256-4096", "Wago")
    add("P8-acc-prod2", 2, "P8", M_NSE, ACC, PROD, "sha256-2048", "Wago")
    add("P8-acc-uncl", 1, "P8", M_NSE, ACC, UNCL, "sha256-2048", "Wago")

    # --- Q groups: no None policy — secure channel mandatory ----------------
    # The 71 accessible ones are the paper's "servers that otherwise
    # force clients to communicate securely"; the 8 rejected ones are
    # Table 2's secure-channel column for anonymous combos.
    add("Q1-acc-sha1", 8, "Q1", M_SE, AC, PROD, "sha1-2048", "Bachmann")
    add("Q1-acc-sha256", 2, "Q1", M_SE, AC, PROD, "sha256-2048", "Bachmann")
    add("Q1-sc", 3, "Q1", M_SE, ACC, SC, "sha256-2048", "Bachmann")
    add("Q2-acc-prod-sha1", 24, "Q2", M_SE, AC, PROD, "sha1-2048", "Bachmann")
    add("Q2-acc-prod-sha256", 6, "Q2", M_SE, AC, PROD, "sha256-2048", "Bachmann")
    add("Q2-acc-uncl-se", 8, "Q2", M_SE, AC, UNCL, "sha256-2048", "other")
    add("Q2-acc-uncl-ssse", 8, "Q2", M_SSE, AC, UNCL, "sha256-2048", "other")
    add("Q2-sc-ssse", 3, "Q2", M_SSE, AC, SC, "sha256-2048", "other")
    add("Q2-sc-s", 1, "Q2", M_S, AC, SC, "sha256-2048", "other")
    add("Q3-acc-a", 10, "Q3", M_SSE, A, PROD, "sha256-2048", "Wago")
    add("Q3-acc-acc", 5, "Q3", M_SSE, ACC, PROD, "sha256-2048", "other")
    add("Q3-sc", 1, "Q3", M_SSE, A, SC, "sha256-2048", "other")

    return rows


@dataclass
class PopulationSpec:
    rows: list[SpecRow] = field(default_factory=list)

    @property
    def total_servers(self) -> int:
        return sum(row.count for row in self.rows)

    def expand(self):
        """Yield (host_index, row) pairs, one per host."""
        index = 0
        for row in self.rows:
            for _ in range(row.count):
                yield index, row
                index += 1

    # --- marginal computations (used by validate and tests) ----------------

    def count_where(self, predicate) -> int:
        return sum(row.count for row in self.rows if predicate(row))

    def mode_supported(self, mode: MessageSecurityMode) -> int:
        return self.count_where(lambda r: mode in r.mode_set)

    def mode_least(self, mode: MessageSecurityMode) -> int:
        return self.count_where(
            lambda r: min(r.mode_set, key=lambda m: m.security_rank) == mode
        )

    def mode_most(self, mode: MessageSecurityMode) -> int:
        return self.count_where(
            lambda r: max(r.mode_set, key=lambda m: m.security_rank) == mode
        )

    def policy_supported(self, label: str) -> int:
        policy = policy_by_label(label)
        return self.count_where(
            lambda r: policy in POLICY_GROUPS[r.policy_group].policies
        )

    def policy_least(self, label: str) -> int:
        policy = policy_by_label(label)
        return self.count_where(
            lambda r: min(
                POLICY_GROUPS[r.policy_group].policies,
                key=lambda p: p.security_rank,
            )
            is policy
        )

    def policy_most(self, label: str) -> int:
        policy = policy_by_label(label)
        return self.count_where(
            lambda r: max(
                POLICY_GROUPS[r.policy_group].policies,
                key=lambda p: p.security_rank,
            )
            is policy
        )

    def table2_cell(self, tokens: tuple, outcome: str) -> int:
        return self.count_where(
            lambda r: set(r.token_combo) == set(tokens) and r.outcome == outcome
        )

    def deficient_count(self) -> int:
        """Hosts with at least one configuration deficit (paper: 92 %)."""
        return self.count_where(spec_row_is_deficient)

    def manufacturer_count(self, name: str) -> int:
        return self.count_where(lambda r: r.manufacturer == name)

    def reuse_group_size(self, group: str) -> int:
        return self.count_where(lambda r: r.reuse_group == group)

    def personality_counts(self) -> dict[str, int]:
        """Hosts per hostile personality — the anomaly ground truth.

        Empty for well-behaved populations (the default spec), which
        is exactly what the ``anomalies`` analysis reports for them.
        """
        counts: dict[str, int] = {}
        for row in self.rows:
            if row.personality is not None:
                counts[row.personality] = (
                    counts.get(row.personality, 0) + row.count
                )
        return counts

    def negotiation_expectations(self) -> dict:
        """Aggregate negotiated-security ground truth for this spec.

        ``by_pair`` counts hosts per expected negotiated
        ``(policy short label, mode value)``; ``failed`` counts hosts
        whose handshake the server aborts; ``none_only`` counts hosts
        with nothing to negotiate.  The registry analysis
        ``analyze_negotiated_security`` must reproduce these numbers
        from scan records alone.
        """
        by_pair: dict[tuple[str, int], int] = {}
        failed = 0
        none_only = 0
        for row in self.rows:
            policy_uri, mode, error = row.expected_negotiation()
            if error is not None:
                failed += row.count
            elif policy_uri is None:
                none_only += row.count
            else:
                label = policy_uri.rsplit("#", 1)[-1]
                key = (label, mode)
                by_pair[key] = by_pair.get(key, 0) + row.count
        return {"by_pair": by_pair, "failed": failed, "none_only": none_only}

    def validate(self) -> None:
        """Assert every paper marginal; raises AssertionError on drift."""
        expect = PAPER_TOTALS
        assert self.total_servers == expect["servers"], self.total_servers

        for group_key, group in POLICY_GROUPS.items():
            actual = self.count_where(lambda r: r.policy_group == group_key)
            assert actual == group.target_count, (
                f"group {group_key}: {actual} != {group.target_count}"
            )

        # Figure 3 left (modes).
        assert self.mode_supported(N) == 1035
        assert self.mode_supported(S) == 588
        assert self.mode_supported(SE) == 843
        assert self.mode_least(N) == 1035
        assert self.mode_least(S) == 28
        assert self.mode_least(SE) == 51
        assert self.mode_most(N) == 270
        assert self.mode_most(S) == 1
        assert self.mode_most(SE) == 843

        # Figure 3 right (policies).
        for label, supported, least, most in (
            ("N", 1035, 1035, 270),
            ("D1", 715, 13, 24),
            ("D2", 762, 50, 256),
            ("S1", 10, 0, 0),
            ("S2", 564, 16, 556),
            ("S3", 8, 0, 8),
        ):
            assert self.policy_supported(label) == supported, label
            assert self.policy_least(label) == least, label
            assert self.policy_most(label) == most, label

        # Table 2 cells.
        for tokens, outcome, count in TABLE2_CELLS:
            actual = self.table2_cell(tokens, outcome)
            assert actual == count, (tokens, outcome, actual, count)

        # Figure 4 certificate conformance.
        assert self._s2_nonmatching() == 409
        assert self._d1_too_strong() == 75
        assert self._d1_too_weak() == 7
        assert self._d2_too_strong() == 5

        # §5.3 certificate reuse.
        assert self.reuse_group_size("R1") == 385
        assert self.reuse_group_size("R2") == 9
        assert self.reuse_group_size("R3") == 6
        reuse_ge3 = {
            r.reuse_group for r in self.rows if r.reuse_group is not None
        }
        assert len(reuse_ge3) == 9, reuse_ge3

        # §5.4 key counts.
        anonymous = self.count_where(lambda r: r.offers_anonymous)
        assert anonymous == 572, anonymous
        accessible = self.count_where(lambda r: r.accessible)
        assert accessible == 493, accessible
        forced_secure = self.count_where(
            lambda r: r.accessible and N not in r.mode_set
        )
        assert forced_secure == 71, forced_secure

        # Overall deficit (92 %).
        assert self.deficient_count() == 1025, self.deficient_count()

    # --- certificate conformance helpers ------------------------------------

    def _cert_counts(self, policy_label: str):
        policy = policy_by_label(policy_label)
        for row in self.rows:
            if policy in POLICY_GROUPS[row.policy_group].policies:
                yield row, CERT_CLASSES[row.cert_class]

    def _s2_nonmatching(self) -> int:
        policy = policy_by_label("S2")
        return sum(
            row.count
            for row, cert in self._cert_counts("S2")
            if not cert.matches(policy)
        )

    def _d1_too_strong(self) -> int:
        return sum(
            row.count
            for row, cert in self._cert_counts("D1")
            if cert.signature_hash == "sha256"
        )

    def _d1_too_weak(self) -> int:
        return sum(
            row.count
            for row, cert in self._cert_counts("D1")
            if cert.signature_hash == "md5"
        )

    def _d2_too_strong(self) -> int:
        return sum(
            row.count
            for row, cert in self._cert_counts("D2")
            if cert.key_bits > 2048
        )


def spec_row_is_deficient(row: SpecRow) -> bool:
    """Ground-truth deficit predicate (mirrors the paper's classes)."""
    group = POLICY_GROUPS[row.policy_group]
    ranked = sorted(group.policies, key=lambda p: p.security_rank)
    most = ranked[-1]
    if not most.provides_security:
        return True  # None only
    if most.is_deprecated:
        return True  # deprecated policies as the best option
    cert = CERT_CLASSES[row.cert_class]
    s2_or_better = [p for p in group.policies if p.is_secure_and_current]
    if any(not cert.matches(p) for p in s2_or_better):
        return True  # too-weak certificate for the announced policy
    if row.reuse_group is not None:
        return True  # systematic certificate reuse
    if row.accessible:
        return True  # anonymous access to the address space
    return False


TABLE2_CELLS = (
    (A, PROD, 116), (A, TEST, 8), (A, UNCL, 5), (A, AUTH, 9), (A, SC, 1),
    (C, AUTH, 464), (C, SC, 21),
    (AC, PROD, 168), (AC, TEST, 20), (AC, UNCL, 134), (AC, AUTH, 38), (AC, SC, 5),
    (CC, AUTH, 4), (CC, SC, 7),
    (ACC, PROD, 11), (ACC, TEST, 14), (ACC, UNCL, 17), (ACC, AUTH, 17), (ACC, SC, 3),
    (CCT, SC, 43),
    (ACCT, AUTH, 6),
    (Crt, AUTH, 3),
)

PAPER_TOTALS = {
    "servers": 1114,
    "accessible": 493,
    "anonymous_offered": 572,
    "anonymous_offered_channel_ok": 563,
    "deficient": 1025,
    "forced_secure_accessible": 71,
    "secure_channel_rejected": 80,
    "auth_rejected": 541,
}


def build_default_spec() -> PopulationSpec:
    """The validated spec for the latest measurement (2020-08-30)."""
    spec = PopulationSpec(rows=_rows())
    spec.validate()
    return spec
