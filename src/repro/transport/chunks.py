"""Chunk splitting and reassembly.

Large service messages are split into chunks, each carried in its own
transport frame: intermediate chunks are marked ``C``, the last one
``F``, and ``A`` aborts an in-flight message.  This module handles the
*plaintext* chunk payloads; security headers/signatures are applied
per chunk by :mod:`repro.secure.channel` before framing.
"""

from __future__ import annotations

import enum

from repro.transport.messages import TransportError


class ChunkType(str, enum.Enum):
    INTERMEDIATE = "C"
    FINAL = "F"
    ABORT = "A"


def split_into_chunks(payload: bytes, max_chunk_body: int) -> list[tuple[str, bytes]]:
    """Split ``payload`` into (chunk_type, body) pairs.

    ``max_chunk_body`` is the maximum body per chunk after all
    security overhead has been budgeted by the caller.
    """
    if max_chunk_body <= 0:
        raise ValueError("max_chunk_body must be positive")
    if not payload:
        return [(ChunkType.FINAL.value, b"")]
    chunks = []
    for offset in range(0, len(payload), max_chunk_body):
        body = payload[offset : offset + max_chunk_body]
        is_last = offset + max_chunk_body >= len(payload)
        marker = ChunkType.FINAL.value if is_last else ChunkType.INTERMEDIATE.value
        chunks.append((marker, body))
    return chunks


class ChunkAssembler:
    """Reassembles chunk bodies into complete messages.

    Feed ``(chunk_type, body)`` pairs in arrival order; a completed
    message is returned when the final chunk arrives.
    """

    def __init__(self, max_message_size: int = 16 * 1024 * 1024,
                 max_chunk_count: int = 4096):
        self._parts: list[bytes] = []
        self._size = 0
        self._max_message_size = max_message_size
        self._max_chunk_count = max_chunk_count

    @property
    def pending(self) -> bool:
        return bool(self._parts)

    def feed(self, chunk_type: str, body: bytes) -> bytes | None:
        """Add one chunk; returns the full message when complete."""
        if chunk_type == ChunkType.ABORT.value:
            self._reset()
            return None
        if chunk_type not in (ChunkType.FINAL.value, ChunkType.INTERMEDIATE.value):
            raise TransportError(f"invalid chunk type: {chunk_type!r}")
        self._parts.append(body)
        self._size += len(body)
        if len(self._parts) > self._max_chunk_count:
            self._reset()
            raise TransportError("too many chunks in message")
        if self._size > self._max_message_size:
            self._reset()
            raise TransportError("message exceeds size limit")
        if chunk_type == ChunkType.FINAL.value:
            message = b"".join(self._parts)
            self._reset()
            return message
        return None

    def _reset(self) -> None:
        self._parts = []
        self._size = 0
