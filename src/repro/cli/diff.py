"""``repro diff``: longitudinal comparison of two stored studies."""

from __future__ import annotations

import json

from repro.cli.options import (
    add_executor,
    add_store,
    executor_from_args,
    require_catalog,
)


def register(commands) -> None:
    diff = commands.add_parser(
        "diff",
        help=(
            "compare two stored studies: deployment churn, policy and "
            "deficit deltas (streaming; never materializes a study)"
        ),
    )
    diff.add_argument("key_a", help="store key of the earlier study")
    diff.add_argument("key_b", help="store key of the later study")
    add_executor(diff)
    add_store(diff)
    diff.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the canonical StudyDiff JSON to PATH",
    )
    diff.set_defaults(handler=cmd_diff)


def cmd_diff(args) -> int:
    from repro.reporting.summary import render_study_diff

    catalog = require_catalog(args, "diff reads two stored studies")
    executor, workers = executor_from_args(args)
    try:
        result = catalog.diff(
            args.key_a, args.key_b, executor=executor, workers=workers
        )
    except KeyError as exc:
        raise SystemExit(f"repro: error: {exc.args[0]}")
    print(render_study_diff(result))
    if args.json:
        payload = result.to_json_dict()
        payload["digest"] = result.digest()
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0
