"""Service dispatch: request structure type → engine handler.

Separating the routing table from the engine keeps the engine's
handlers individually testable and makes the supported service surface
explicit.
"""

from __future__ import annotations

from repro.uabin.types_attribute import ReadRequest, WriteRequest
from repro.uabin.types_discovery import FindServersRequest, GetEndpointsRequest
from repro.uabin.types_method import CallRequest
from repro.uabin.types_query import (
    RegisterServerRequest,
    TranslateBrowsePathsRequest,
)
from repro.uabin.types_session import (
    ActivateSessionRequest,
    CloseSessionRequest,
    CreateSessionRequest,
)
from repro.uabin.types_view import BrowseNextRequest, BrowseRequest

# Requests that may be served without an activated session.
SESSIONLESS_REQUESTS = (
    GetEndpointsRequest,
    FindServersRequest,
    RegisterServerRequest,
    CreateSessionRequest,
    ActivateSessionRequest,
    CloseSessionRequest,
)

HANDLER_NAMES = {
    GetEndpointsRequest: "handle_get_endpoints",
    FindServersRequest: "handle_find_servers",
    RegisterServerRequest: "handle_register_server",
    CreateSessionRequest: "handle_create_session",
    ActivateSessionRequest: "handle_activate_session",
    CloseSessionRequest: "handle_close_session",
    BrowseRequest: "handle_browse",
    BrowseNextRequest: "handle_browse_next",
    ReadRequest: "handle_read",
    WriteRequest: "handle_write",
    CallRequest: "handle_call",
    TranslateBrowsePathsRequest: "handle_translate_browse_paths",
}


def requires_session(request) -> bool:
    return not isinstance(request, SESSIONLESS_REQUESTS)


def handler_for(engine, request):
    """Resolve the engine method serving ``request`` (or None)."""
    name = HANDLER_NAMES.get(type(request))
    if name is None:
        return None
    return getattr(engine, name)
