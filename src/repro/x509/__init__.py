"""Minimal X.509 v3 PKI in pure Python.

Exactly the certificate profile OPC UA application instance
certificates use: RSA keys, MD5/SHA-1/SHA-256-with-RSA signatures,
subject alternative name carrying the ApplicationURI, and the usual
key-usage extensions.  The paper's §5.2 analysis is driven entirely by
fields recovered by :func:`parse_certificate`.
"""

from repro.x509.name import DistinguishedName
from repro.x509.certificate import (
    Certificate,
    CertificateError,
    parse_certificate,
)
from repro.x509.builder import CertificateBuilder
from repro.x509.verify import verify_certificate_signature, verify_validity
from repro.x509.fingerprint import sha1_thumbprint

__all__ = [
    "Certificate",
    "CertificateBuilder",
    "CertificateError",
    "DistinguishedName",
    "parse_certificate",
    "sha1_thumbprint",
    "verify_certificate_signature",
    "verify_validity",
]
