"""``repro policies``: the Table 1 policy catalogue."""

from __future__ import annotations


def register(commands) -> None:
    policies = commands.add_parser(
        "policies", help="print the Table 1 policy catalogue"
    )
    policies.set_defaults(handler=cmd_policies)


def cmd_policies(args) -> int:
    from repro.reporting.tables import render_table
    from repro.secure.policies import ALL_POLICIES

    rows = [
        [
            policy.name,
            policy.short_label,
            "/".join(policy.certificate_hash) or "-",
            f"[{policy.min_key_bits}; {policy.max_key_bits}]"
            if policy.provides_security
            else "-",
            "deprecated"
            if policy.is_deprecated
            else ("insecure" if not policy.provides_security else "current"),
        ]
        for policy in ALL_POLICIES
    ]
    print(
        render_table(
            ["Policy", "A", "Cert. hash", "Key bits", "Status"],
            rows,
            title="OPC UA security policies (paper Table 1)",
        )
    )
    return 0
