"""Unit tests for the analysis modules on hand-built records."""

import pytest

from repro.analysis.access import analyze_access_control, classify_system
from repro.analysis.certs import (
    analyze_certificate_conformance,
    certificate_conformance_class,
)
from repro.analysis.deficits import analyze_deficits
from repro.analysis.modes import analyze_security_modes
from repro.analysis.policies import analyze_security_policies
from repro.analysis.reuse import analyze_certificate_reuse, find_shared_primes
from repro.analysis.rights import analyze_access_rights
from repro.scanner.records import (
    CertificateInfo,
    EndpointRecord,
    HostRecord,
    NodeSummary,
    SecureChannelAttempt,
    SessionAttempt,
)
from repro.secure.policies import (
    POLICY_BASIC128RSA15,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
)
from repro.uabin.enums import MessageSecurityMode, UserTokenType


def make_record(
    ip=1,
    modes_policies=((MessageSecurityMode.NONE, POLICY_NONE.uri),),
    tokens=(UserTokenType.ANONYMOUS,),
    cert: CertificateInfo | None = None,
    session_ok=False,
    sc_ok=True,
    namespaces=(),
    nodes=None,
    asn=64700,
    application_uri="urn:generic:ua-server:device:1",
):
    endpoints = [
        EndpointRecord(
            endpoint_url=f"opc.tcp://10.0.0.{ip}:4840/",
            security_mode=int(mode),
            security_policy_uri=policy_uri,
            token_types=[int(t) for t in tokens],
        )
        for mode, policy_uri in modes_policies
    ]
    secure = None
    has_secure = any(
        mode != MessageSecurityMode.NONE for mode, _ in modes_policies
    )
    if has_secure:
        secure = SecureChannelAttempt(
            security_policy_uri=modes_policies[-1][1],
            security_mode=int(modes_policies[-1][0]),
            success=sc_ok,
        )
    session = SessionAttempt(
        attempted=UserTokenType.ANONYMOUS in tokens,
        token_type=int(UserTokenType.ANONYMOUS),
        success=session_ok,
    )
    return HostRecord(
        ip=ip,
        port=4840,
        asn=asn,
        timestamp="2020-08-30T00:00:00",
        tcp_open=True,
        is_opcua=True,
        application_uri=application_uri,
        application_type=0,
        endpoints=endpoints,
        certificate=cert,
        secure_channel=secure,
        session=session,
        namespaces=list(namespaces),
        nodes=nodes,
    )


def make_cert(hash_name="sha1", bits=2048, thumb="aa", modulus=0xC0FFEE):
    return CertificateInfo(
        der_hex="",
        thumbprint_hex=thumb,
        signature_hash=hash_name,
        key_bits=bits,
        subject="O=Acme,CN=device",
        issuer="O=Acme,CN=device",
        not_before="2019-06-01T00:00:00",
        not_after="2029-06-01T00:00:00",
        application_uri=None,
        self_signed=True,
        signature_valid=True,
        modulus_hex=f"{modulus:x}",
    )


class TestModeAnalysis:
    def test_none_only(self):
        stats = analyze_security_modes([make_record()])
        assert stats.supported["N"] == 1
        assert stats.most_secure["N"] == 1
        assert stats.none_only == 1

    def test_mixed_modes(self):
        record = make_record(
            modes_policies=(
                (MessageSecurityMode.NONE, POLICY_NONE.uri),
                (MessageSecurityMode.SIGN, POLICY_BASIC256SHA256.uri),
                (
                    MessageSecurityMode.SIGN_AND_ENCRYPT,
                    POLICY_BASIC256SHA256.uri,
                ),
            )
        )
        stats = analyze_security_modes([record])
        assert stats.least_secure["N"] == 1
        assert stats.most_secure["S&E"] == 1
        assert stats.supports_secure_mode == 1


class TestPolicyAnalysis:
    def test_deprecated_detection(self):
        record = make_record(
            modes_policies=(
                (MessageSecurityMode.NONE, POLICY_NONE.uri),
                (MessageSecurityMode.SIGN, POLICY_BASIC128RSA15.uri),
            )
        )
        stats = analyze_security_policies([record])
        assert stats.supports_deprecated == 1
        assert stats.deprecated_as_best == 1
        assert stats.enforce_secure == 0

    def test_enforce_secure(self):
        record = make_record(
            modes_policies=(
                (MessageSecurityMode.SIGN, POLICY_BASIC256SHA256.uri),
            )
        )
        stats = analyze_security_policies([record])
        assert stats.enforce_secure == 1
        assert stats.secure_available == 1

    def test_unknown_policy_uri_ignored(self):
        record = make_record(
            modes_policies=((MessageSecurityMode.SIGN, "http://bogus"),)
        )
        stats = analyze_security_policies([record])
        assert stats.total_servers == 0


class TestCertConformance:
    @pytest.mark.parametrize(
        "policy,hash_name,bits,expected",
        [
            (POLICY_BASIC256SHA256, "sha256", 2048, "match"),
            (POLICY_BASIC256SHA256, "sha1", 2048, "weak"),
            (POLICY_BASIC256SHA256, "md5", 2048, "weak"),
            (POLICY_BASIC256SHA256, "sha256", 1024, "weak"),
            (POLICY_BASIC128RSA15, "sha256", 2048, "strong"),
            (POLICY_BASIC128RSA15, "sha1", 2048, "match"),
            (POLICY_BASIC128RSA15, "md5", 1024, "weak"),
            (POLICY_NONE, "md5", 512, "match"),
        ],
    )
    def test_classification(self, policy, hash_name, bits, expected):
        assert (
            certificate_conformance_class(policy, hash_name, bits) == expected
        )

    def test_bucket_counting(self):
        record = make_record(
            modes_policies=(
                (MessageSecurityMode.SIGN, POLICY_BASIC256SHA256.uri),
            ),
            cert=make_cert("sha1", 2048),
        )
        conformance = analyze_certificate_conformance([record])
        assert conformance.buckets["S2"].too_weak == 1
        assert conformance.weaker_than_best_policy == 1

    def test_self_signed_counting(self):
        record = make_record(cert=make_cert())
        conformance = analyze_certificate_conformance([record])
        assert conformance.self_signed == 1
        assert conformance.ca_signed == 0


class TestReuse:
    def test_groups_by_thumbprint(self):
        records = [
            make_record(ip=i, cert=make_cert(thumb="shared", modulus=999), asn=a)
            for i, a in ((1, 1), (2, 2), (3, 3))
        ] + [make_record(ip=4, cert=make_cert(thumb="solo", modulus=1001))]
        reuse = analyze_certificate_reuse(records)
        assert reuse.distinct_certificates == 2
        assert len(reuse.reused_on_3plus) == 1
        assert reuse.largest_group.host_count == 3
        assert reuse.largest_group.asn_count == 3

    def test_shared_primes_detected(self):
        p, q1, q2 = 1000003, 1000033, 1000037
        records = [
            make_record(ip=1, cert=make_cert(thumb="a", modulus=p * q1)),
            make_record(ip=2, cert=make_cert(thumb="b", modulus=p * q2)),
        ]
        assert find_shared_primes(records) == 1

    def test_no_shared_primes_for_coprime_keys(self):
        records = [
            make_record(ip=1, cert=make_cert(thumb="a", modulus=15)),
            make_record(ip=2, cert=make_cert(thumb="b", modulus=77)),
        ]
        assert find_shared_primes(records) == 0


class TestAccessAnalysis:
    def test_classification_heuristic(self):
        assert classify_system(["http://PLCopen.org/OpcUa/IEC61131-3/"]) == (
            "production"
        )
        assert classify_system(["http://examples.freeopcua.github.io"]) == "test"
        assert classify_system(["http://opcfoundation.org/UA/"]) == "unclassified"
        assert classify_system([]) == "unclassified"

    def test_test_marker_beats_production_marker(self):
        namespaces = [
            "http://examples.freeopcua.github.io",
            "http://PLCopen.org/OpcUa/IEC61131-3/",
        ]
        assert classify_system(namespaces) == "test"

    def test_accessible_counted(self):
        record = make_record(
            session_ok=True,
            namespaces=["http://PLCopen.org/OpcUa/IEC61131-3/"],
        )
        access = analyze_access_control([record])
        assert access.accessible == 1
        assert access.production == 1

    def test_sc_rejection_reason(self):
        record = make_record(
            modes_policies=(
                (MessageSecurityMode.SIGN, POLICY_BASIC256SHA256.uri),
            ),
            tokens=(UserTokenType.USERNAME,),
            sc_ok=False,
        )
        access = analyze_access_control([record])
        assert access.rejected_secure_channel == 1
        assert access.channel_ok == 0

    def test_auth_rejection_reason(self):
        record = make_record(tokens=(UserTokenType.USERNAME,))
        access = analyze_access_control([record])
        assert access.rejected_authentication == 1


class TestRights:
    def test_cdf_values(self):
        records = []
        for i, (r, w, e) in enumerate([(1.0, 0.2, 0.9), (0.98, 0.0, 0.5)]):
            records.append(
                make_record(
                    ip=i,
                    session_ok=True,
                    nodes=NodeSummary(
                        total_nodes=100,
                        variables=50,
                        methods=10,
                        readable_variables=int(50 * r),
                        writable_variables=int(50 * w),
                        executable_methods=int(10 * e),
                    ),
                )
            )
        cdf = analyze_access_rights(records)
        assert cdf.hosts_analyzed == 2
        assert cdf.fraction_of_hosts_above("writable", 0.10) == 0.5
        assert cdf.fraction_of_hosts_above("readable", 0.97) == 1.0

    def test_inaccessible_hosts_excluded(self):
        cdf = analyze_access_rights([make_record(session_ok=False)])
        assert cdf.hosts_analyzed == 0


class TestDeficits:
    def test_none_only_deficient(self):
        summary = analyze_deficits([make_record()])
        assert summary.none_only == 1
        assert summary.deficient == 1

    def test_secure_host_not_deficient(self):
        record = make_record(
            modes_policies=(
                (MessageSecurityMode.SIGN, POLICY_BASIC256SHA256.uri),
            ),
            tokens=(UserTokenType.USERNAME,),
            cert=make_cert("sha256", 2048),
        )
        summary = analyze_deficits([record])
        assert summary.deficient == 0

    def test_weak_cert_deficient(self):
        record = make_record(
            modes_policies=(
                (MessageSecurityMode.SIGN, POLICY_BASIC256SHA256.uri),
            ),
            tokens=(UserTokenType.USERNAME,),
            cert=make_cert("sha1", 2048),
        )
        summary = analyze_deficits([record])
        assert summary.weak_certificate == 1
        assert summary.deficient == 1

    def test_reuse_deficient(self):
        records = [
            make_record(
                ip=i,
                modes_policies=(
                    (MessageSecurityMode.SIGN, POLICY_BASIC256SHA256.uri),
                ),
                tokens=(UserTokenType.USERNAME,),
                cert=make_cert("sha256", 2048, thumb="dup", modulus=123457),
            )
            for i in range(3)
        ]
        summary = analyze_deficits(records)
        assert summary.certificate_reuse == 3
        assert summary.deficient == 3
