"""Overall deficit aggregation (the paper's 92 % headline).

A server is *deficiently configured* if any of the paper's deficit
classes applies:

1. no communication security at all (mode/policy None only);
2. only deprecated SHA-1 policies as the best option;
3. a certificate too weak for an announced current-secure policy;
4. a certificate shared with at least two other hosts;
5. anonymous read/write access to the address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.certs import certificate_conformance_class
from repro.analysis.policies import record_policies
from repro.analysis.reuse import analyze_certificate_reuse
from repro.scanner.records import HostRecord
from repro.secure.policies import SECURE_POLICIES

#: The paper's deficit classes in presentation order — the exact flag
#: strings :func:`host_deficits` emits; each maps to the
#: :class:`DeficitSummary` counter field with ``-`` replaced by ``_``.
DEFICIT_CLASSES = (
    "none-only",
    "deprecated-best",
    "weak-certificate",
    "certificate-reuse",
    "anonymous-access",
)


@dataclass
class DeficitSummary:
    total_servers: int = 0
    none_only: int = 0
    deprecated_best: int = 0
    weak_certificate: int = 0
    certificate_reuse: int = 0
    anonymous_access: int = 0
    deficient: int = 0
    per_host_flags: list[set] = field(default_factory=list)

    @property
    def deficient_fraction(self) -> float:
        if not self.total_servers:
            return 0.0
        return self.deficient / self.total_servers


def host_deficits(record: HostRecord, reused_thumbprints: set[str]) -> set[str]:
    """The deficit classes applying to one scanned host."""
    flags: set[str] = set()
    policies = record_policies(record)
    if policies:
        strongest = max(policies, key=lambda p: p.security_rank)
        if not strongest.provides_security:
            flags.add("none-only")
        elif strongest.is_deprecated:
            flags.add("deprecated-best")
    certificate = record.certificate
    if certificate is not None:
        current_secure = [p for p in policies if p in set(SECURE_POLICIES)]
        if any(
            certificate_conformance_class(
                p, certificate.signature_hash, certificate.key_bits
            )
            == "weak"
            for p in current_secure
        ):
            flags.add("weak-certificate")
        if certificate.thumbprint_hex in reused_thumbprints:
            flags.add("certificate-reuse")
    if record.anonymous_accessible():
        flags.add("anonymous-access")
    return flags


def analyze_deficits(records: list[HostRecord]) -> DeficitSummary:
    reuse = analyze_certificate_reuse(records)
    reused_thumbprints = {g.thumbprint_hex for g in reuse.reused_on_3plus}
    summary = DeficitSummary(total_servers=len(records))
    for record in records:
        flags = host_deficits(record, reused_thumbprints)
        summary.per_host_flags.append(flags)
        if "none-only" in flags:
            summary.none_only += 1
        if "deprecated-best" in flags:
            summary.deprecated_best += 1
        if "weak-certificate" in flags:
            summary.weak_certificate += 1
        if "certificate-reuse" in flags:
            summary.certificate_reuse += 1
        if "anonymous-access" in flags:
            summary.anonymous_access += 1
        if flags:
            summary.deficient += 1
    return summary
