"""Method service set: Call.

The access-rights analysis (paper Figure 7) checks which methods the
anonymous user may *execute*; the scanner determines executability
from the UserExecutable attribute and never actually calls methods on
scanned systems, mirroring the paper's ethics stance.  The Call
service is nevertheless fully implemented and exercised in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.structs import RequestHeader, ResponseHeader, UaStruct
from repro.uabin.variant import Variant


@dataclass
class CallMethodRequest(UaStruct):
    object_id: NodeId = field(default_factory=NodeId)
    method_id: NodeId = field(default_factory=NodeId)
    input_arguments: list[Variant] | None = None

    _fields_ = [
        ("object_id", "nodeid"),
        ("method_id", "nodeid"),
        ("input_arguments", ("array", "variant")),
    ]


@dataclass
class CallMethodResult(UaStruct):
    status_code: StatusCode = field(default_factory=lambda: StatusCodes.Good)
    input_argument_results: list[StatusCode] | None = None
    input_argument_diagnostic_infos: list | None = None
    output_arguments: list[Variant] | None = None

    _fields_ = [
        ("status_code", "statuscode"),
        ("input_argument_results", ("array", "statuscode")),
        ("input_argument_diagnostic_infos", ("array", "diagnosticinfo")),
        ("output_arguments", ("array", "variant")),
    ]


@dataclass
class CallRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    methods_to_call: list[CallMethodRequest] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("methods_to_call", ("array", CallMethodRequest)),
    ]


@dataclass
class CallResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    results: list[CallMethodResult] | None = None
    diagnostic_infos: list | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("results", ("array", CallMethodResult)),
        ("diagnostic_infos", ("array", "diagnosticinfo")),
    ]


@dataclass
class ServiceFault(UaStruct):
    """Generic failure response; the status lives in the header."""

    response_header: ResponseHeader = field(default_factory=ResponseHeader)

    _fields_ = [("response_header", ResponseHeader)]
