"""Client-side error hierarchy.

The scanner distinguishes *where* a connection attempt failed — at the
transport, during secure-channel establishment, or at session
authentication — because the paper's Table 2 classifies hosts by
exactly this failure point.
"""

from __future__ import annotations

from repro.uabin.statuscodes import StatusCode


class UaClientError(Exception):
    """Base class for client failures."""


class ConnectionClosedError(UaClientError):
    """The peer closed the connection or never answered."""


class TransportRejectedError(UaClientError):
    """The server answered with an ERR transport message."""

    def __init__(self, status: StatusCode, reason: str | None):
        super().__init__(f"{status.name}: {reason or ''}")
        self.status = status
        self.reason = reason


class ServiceFaultError(UaClientError):
    """The server answered a service request with a ServiceFault."""

    def __init__(self, status: StatusCode):
        super().__init__(status.name)
        self.status = status
