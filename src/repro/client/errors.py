"""Client-side error hierarchy.

The scanner distinguishes *where* a connection attempt failed — at the
transport, during secure-channel establishment, or at session
authentication — because the paper's Table 2 classifies hosts by
exactly this failure point.
"""

from __future__ import annotations

from repro.uabin.statuscodes import StatusCode


class UaClientError(Exception):
    """Base class for client failures."""

    #: Coarse failure class (see :func:`categorize_error`).
    category = "protocol"


class ConnectionClosedError(UaClientError):
    """The peer closed the connection or never answered."""

    category = "closed"


class TransportRejectedError(UaClientError):
    """The server answered with an ERR transport message."""

    category = "transport-rejected"

    def __init__(self, status: StatusCode, reason: str | None):
        super().__init__(f"{status.name}: {reason or ''}")
        self.status = status
        self.reason = reason


class ServiceFaultError(UaClientError):
    """The server answered a service request with a ServiceFault."""

    category = "service-fault"

    def __init__(self, status: StatusCode):
        super().__init__(status.name)
        self.status = status


#: Categories describing how the *connection* failed, as opposed to
#: what the peer said on it.  The grabber records these on host
#: records so analyses can separate timeouts and resets from hosts
#: that answered with a non-OPC-UA payload.
CONNECTION_FAILURE_CATEGORIES = frozenset(
    {"timeout", "refused", "unreachable", "closed", "transport-rejected"}
)

#: Every legal error category, connection-level and service-level.
#: :func:`categorize_error` can return nothing outside this set, and
#: the taxonomy-completeness test proves each one *reachable* via a
#: dedicated device-zoo personality.
ERROR_CATEGORIES = CONNECTION_FAILURE_CATEGORIES | frozenset(
    {"service-fault", "protocol"}
)


def categorize_error(exc: BaseException) -> str:
    """Coarse failure class for the paper's rejection breakdown.

    One of ``timeout`` / ``refused`` / ``unreachable`` / ``closed`` /
    ``transport-rejected`` / ``service-fault`` / ``protocol``.  Error
    classes across the stack carry a ``category`` attribute (client
    errors above, transport errors, the simulator's connect
    exceptions); OS-level errors from live sockets are mapped here.
    """
    explicit = getattr(exc, "category", None)
    if isinstance(explicit, str):
        return explicit
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, ConnectionRefusedError):
        return "refused"
    if isinstance(exc, (ConnectionError, OSError)):
        return "unreachable"
    return "protocol"
