"""The simulated lane's stall deadline (slow-loris defense).

Regression suite for the deadline-enforcement bug: a peer that kept
dribbling single bytes reset no timer anywhere, so one hostile writer
could pin a scan task forever.  ``SimSocket.read`` now accounts the
*cumulative* seconds spent in ``poll()`` per socket and raises
:class:`TransportTimeout` once they cross the network's stall
deadline — dribbling never refreshes the budget.
"""

from __future__ import annotations

import pytest

from repro.netsim.net import (
    DEFAULT_STALL_TIMEOUT_S,
    SimHost,
    SimNetwork,
    SimSocket,
)
from repro.netsim.latency import ZeroLatency
from repro.transport.messages import TransportTimeout
from repro.util.ipaddr import parse_ipv4
from repro.util.simtime import SimClock, parse_utc


class DribblingConnection:
    """Stalls ``interval_s`` per poll, then yields a single byte."""

    def __init__(self, interval_s: float):
        self.closed = False
        self.interval_s = interval_s
        self.polls = 0

    def receive(self, data: bytes) -> bytes:
        return b""

    def poll(self) -> tuple[float, bytes]:
        self.polls += 1
        return (self.interval_s, b"\x00")


class AnsweringConnection:
    """A normal synchronous responder — no ``poll`` attribute."""

    closed = False

    def receive(self, data: bytes) -> bytes:
        return b"pong"


def make_socket(connection, stall_timeout_s=DEFAULT_STALL_TIMEOUT_S):
    clock = SimClock(parse_utc("2020-08-30"))
    return (
        SimSocket(
            connection,
            clock,
            ZeroLatency(),
            asn=None,
            stall_timeout_s=stall_timeout_s,
        ),
        clock,
    )


class TestStallDeadline:
    def test_dribbling_peer_hits_deadline(self):
        connection = DribblingConnection(interval_s=7.5)
        socket, clock = make_socket(connection)
        start = clock.now()
        # Each read returns the dribbled byte; the budget accumulates.
        for _ in range(4):
            assert socket.read() == b"\x00"
        with pytest.raises(TransportTimeout, match="stalled"):
            socket.read()
        assert socket.closed
        elapsed = (clock.now() - start).total_seconds()
        assert elapsed == pytest.approx(DEFAULT_STALL_TIMEOUT_S)

    def test_budget_is_cumulative_across_reads(self):
        """The deadline must not reset per read() call — that is the
        exact bug a byte-per-poll writer exploits."""
        connection = DribblingConnection(interval_s=10.0)
        socket, _ = make_socket(connection, stall_timeout_s=25.0)
        assert socket.read() == b"\x00"  # 10 s
        assert socket.read() == b"\x00"  # 20 s
        assert socket.read() == b"\x00"  # 30 s — budget now exhausted
        with pytest.raises(TransportTimeout):
            socket.read()
        assert connection.polls == 3

    def test_clock_advances_by_stalled_time(self):
        connection = DribblingConnection(interval_s=4.0)
        socket, clock = make_socket(connection)
        start = clock.now()
        socket.read()
        assert (clock.now() - start).total_seconds() == pytest.approx(4.0)

    def test_custom_deadline_respected(self):
        connection = DribblingConnection(interval_s=1.0)
        socket, _ = make_socket(connection, stall_timeout_s=3.0)
        for _ in range(3):
            socket.read()
        with pytest.raises(TransportTimeout):
            socket.read()

    def test_network_threads_deadline_through_connect(self):
        net = SimNetwork(
            SimClock(parse_utc("2020-08-30")), stall_timeout_s=2.0
        )
        host = SimHost(address=parse_ipv4("10.0.0.1"), asn=None)
        host.listen(4840, lambda: DribblingConnection(interval_s=1.0))
        net.add_host(host)
        socket = net.connect(parse_ipv4("10.0.0.1"), 4840)
        socket.read()
        socket.read()
        with pytest.raises(TransportTimeout):
            socket.read()

    def test_pollless_connection_unaffected(self):
        """Connections without ``poll`` keep the historical semantics:
        read() returns whatever write() buffered, empty or not — the
        golden digests pin this path bit-for-bit."""
        socket, clock = make_socket(AnsweringConnection())
        start = clock.now()
        socket.write(b"ping")
        assert socket.read() == b"pong"
        assert socket.read() == b""  # no data, no stall accounting
        assert not socket.closed
        assert (clock.now() - start).total_seconds() == 0.0

    def test_stall_stops_when_peer_closes(self):
        """A poller that hangs up mid-dribble ends the wait without
        burning the rest of the budget."""

        class ClosingDribbler(DribblingConnection):
            def poll(self):
                self.closed = True
                return (1.0, b"")

        socket, clock = make_socket(ClosingDribbler(interval_s=1.0))
        start = clock.now()
        assert socket.read() == b""
        assert (clock.now() - start).total_seconds() == pytest.approx(1.0)
