"""§5.2 — actually used security parameters (Figure 4).

For every security policy: the distribution of served certificates by
signature hash function and key length among the servers announcing
that policy, split into *matching*, *too weak*, and *too strong*
relative to the policy's certificate requirements (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.policies import record_policies
from repro.crypto.hashes import get_hash
from repro.scanner.records import HostRecord
from repro.secure.policies import ALL_POLICIES, SECURE_POLICIES, SecurityPolicy


@dataclass
class PolicyCertBucket:
    """Certificate statistics for one policy column of Figure 4."""

    policy_label: str
    total: int = 0
    by_hash_and_bits: dict[tuple[str, int], int] = field(default_factory=dict)
    matching: int = 0
    too_weak: int = 0
    too_strong: int = 0


@dataclass
class CertificateConformance:
    buckets: dict[str, PolicyCertBucket] = field(default_factory=dict)
    self_signed: int = 0
    ca_signed: int = 0
    servers_with_certificate: int = 0
    # §5.2 takeaway: servers whose most secure policy is current but
    # whose certificate is weaker than it requires (paper: 409 via S2).
    weaker_than_best_policy: int = 0


def certificate_conformance_class(
    policy: SecurityPolicy, signature_hash: str, key_bits: int
) -> str:
    """Classify a certificate against one policy: match/weak/strong.

    * hash not allowed & ranked below every allowed hash → too weak
      (e.g. MD5 or SHA-1 where SHA-256 is required);
    * hash not allowed & ranked above → too strong (e.g. SHA-256 on
      Basic128Rsa15);
    * key below the range → too weak; above → too strong.
    """
    if not policy.provides_security:
        return "match"
    allowed = policy.certificate_hash
    if signature_hash not in allowed:
        rank = get_hash(signature_hash).strength_rank
        allowed_ranks = [get_hash(h).strength_rank for h in allowed]
        return "weak" if rank < min(allowed_ranks) else "strong"
    if key_bits < policy.min_key_bits:
        return "weak"
    if key_bits > policy.max_key_bits:
        return "strong"
    return "match"


def analyze_certificate_conformance(
    records: list[HostRecord],
) -> CertificateConformance:
    result = CertificateConformance(
        buckets={
            p.short_label: PolicyCertBucket(p.short_label) for p in ALL_POLICIES
        }
    )
    secure = set(SECURE_POLICIES)
    for record in records:
        certificate = record.certificate
        if certificate is None:
            continue
        result.servers_with_certificate += 1
        if certificate.self_signed:
            result.self_signed += 1
        else:
            result.ca_signed += 1
        policies = record_policies(record)
        for policy in policies:
            bucket = result.buckets[policy.short_label]
            bucket.total += 1
            key = (certificate.signature_hash, certificate.key_bits)
            bucket.by_hash_and_bits[key] = bucket.by_hash_and_bits.get(key, 0) + 1
            verdict = certificate_conformance_class(
                policy, certificate.signature_hash, certificate.key_bits
            )
            if verdict == "match":
                bucket.matching += 1
            elif verdict == "weak":
                bucket.too_weak += 1
            else:
                bucket.too_strong += 1
        # Weaker-than-advertised for the host's best current policy.
        best_secure = [p for p in policies if p in secure]
        if best_secure:
            strongest = max(best_secure, key=lambda p: p.security_rank)
            verdict = certificate_conformance_class(
                strongest, certificate.signature_hash, certificate.key_bits
            )
            if verdict == "weak":
                result.weaker_than_best_policy += 1
    return result
