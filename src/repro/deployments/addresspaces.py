"""Address-space templates for the deployment population.

Three classes, matching the paper's classification heuristic (§5.4):

* **production** — namespaces referencing the manufacturer and an
  industrial standard (IEC 61131-3), realistic process-variable names;
* **test** — namespaces of example applications (the paper cites the
  FreeOpcUa examples);
* **unclassified** — standard namespace only.

Each accessible host also carries a *rights profile* (fractions of
variables readable/writable and methods executable by the anonymous
user); the per-host profiles are drawn so the population reproduces
Figure 7's CDFs: 90 % of hosts expose >97 % of nodes readable, 33 %
allow writes to >10 %, 61 % allow executing >86 % of methods.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

from repro.deployments.manufacturers import Manufacturer
from repro.server.access import Permissions
from repro.server.addressspace import AddressSpace, NodeIds, ReferenceTypeIds
from repro.server.nodes import MethodNode, ObjectNode, VariableNode
from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.nodeid import NodeId
from repro.uabin.variant import Variant, VariantType
from repro.util.rng import DeterministicRng

IEC61131_NAMESPACE = "http://PLCopen.org/OpcUa/IEC61131-3/"
FREEOPCUA_EXAMPLE_NAMESPACE = "http://examples.freeopcua.github.io"

# Realistic industrial tag vocabulary; the paper quotes
# m3InflowPerHour and rSetFillLevel as examples of readable and
# writable nodes it observed.
_VARIABLE_NAMES = (
    "m3InflowPerHour", "rSetFillLevel", "rActFillLevel", "iPumpState",
    "rTankPressure", "rBoilerTemperature", "iValvePosition",
    "bEmergencyStop", "rFlowSetpoint", "iCycleCounter", "rMotorCurrent",
    "rOilLevel", "bDoorContact", "iParkingSlotsFree", "sLicensePlate",
    "rConveyorSpeed", "iBatchNumber", "rCoolantTemp", "bMaintenanceDue",
    "rPowerConsumption", "iErrorCode", "sOperatorNote", "rHumidity",
    "rAmbientTemp", "iShiftCount", "bLightBarrier", "rTorque",
    "iSpindleSpeed", "rFeedRate", "bSafetyFence",
)

_METHOD_NAMES = (
    "AddEndpoint", "ResetCounters", "AcknowledgeAlarm", "StartPump",
    "StopPump", "CalibrateSensor", "ExportLog", "RebootController",
    "SetOperationMode", "ClearErrorMemory", "UpdateRecipe", "OpenGate",
)

_TEST_VARIABLE_NAMES = (
    "MyVariable", "TestCounter", "Demo.Dynamic.Scalar.Double",
    "SimulatedSine", "ExampleString", "RandomValue", "Counter1",
)


@dataclass(frozen=True)
class RightsProfile:
    """How much of the address space the anonymous user may touch.

    Counts are explicit (not fractions) because the scanner's measured
    fractions include the standard readable nodes every server exposes
    (NamespaceArray, SoftwareVersion); the generator accounts for that
    so the population's *measured* CDFs land on Figure 7's anchors.
    """

    variables: int
    methods: int
    readable: int
    writable: int
    executable: int

    def readable_count(self) -> int:
        return self.readable

    def writable_count(self) -> int:
        return self.writable

    def executable_count(self) -> int:
        return self.executable


# Standard nodes always readable by everyone (NamespaceArray and
# SoftwareVersion), which the traversal counts as variables.
_STANDARD_READABLE = 2


def draw_rights_profile(rng: DeterministicRng) -> RightsProfile:
    """Draw one host's profile from the Figure-7 mixture.

    Anchors: ~90 % of hosts expose >97 % of nodes readable, ~33 %
    allow writes to >10 % of nodes, ~61 % allow executing >86 % of
    methods.  High buckets use ceilings against the *measured*
    denominator (variables + standard nodes) so rounding can never
    drop a host below its anchor.
    """
    variables = rng.randrange(18, 60)
    methods = rng.randrange(3, 12)
    denominator = variables + _STANDARD_READABLE

    if rng.random() < 0.92:
        readable = variables  # everything readable -> measured 1.0
    else:
        readable = math.floor(rng.uniform(0.30, 0.90) * variables)

    if rng.random() < 0.33:
        target = rng.uniform(0.13, 0.60)
        writable = min(
            max(1, math.ceil(target * (denominator + 1))), readable, variables - 1
        )
    elif rng.random() < 0.5:
        writable = 0
    else:
        writable = math.floor(rng.uniform(0.0, 0.07) * variables)

    if rng.random() < 0.61:
        executable = methods if methods < 8 else methods - rng.randrange(0, 2)
    else:
        executable = math.floor(rng.uniform(0.0, 0.80) * methods)

    return RightsProfile(variables, methods, readable, writable, executable)


def build_address_space(
    classification: str,
    manufacturer: Manufacturer,
    profile: RightsProfile,
    rng: DeterministicRng,
    contact_email: str | None = None,
) -> AddressSpace:
    """Build one host's address space per classification template."""
    space = AddressSpace()
    if classification == "accessible-production":
        namespace_uris = list(manufacturer.namespace_uris) + [IEC61131_NAMESPACE]
        names = _VARIABLE_NAMES
        root_name = "PLC"
    elif classification == "accessible-test":
        namespace_uris = [FREEOPCUA_EXAMPLE_NAMESPACE]
        names = _TEST_VARIABLE_NAMES
        root_name = "Examples"
    else:
        # Unclassified (standard namespace only) and inaccessible hosts.
        namespace_uris = []
        names = _VARIABLE_NAMES
        root_name = "Device"
    ns_index = 0
    for uri in namespace_uris:
        ns_index = space.register_namespace(uri)

    device = ObjectNode(
        node_id=NodeId(ns_index, root_name),
        browse_name=QualifiedName(ns_index, root_name),
        display_name=LocalizedText(root_name),
        type_definition=NodeIds.FolderType,
    )
    space.add_node(device, parent=NodeIds.ObjectsFolder,
                   reference_type=ReferenceTypeIds.Organizes)

    readable = profile.readable_count()
    writable = min(profile.writable_count(), readable)
    for index in range(profile.variables):
        name = f"{names[index % len(names)]}_{index // len(names)}" if (
            index >= len(names)
        ) else names[index % len(names)]
        is_readable = index < readable
        # Writable tags start at rSetFillLevel (index 1), matching the
        # paper's observation of setpoint-style writable nodes.
        is_writable = 1 <= index <= writable
        space.add_node(
            VariableNode(
                node_id=NodeId(ns_index, f"{root_name}/{name}"),
                browse_name=QualifiedName(ns_index, name),
                display_name=LocalizedText(name),
                value=_value_for(name, rng),
                permissions=Permissions.make(
                    read_anonymous=is_readable, write_anonymous=is_writable
                ),
            ),
            parent=device.node_id,
        )

    if contact_email is not None:
        # Operator contact data in the address space — how the paper's
        # authors identified whom to notify (Appendix A.1).
        space.add_node(
            VariableNode(
                node_id=NodeId(ns_index, f"{root_name}/sContact"),
                browse_name=QualifiedName(ns_index, "sContact"),
                display_name=LocalizedText("sContact"),
                value=Variant(
                    f"maintenance contact: {contact_email}", VariantType.STRING
                ),
                permissions=Permissions.make(read_anonymous=True),
            ),
            parent=device.node_id,
        )

    executable = profile.executable_count()
    for index in range(profile.methods):
        name = _METHOD_NAMES[index % len(_METHOD_NAMES)]
        space.add_node(
            MethodNode(
                node_id=NodeId(ns_index, f"{root_name}/{name}"),
                browse_name=QualifiedName(ns_index, name),
                display_name=LocalizedText(name),
                permissions=Permissions.make(
                    execute_anonymous=index < executable
                ),
            ),
            parent=device.node_id,
        )
    return space


def _value_for(name: str, rng: DeterministicRng) -> Variant:
    if name.startswith(("b", "B")):
        return Variant(rng.random() < 0.5, VariantType.BOOLEAN)
    if name.startswith(("i", "I")):
        return Variant(rng.randrange(0, 10_000), VariantType.INT32)
    if name.startswith(("s", "S")):
        return Variant(f"value-{rng.randrange(1000)}", VariantType.STRING)
    return Variant(round(rng.uniform(0.0, 500.0), 3), VariantType.DOUBLE)
