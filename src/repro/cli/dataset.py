"""``repro dataset``: the anonymized dataset release (Appendix A.1)."""

from __future__ import annotations

from repro.cli.options import add_seed, study_result


def register(commands) -> None:
    dataset = commands.add_parser(
        "dataset", help="write the anonymized dataset release"
    )
    dataset.add_argument("path", help="output JSONL path")
    add_seed(dataset)
    dataset.set_defaults(handler=cmd_dataset)


def cmd_dataset(args) -> int:
    from repro.dataset import AnonymizationMap, anonymize_snapshot
    from repro.dataset.io import write_snapshots

    result = study_result(args)
    mapping = AnonymizationMap()
    released = [
        anonymize_snapshot(snapshot, mapping) for snapshot in result.snapshots
    ]
    write_snapshots(args.path, released)
    records = sum(len(s.records) for s in released)
    print(f"wrote {len(released)} snapshots / {records} records to {args.path}")
    return 0
