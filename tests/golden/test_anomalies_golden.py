"""Hostile device-zoo golden study: every pathology, digest-pinned.

The tiny and negotiated studies scan well-behaved populations; this
suite pins the complement — a population where every registered
personality is planted at a known count.  The digests prove the
hostile transports (stalls, drops, garbled frames) behave identically
across all four executor backends, and the ground-truth tests prove
the ``anomalies`` analysis detects exactly the planted pathologies:
no misses, no false positives on the control rows.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.anomalies import analyze_anomalies
from repro.core.golden import (
    run_tiny_hostile_study,
    study_digest,
    study_digests,
    tiny_hostile_spec,
)
from repro.deployments.personalities import PERSONALITIES

pytestmark = pytest.mark.golden

ANOMALIES_PATH = Path(__file__).resolve().parent / "anomalies.digest.json"

BACKENDS = [
    pytest.param("thread", 4, id="thread"),
    pytest.param("process", 4, id="process"),
    pytest.param("async", 8, id="async"),
]

#: Noise hosts the golden study config plants (junk TCP responders on
#: 4840) — they count as junk talkers alongside the junk-banner rows.
NOISE_HOSTS = 6


@pytest.fixture(scope="module")
def anomalies_digests() -> dict:
    return json.loads(ANOMALIES_PATH.read_text())


@pytest.fixture(scope="module")
def serial_hostile_result():
    return run_tiny_hostile_study()


@pytest.fixture(scope="module")
def anomaly_stats(serial_hostile_result):
    return analyze_anomalies(
        serial_hostile_result.snapshots, tiny_hostile_spec()
    )


def test_serial_matches_committed_digest(
    serial_hostile_result, anomalies_digests
):
    per_sweep = study_digests(serial_hostile_result)
    assert per_sweep == anomalies_digests["per_sweep"]
    assert study_digest(serial_hostile_result) == anomalies_digests["digest"]


@pytest.mark.parametrize("backend,workers", BACKENDS)
def test_backend_matches_serial_reference(
    backend, workers, serial_hostile_result, anomalies_digests
):
    result = run_tiny_hostile_study(backend, workers)
    per_sweep = study_digests(result)
    assert per_sweep == study_digests(serial_hostile_result), (
        f"{backend} backend diverged from the serial reference"
    )
    assert per_sweep == anomalies_digests["per_sweep"]
    assert study_digest(result) == anomalies_digests["digest"]


def test_spec_plants_every_personality():
    """The golden spec covers the whole registry, so a new personality
    cannot land without extending the pinned study."""
    planted = tiny_hostile_spec().personality_counts()
    assert set(planted) == set(PERSONALITIES)


def test_anomalies_match_spec_ground_truth(anomaly_stats):
    """Every planted pathology detected at its exact planted count."""
    planted = anomaly_stats.spec_personalities
    assert planted == tiny_hostile_spec().personality_counts()
    # Transport-level failures, by category.
    assert anomaly_stats.host_error_categories == {
        "closed": (
            planted["truncated-frame"] + planted["mid-handshake-drop"]
        ),
        "timeout": planted["slow-loris"],
        "transport-rejected": planted["hello-rejecter"],
    }
    assert anomaly_stats.stalled_hosts == planted["slow-loris"]
    assert anomaly_stats.junk_talkers == (
        planted["junk-banner"] + NOISE_HOSTS
    )
    # Session/service-level failures.
    assert anomaly_stats.session_error_categories == {
        "protocol": planted["confused-stack"]
    }
    assert anomaly_stats.details_error_categories == {
        "service-fault": planted["honeypot"]
    }
    assert anomaly_stats.honeypot_suspects == planted["honeypot"]
    # Certificate pathologies.
    assert anomaly_stats.expired_certificates == planted["expired-cert"]
    assert anomaly_stats.hostname_mismatches == (
        planted["hostname-mismatch"]
    )
    # Policy hygiene and presence.
    assert anomaly_stats.deprecated_only_hosts == planted["deprecated-only"]
    assert anomaly_stats.churned_applications == planted["address-churn"]
    # Nothing else fired — the control rows stay clean.
    assert anomaly_stats.not_yet_valid_certificates == 0
    assert anomaly_stats.invalid_signatures == 0


def test_default_population_reports_no_pathologies(tiny_default_anomalies):
    """Zero false positives on the well-behaved golden population."""
    stats = tiny_default_anomalies
    assert stats.host_error_categories == {}
    assert stats.session_error_categories == {}
    assert stats.details_error_categories == {}
    assert stats.expired_certificates == 0
    assert stats.hostname_mismatches == 0
    assert stats.deprecated_only_hosts == 0
    assert stats.honeypot_suspects == 0
    assert stats.churned_applications == 0
    assert stats.stalled_hosts == 0
    # The study config's noise hosts are the only junk talkers.
    assert stats.junk_talkers == NOISE_HOSTS


@pytest.fixture(scope="module")
def tiny_default_anomalies():
    from repro.core.golden import run_tiny_study, tiny_spec

    result = run_tiny_study()
    return analyze_anomalies(result.snapshots, tiny_spec())
