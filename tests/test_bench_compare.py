"""benchmarks/compare.py: the regression gate must not rot silently.

Regression guard for the CI bug this PR fixes: a section or backend
present in the baseline but *missing* from the current report used to
be skipped, so deleting a benchmark (or a typo in its metrics key)
made the gate pass vacuously forever.  Missing now counts as a
regression.

``benchmarks/`` is not a package, so the module is loaded straight
from its file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

COMPARE_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "compare.py"
)


@pytest.fixture(scope="module")
def compare_module():
    spec = importlib.util.spec_from_file_location("bench_compare", COMPARE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


BASELINE = {
    "grab_throughput": {"serialx1": 100.0, "processx4": 300.0},
    "probe_throughput": {"serialx1": 5000.0},
}


class TestCompare:
    def test_no_change_no_regressions(self, compare_module):
        assert compare_module.compare(BASELINE, BASELINE, 0.15) == []

    def test_slowdown_past_threshold_flagged(self, compare_module):
        current = {
            "grab_throughput": {"serialx1": 50.0, "processx4": 300.0},
            "probe_throughput": {"serialx1": 5000.0},
        }
        (message,) = compare_module.compare(current, BASELINE, 0.15)
        assert "grab_throughput/serialx1" in message
        assert "regressed" in message

    def test_missing_backend_is_a_regression(self, compare_module):
        current = {
            "grab_throughput": {"serialx1": 100.0},  # processx4 gone
            "probe_throughput": {"serialx1": 5000.0},
        }
        (message,) = compare_module.compare(current, BASELINE, 0.15)
        assert "grab_throughput/processx4" in message
        assert "missing" in message

    def test_missing_section_is_a_regression(self, compare_module):
        current = {"grab_throughput": {"serialx1": 100.0, "processx4": 300.0}}
        (message,) = compare_module.compare(current, BASELINE, 0.15)
        assert "probe_throughput/serialx1" in message
        assert "missing" in message

    def test_faster_is_not_a_regression(self, compare_module):
        current = {
            "grab_throughput": {"serialx1": 400.0, "processx4": 900.0},
            "probe_throughput": {"serialx1": 9000.0},
        }
        assert compare_module.compare(current, BASELINE, 0.15) == []


class TestMainExitCodes:
    def _write(self, path: Path, payload: dict) -> Path:
        path.write_text(json.dumps(payload))
        return path

    RATE_KEYS = {
        "grab_throughput": "hosts_per_second",
        "probe_throughput": "addresses_per_second",
        "sharded_throughput": "hosts_per_second",
    }

    def _report(self, tmp_path: Path, rates: dict) -> Path:
        # A real report nests rates under the section's rate key.
        payload = {
            section: {self.RATE_KEYS[section]: per_backend}
            for section, per_backend in rates.items()
        }
        return self._write(tmp_path / "report.json", payload)

    def test_missing_backend_fails_strict_run(self, tmp_path, compare_module):
        report = self._report(
            tmp_path, {"grab_throughput": {"serialx1": 100.0}}
        )
        baseline = self._write(
            tmp_path / "baseline.json",
            {"grab_throughput": {"serialx1": 100.0, "processx4": 300.0}},
        )
        assert compare_module.main(
            ["--report", str(report), "--baseline", str(baseline)]
        ) == 0  # tripwire mode still warns only
        assert compare_module.main(
            [
                "--report", str(report),
                "--baseline", str(baseline),
                "--fail-on-regression",
            ]
        ) == 1

    def test_sharded_section_is_gated(self, tmp_path, compare_module):
        """The new sharded_throughput section participates in the gate
        like the two original sections."""
        report = self._report(
            tmp_path, {"grab_throughput": {"serialx1": 100.0}}
        )
        baseline = self._write(
            tmp_path / "baseline.json",
            {
                "grab_throughput": {"serialx1": 100.0},
                "sharded_throughput": {"serialx1": 80.0},
            },
        )
        assert compare_module.main(
            [
                "--report", str(report),
                "--baseline", str(baseline),
                "--fail-on-regression",
            ]
        ) == 1
