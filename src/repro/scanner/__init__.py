"""The OPC UA scan pipeline (the paper's zgrab2 module, §4).

Stages: the port sweep (:mod:`repro.netsim.tcpscan`) finds open
TCP/4840 ports; :mod:`repro.scanner.grabber` speaks OPC UA to each
responder; :mod:`repro.scanner.traversal` walks anonymous-accessible
address spaces under the paper's rate/time/traffic budgets; and
:mod:`repro.scanner.campaign` orchestrates weekly measurements
including the follow-references stage added on 2020-05-04.
"""

from repro.scanner.records import (
    CertificateInfo,
    EndpointRecord,
    HostRecord,
    MeasurementSnapshot,
    NodeSummary,
    SecureChannelAttempt,
    SessionAttempt,
)
from repro.scanner.limits import TraversalBudget
from repro.scanner.grabber import grab_host
from repro.scanner.traversal import traverse_address_space
from repro.scanner.campaign import ScanCampaign, ScannerIdentity
from repro.scanner.ethics import (
    NotificationCampaign,
    find_contact_addresses,
    measure_remediation,
)

__all__ = [
    "CertificateInfo",
    "EndpointRecord",
    "HostRecord",
    "MeasurementSnapshot",
    "NodeSummary",
    "NotificationCampaign",
    "ScanCampaign",
    "ScannerIdentity",
    "SecureChannelAttempt",
    "SessionAttempt",
    "TraversalBudget",
    "find_contact_addresses",
    "grab_host",
    "measure_remediation",
    "traverse_address_space",
]
