"""Regenerates Figure 3 (security modes and policies)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_fig3_modes_and_policies(benchmark, study_result):
    report = benchmark(run_experiment, "fig3", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
