"""StudyDiff laws: canonicalization, involution, churn extraction.

The diff is the paper's longitudinal comparison as a library, so its
algebra must be airtight: ``diff(a, a)`` is empty, ``diff(a, b)`` is
the exact inverse of ``diff(b, a)``, output ordering is canonical,
and the digest is a pure function of the two summaries.
"""

from __future__ import annotations

from repro.analysis.deficits import DEFICIT_CLASSES
from repro.analysis.diff import (
    HostState,
    StudySummary,
    diff_summaries,
    summarize_stream,
)
from repro.scanner.records import (
    CertificateInfo,
    EndpointRecord,
    HostRecord,
    MeasurementSnapshot,
    SessionAttempt,
)

_POLICY = "http://opcfoundation.org/UA/SecurityPolicy#"


def certificate(thumbprint: str, signature_hash: str = "sha256"):
    return CertificateInfo(
        der_hex="00",
        thumbprint_hex=thumbprint,
        signature_hash=signature_hash,
        key_bits=2048,
        subject="CN=x",
        issuer="CN=x",
        not_before="2020-01-01T00:00:00Z",
        not_after="2030-01-01T00:00:00Z",
        application_uri=None,
        self_signed=True,
        signature_valid=True,
        modulus_hex="5",
    )


def server(
    ip: int,
    *,
    policy: str = "Basic256Sha256",
    mode: int = 3,
    thumbprint: str | None = "aa",
    signature_hash: str = "sha256",
    software: str | None = "1.0",
    anonymous: bool = False,
) -> HostRecord:
    return HostRecord(
        ip=ip,
        port=4840,
        asn=1,
        timestamp="2020-07-06",
        tcp_open=True,
        is_opcua=True,
        software_version=software,
        endpoints=[
            EndpointRecord(
                endpoint_url=None,
                security_mode=mode,
                security_policy_uri=_POLICY + policy,
            )
        ],
        certificate=(
            certificate(thumbprint, signature_hash) if thumbprint else None
        ),
        session=SessionAttempt(attempted=True, success=anonymous),
    )


def sweep(date: str, records: list[HostRecord]) -> MeasurementSnapshot:
    return MeasurementSnapshot(date=date, records=records)


def summary(*sweeps: MeasurementSnapshot, label: str = "") -> StudySummary:
    return summarize_stream(list(sweeps), label=label)


class TestSummarizeStream:
    def test_folds_per_sweep_stats_and_final_hosts(self):
        s = summary(
            sweep("2020-07-06", [server(1), server(2)]),
            sweep("2020-08-30", [server(2)]),
        )
        assert [w.date for w in s.sweeps] == ["2020-07-06", "2020-08-30"]
        assert [w.servers for w in s.sweeps] == [2, 1]
        assert s.records_total == 3
        # final_hosts reflects only the last sweep.
        assert list(s.final_hosts) == ["2:4840"]
        assert s.final_date == "2020-08-30"

    def test_deficit_counts_use_the_paper_classes(self):
        s = summary(sweep("2020-07-06", [server(1, policy="None")]))
        stats = s.final_stats
        assert set(stats.deficit_counts) == set(DEFICIT_CLASSES)
        assert stats.deficit_counts["none-only"] == 1
        assert stats.deficient == 1

    def test_host_state_is_compact_and_comparable(self):
        state = HostState.from_record(server(1), set())
        assert state.endpoint == "0.0.0.1:4840"
        assert state.changed_fields(state) == ()
        other = HostState.from_record(
            server(1, software="2.0", thumbprint="bb"), set()
        )
        assert state.changed_fields(other) == (
            "certificate_thumbprint",
            "software_version",
        )


class TestDiffLaws:
    def test_diff_of_identical_summaries_is_empty(self):
        a = summary(sweep("2020-07-06", [server(1), server(2)]), label="a")
        d = diff_summaries(a, a)
        assert d.is_empty()
        assert d.appeared == [] and d.disappeared == [] and d.changed == []
        assert not any(d.policy_delta.values())
        assert not any(d.deficit_delta.values())

    def test_diff_is_the_inverse_of_its_reverse(self):
        a = summary(
            sweep("2020-07-06", [server(1), server(2, policy="None")]),
            label="a",
        )
        b = summary(
            sweep(
                "2020-08-30",
                [server(2), server(3, thumbprint="cc", software="2.0")],
            ),
            label="b",
        )
        forward = diff_summaries(a, b)
        reverse = diff_summaries(b, a)
        assert [s.endpoint for s in forward.appeared] == [
            s.endpoint for s in reverse.disappeared
        ]
        assert [s.endpoint for s in forward.disappeared] == [
            s.endpoint for s in reverse.appeared
        ]
        assert [(c.before, c.after) for c in forward.changed] == [
            (c.after, c.before) for c in reverse.changed
        ]
        assert forward.policy_delta == {
            k: -v for k, v in reverse.policy_delta.items()
        }
        assert forward.deficit_delta == {
            k: -v for k, v in reverse.deficit_delta.items()
        }
        assert forward.deficient_delta == -reverse.deficient_delta
        assert forward.servers_a == reverse.servers_b

    def test_churn_lists_are_sorted_by_endpoint(self):
        a = summary(sweep("2020-07-06", [server(9)]), label="a")
        b = summary(
            sweep("2020-08-30", [server(300), server(2), server(50)]),
            label="b",
        )
        d = diff_summaries(a, b)
        ips = [s.ip for s in d.appeared]
        assert ips == sorted(ips) == [2, 50, 300]

    def test_changed_records_fields_and_renewals(self):
        a = summary(
            sweep("2020-07-06", [server(1, thumbprint="aa",
                                        signature_hash="sha1")]),
            label="a",
        )
        b = summary(
            sweep("2020-08-30", [server(1, thumbprint="bb",
                                        software="2.0")]),
            label="b",
        )
        d = diff_summaries(a, b)
        change, = d.changed
        assert "certificate_thumbprint" in change.fields
        renewal, = d.renewals
        assert renewal.old_hash == "sha1"
        assert renewal.new_hash == "sha256"
        assert renewal.is_upgrade
        assert renewal.software_updated
        assert renewal.sweep_date == "2020-08-30"

    def test_unchanged_certificate_is_not_a_renewal(self):
        a = summary(sweep("2020-07-06", [server(1, anonymous=True)]))
        b = summary(sweep("2020-08-30", [server(1)]))
        d = diff_summaries(a, b)
        assert d.changed and not d.renewals

    def test_policy_delta_spans_both_sides_with_zeros(self):
        a = summary(sweep("2020-07-06", [server(1, policy="None")]))
        b = summary(sweep("2020-08-30", [server(1)]))
        d = diff_summaries(a, b)
        # The policy dicts are pre-populated with every label, so the
        # delta covers the full catalogue with explicit zeros.
        assert d.policy_delta["N"] == -1
        assert d.policy_delta["S2"] == 1
        assert any(v == 0 for v in d.policy_delta.values())


class TestDiffDigest:
    def test_digest_is_pure_and_order_canonical(self):
        def build(label_a="a", label_b="b"):
            a = summary(
                sweep("2020-07-06", [server(1), server(2)]), label=label_a
            )
            b = summary(
                sweep("2020-08-30", [server(2, software="2.0")]),
                label=label_b,
            )
            return diff_summaries(a, b)

        assert build().digest() == build().digest()
        assert build().digest() != build(label_a="other").digest()

    def test_json_dict_is_canonically_serializable(self):
        from repro.core.golden import canonical_json

        a = summary(sweep("2020-07-06", [server(1)]), label="a")
        b = summary(sweep("2020-08-30", [server(2)]), label="b")
        payload = diff_summaries(a, b).to_json_dict()
        # Round-trips through canonical JSON without a custom encoder.
        assert canonical_json(payload)
        assert payload["appeared"][0]["endpoint"] == "0.0.0.2:4840"
        assert payload["date_a"] == "2020-07-06"
