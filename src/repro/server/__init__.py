"""A from-scratch OPC UA server.

Serves the binary protocol end to end: transport handshake, secure
channels under any of the six security policies, sessions with the
four authentication token types, per-node access control, and the
discovery / session / view / attribute / method service sets.

Deliberately configurable into *insecure* shapes: the deployment
generator uses these knobs (None-only endpoints, deprecated policies,
mismatched certificates, anonymous access, reused certificates) to
build the population whose misconfigurations the study measures.
"""

from repro.server.access import Permissions, Role, UserContext
from repro.server.addressspace import AddressSpace, NodeIds, ReferenceTypeIds
from repro.server.nodes import MethodNode, Node, ObjectNode, VariableNode
from repro.server.auth import AuthenticationError, Authenticator, UserDirectory
from repro.server.endpoints import EndpointConfig
from repro.server.engine import ServerBehavior, ServerConfig, UaServer
from repro.server.tcp import TcpServerHost

__all__ = [
    "AddressSpace",
    "AuthenticationError",
    "Authenticator",
    "EndpointConfig",
    "MethodNode",
    "Node",
    "NodeIds",
    "ObjectNode",
    "Permissions",
    "ReferenceTypeIds",
    "Role",
    "ServerBehavior",
    "ServerConfig",
    "TcpServerHost",
    "UaServer",
    "UserContext",
    "UserDirectory",
    "VariableNode",
]
