"""Plain-text table rendering."""

from __future__ import annotations


def render_table(
    headers: list[str], rows: list[list], title: str | None = None
) -> str:
    """Render a padded ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def line(values):
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)
