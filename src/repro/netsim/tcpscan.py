"""zmap-style TCP port sweep of the simulated IPv4 space.

Like zmap, the sweep visits candidate addresses in a pseudo-random
permutation (so no AS sees a burst), honours the opt-out blocklist,
and reports only which addresses have the port open — the protocol
grab is a separate stage, exactly as in the paper's
zmap → zgrab2 pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.netsim.blocklist import Blocklist
from repro.netsim.net import SimNetwork
from repro.util.rng import DeterministicRng

#: Candidates are handed to the prober in fixed-size batches — the
#: shape zmap's send thread uses, and what lets a pipelined campaign
#: start grabbing while later batches are still being probed.
DEFAULT_BATCH_SIZE = 256


@dataclass
class PortScanResult:
    """Outcome of one sweep."""

    port: int
    probed: int = 0
    excluded: int = 0
    open_addresses: list[int] = field(default_factory=list)

    @property
    def open_count(self) -> int:
        return len(self.open_addresses)


def candidate_stream(
    network: SimNetwork,
    port: int,
    rng: DeterministicRng,
    extra_candidates: int = 0,
) -> list[int]:
    """The deduplicated probe-candidate permutation for one sweep.

    A pure function of the sweep RNG: registered hosts first, then
    ``extra_candidates`` random draws, shuffled once, deduplicated in
    first-occurrence order.  Every consumer — serial batching, the
    pooled executors, :class:`~repro.scanner.shard.ShardSpec` slicing
    — sees the identical stream, which is what makes index-mod
    sharding mergeable: position ``i`` belongs to shard ``i % N``
    regardless of who enumerates it.

    The blocklist is deliberately **not** consulted here: like zmap's
    shard permutation, candidate generation is blocklist-agnostic, and
    exclusion happens at probe time (``probe_candidates``, or the
    campaign's per-batch workers).  Extra candidates drawn from the
    full 2**32 space may therefore land on excluded addresses — they
    count as ``excluded``, never ``probed``, and the totals are
    identical whether the stream is probed serially or batch-parallel
    (pinned by ``tests/netsim/test_tcpscan_properties.py``).
    """
    candidates = [host.address for host in network.hosts()]
    probe_rng = rng.substream(f"sweep-{port}")
    for _ in range(extra_candidates):
        candidates.append(probe_rng.randrange(2**32))
    # zmap randomizes probe order over the whole space.
    candidates = probe_rng.shuffled(candidates)

    # dict.fromkeys dedups in first-occurrence order — the same stream
    # a per-address seen-set loop produces.
    return list(dict.fromkeys(candidates))


def candidate_batches(
    network: SimNetwork,
    port: int,
    rng: DeterministicRng,
    extra_candidates: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[list[int]]:
    """Yield :func:`candidate_stream` in fixed-size batches.

    Batching changes only the granularity at which the prober consumes
    the stream, never its order or membership.
    """
    unique = candidate_stream(
        network, port, rng, extra_candidates=extra_candidates
    )
    for start in range(0, len(unique), batch_size):
        yield unique[start : start + batch_size]


def probe_candidates(
    network: SimNetwork,
    port: int,
    rng: DeterministicRng,
    blocklist: Blocklist | None = None,
    extra_candidates: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[tuple[int, str]]:
    """Probe the candidate stream, yielding ``(address, status)``.

    ``status`` is ``"excluded"`` (blocklisted, never probed),
    ``"open"``, or ``"closed"``.  This is the single source of truth
    for sweep accounting: :func:`sweep_port` aggregates it into a
    :class:`PortScanResult`, and the campaign engine feeds the
    ``"open"`` addresses straight into its grab pipeline as they
    appear.
    """
    blocklist = blocklist or Blocklist()
    for batch in candidate_batches(
        network, port, rng, extra_candidates=extra_candidates,
        batch_size=batch_size,
    ):
        for address in batch:
            if address in blocklist:
                yield address, "excluded"
            elif network.syn(address, port):
                yield address, "open"
            else:
                yield address, "closed"


def sweep_port(
    network: SimNetwork,
    port: int,
    rng: DeterministicRng,
    blocklist: Blocklist | None = None,
    extra_candidates: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> PortScanResult:
    """Probe every simulated host (plus noise candidates) on ``port``.

    The real zmap probes all 2**32 addresses; the simulation's address
    space is sparse, so the sweep enumerates all registered hosts plus
    ``extra_candidates`` random unpopulated addresses (which exercise
    the "nothing there" path like the real sweep's overwhelming
    majority of probes).
    """
    result = PortScanResult(port=port)
    for address, status in probe_candidates(
        network, port, rng, blocklist=blocklist,
        extra_candidates=extra_candidates, batch_size=batch_size,
    ):
        if status == "excluded":
            result.excluded += 1
            continue
        result.probed += 1
        if status == "open":
            result.open_addresses.append(address)
    result.open_addresses.sort()
    return result
