#!/usr/bin/env python3
"""Produce an anonymized dataset release, as the paper did.

Runs a single scan sweep over a small deployment sample, anonymizes it
(consecutive IP/AS pseudonyms, blackened certificate fields, payload
excluded), writes JSONL, reads it back, and shows that the security
analyses still work on the released data.

Run:  python examples/dataset_release.py
"""

import tempfile
from pathlib import Path

from repro.analysis.modes import analyze_security_modes
from repro.analysis.policies import analyze_security_policies
from repro.client import ClientIdentity
from repro.crypto.rsa import generate_rsa_key
from repro.dataset import AnonymizationMap, anonymize_snapshot
from repro.dataset.io import read_snapshots, write_snapshots
from repro.deployments.population import PopulationBuilder, install_hosts
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.net import SimNetwork
from repro.scanner.campaign import ScanCampaign, ScannerIdentity
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc
from repro.x509.builder import make_self_signed


def main() -> None:
    rng = DeterministicRng(99, "dataset-example")

    # A small but diverse sample: the first 12 archetype rows.
    spec = build_default_spec()
    sample = PopulationSpec(rows=spec.rows[:12])
    print(f"building {sample.total_servers} sample deployments...")
    builder = PopulationBuilder(sample, seed=99)
    hosts = builder.build_hosts()
    network = SimNetwork(SimClock(parse_utc("2020-08-30")))
    install_hosts(network, hosts)

    keys = generate_rsa_key(1024, rng.substream("key"))
    identity = ScannerIdentity(
        ClientIdentity(
            application_uri="urn:example:scanner",
            application_name="Dataset example scanner",
            certificate=make_self_signed(
                keys, "scanner", "urn:example:scanner",
                parse_utc("2020-01-01"), "sha256", rng.substream("cert"),
            ),
            private_key=keys.private,
        )
    )
    campaign = ScanCampaign(network, identity, rng.substream("campaign"))
    snapshot = campaign.run_sweep(label="2020-08-30")
    print(f"scanned: {len(snapshot.reachable())} OPC UA hosts")

    mapping = AnonymizationMap()
    released = anonymize_snapshot(snapshot, mapping)
    sample_record = released.records[0]
    print("\nanonymization check (first record):")
    print(f"  ip pseudonym:  {sample_record.ip}")
    print(f"  asn pseudonym: {sample_record.asn}")
    if sample_record.certificate:
        print(f"  cert subject:  {sample_record.certificate.subject}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "opcua-dataset.jsonl"
        write_snapshots(path, [released])
        print(f"\nwrote {path.stat().st_size} bytes of JSONL")
        loaded = read_snapshots(path)

    servers = loaded[0].servers()
    modes = analyze_security_modes(servers)
    policies = analyze_security_policies(servers)
    print("\nanalysis on the released dataset still works:")
    print(f"  servers:              {len(servers)}")
    print(f"  mode support:         {modes.supported}")
    print(f"  deprecated policies:  {policies.supports_deprecated}")


if __name__ == "__main__":
    main()
