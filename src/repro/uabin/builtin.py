"""Encode/decode routines for the OPC UA built-in types.

Each built-in type gets a pair of module-level functions plus an entry
in the :data:`CODECS` table, which the declarative struct machinery
(:mod:`repro.uabin.structs`) and the Variant encoding use for dispatch.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from datetime import datetime

from repro.uabin.nodeid import ExpandedNodeId, NodeId
from repro.uabin.statuscodes import StatusCode, lookup_status
from repro.util.binary import BinaryReader, BinaryWriter
from repro.util.simtime import datetime_to_filetime, filetime_to_datetime

# --- simple scalars ---------------------------------------------------------


def write_boolean(writer: BinaryWriter, value: bool) -> None:
    writer.write_uint8(1 if value else 0)


def read_boolean(reader: BinaryReader) -> bool:
    return reader.read_uint8() != 0


def write_string(writer: BinaryWriter, value: str | None) -> None:
    """UTF-8 string with int32 length prefix; -1 encodes null."""
    if value is None:
        writer.write_int32(-1)
        return
    data = value.encode("utf-8")
    writer.write_int32(len(data))
    writer.write_bytes(data)


def read_string(reader: BinaryReader) -> str | None:
    length = reader.read_int32()
    if length < 0:
        return None
    return reader.read_bytes(length).decode("utf-8")


def write_bytestring(writer: BinaryWriter, value: bytes | None) -> None:
    if value is None:
        writer.write_int32(-1)
        return
    writer.write_int32(len(value))
    writer.write_bytes(value)


def read_bytestring(reader: BinaryReader) -> bytes | None:
    length = reader.read_int32()
    if length < 0:
        return None
    return reader.read_bytes(length)


def write_datetime(writer: BinaryWriter, value: datetime | None) -> None:
    writer.write_int64(0 if value is None else datetime_to_filetime(value))


def read_datetime(reader: BinaryReader) -> datetime | None:
    ticks = reader.read_int64()
    if ticks == 0:
        return None
    return filetime_to_datetime(ticks)


def write_guid(writer: BinaryWriter, value: uuid.UUID) -> None:
    writer.write_bytes(value.bytes_le)


def read_guid(reader: BinaryReader) -> uuid.UUID:
    return uuid.UUID(bytes_le=reader.read_bytes(16))


def write_statuscode(writer: BinaryWriter, value: StatusCode | int) -> None:
    raw = value.value if isinstance(value, StatusCode) else int(value)
    writer.write_uint32(raw & 0xFFFFFFFF)


def read_statuscode(reader: BinaryReader) -> StatusCode:
    return lookup_status(reader.read_uint32())


# --- composite built-ins ----------------------------------------------------


@dataclass(frozen=True)
class QualifiedName:
    """Namespace-qualified browse name."""

    namespace_index: int = 0
    name: str | None = None

    def encode(self, writer: BinaryWriter) -> None:
        writer.write_uint16(self.namespace_index)
        write_string(writer, self.name)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "QualifiedName":
        return cls(reader.read_uint16(), read_string(reader))

    def to_string(self) -> str:
        name = self.name or ""
        return f"{self.namespace_index}:{name}" if self.namespace_index else name


@dataclass(frozen=True)
class LocalizedText:
    """Human-readable text with optional locale."""

    text: str | None = None
    locale: str | None = None

    _LOCALE_BIT = 0x01
    _TEXT_BIT = 0x02

    def encode(self, writer: BinaryWriter) -> None:
        mask = 0
        if self.locale is not None:
            mask |= self._LOCALE_BIT
        if self.text is not None:
            mask |= self._TEXT_BIT
        writer.write_uint8(mask)
        if self.locale is not None:
            write_string(writer, self.locale)
        if self.text is not None:
            write_string(writer, self.text)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "LocalizedText":
        mask = reader.read_uint8()
        locale = read_string(reader) if mask & cls._LOCALE_BIT else None
        text = read_string(reader) if mask & cls._TEXT_BIT else None
        return cls(text=text, locale=locale)


@dataclass(frozen=True)
class DiagnosticInfo:
    """Diagnostic detail; the study never populates it but must be
    able to encode/decode the field in every response header."""

    symbolic_id: int | None = None
    namespace_uri: int | None = None
    locale: int | None = None
    localized_text: int | None = None
    additional_info: str | None = None
    inner_status: StatusCode | None = None
    inner_diagnostic: "DiagnosticInfo | None" = None

    def encode(self, writer: BinaryWriter) -> None:
        mask = 0
        if self.symbolic_id is not None:
            mask |= 0x01
        if self.namespace_uri is not None:
            mask |= 0x02
        if self.localized_text is not None:
            mask |= 0x04
        if self.locale is not None:
            mask |= 0x08
        if self.additional_info is not None:
            mask |= 0x10
        if self.inner_status is not None:
            mask |= 0x20
        if self.inner_diagnostic is not None:
            mask |= 0x40
        writer.write_uint8(mask)
        if self.symbolic_id is not None:
            writer.write_int32(self.symbolic_id)
        if self.namespace_uri is not None:
            writer.write_int32(self.namespace_uri)
        if self.localized_text is not None:
            writer.write_int32(self.localized_text)
        if self.locale is not None:
            writer.write_int32(self.locale)
        if self.additional_info is not None:
            write_string(writer, self.additional_info)
        if self.inner_status is not None:
            write_statuscode(writer, self.inner_status)
        if self.inner_diagnostic is not None:
            self.inner_diagnostic.encode(writer)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "DiagnosticInfo":
        mask = reader.read_uint8()
        symbolic_id = reader.read_int32() if mask & 0x01 else None
        namespace_uri = reader.read_int32() if mask & 0x02 else None
        localized_text = reader.read_int32() if mask & 0x04 else None
        locale = reader.read_int32() if mask & 0x08 else None
        additional_info = read_string(reader) if mask & 0x10 else None
        inner_status = read_statuscode(reader) if mask & 0x20 else None
        inner_diagnostic = cls.decode(reader) if mask & 0x40 else None
        return cls(
            symbolic_id=symbolic_id,
            namespace_uri=namespace_uri,
            locale=locale,
            localized_text=localized_text,
            additional_info=additional_info,
            inner_status=inner_status,
            inner_diagnostic=inner_diagnostic,
        )


# --- codec table ------------------------------------------------------------

# name -> (write_fn(writer, value), read_fn(reader) -> value)
CODECS = {
    "boolean": (write_boolean, read_boolean),
    "sbyte": (BinaryWriter.write_int8, BinaryReader.read_int8),
    "byte": (BinaryWriter.write_uint8, BinaryReader.read_uint8),
    "int16": (BinaryWriter.write_int16, BinaryReader.read_int16),
    "uint16": (BinaryWriter.write_uint16, BinaryReader.read_uint16),
    "int32": (BinaryWriter.write_int32, BinaryReader.read_int32),
    "uint32": (BinaryWriter.write_uint32, BinaryReader.read_uint32),
    "int64": (BinaryWriter.write_int64, BinaryReader.read_int64),
    "uint64": (BinaryWriter.write_uint64, BinaryReader.read_uint64),
    "float": (BinaryWriter.write_float, BinaryReader.read_float),
    "double": (BinaryWriter.write_double, BinaryReader.read_double),
    "string": (write_string, read_string),
    "bytestring": (write_bytestring, read_bytestring),
    "datetime": (write_datetime, read_datetime),
    "guid": (write_guid, read_guid),
    "statuscode": (write_statuscode, read_statuscode),
    "nodeid": (lambda w, v: v.encode(w), NodeId.decode),
    "expandednodeid": (lambda w, v: v.encode(w), ExpandedNodeId.decode),
    "qualifiedname": (lambda w, v: v.encode(w), QualifiedName.decode),
    "localizedtext": (lambda w, v: v.encode(w), LocalizedText.decode),
    "diagnosticinfo": (lambda w, v: v.encode(w), DiagnosticInfo.decode),
}


def write_value(writer: BinaryWriter, type_name: str, value) -> None:
    CODECS[type_name][0](writer, value)


def read_value(reader: BinaryReader, type_name: str):
    return CODECS[type_name][1](reader)


def write_array(writer: BinaryWriter, type_name: str, values) -> None:
    """Length-prefixed array; None encodes as length -1."""
    if values is None:
        writer.write_int32(-1)
        return
    writer.write_int32(len(values))
    encode = CODECS[type_name][0]
    for value in values:
        encode(writer, value)


def read_array(reader: BinaryReader, type_name: str):
    length = reader.read_int32()
    if length < 0:
        return None
    decode = CODECS[type_name][1]
    return [decode(reader) for _ in range(length)]
