"""Endpoint configuration → EndpointDescription mapping.

A server offers one endpoint per (security mode, security policy)
combination it supports, each advertising the same set of user token
policies.  The paper's Figure 3 is the statistics of exactly these
tuples across the Internet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.secure.policies import POLICY_NONE, SecurityPolicy  # noqa: F401
from repro.uabin.builtin import LocalizedText
from repro.uabin.enums import ApplicationType, MessageSecurityMode, UserTokenType
from repro.uabin.types_common import (
    ApplicationDescription,
    EndpointDescription,
    UserTokenPolicy,
)

TRANSPORT_PROFILE_BINARY = (
    "http://opcfoundation.org/UA-Profile/Transport/uatcp-uasc-uabinary"
)


@dataclass(frozen=True)
class EndpointConfig:
    """One offered endpoint: mode + policy (+ shared token types).

    ``token_types`` overrides the server-wide token list for this
    endpoint only — real servers do vary identity tokens per endpoint,
    and one host in the study's Table 2 advertises anonymous access
    exclusively on its secure endpoints.
    """

    security_mode: MessageSecurityMode
    security_policy: SecurityPolicy
    token_types: tuple[UserTokenType, ...] | None = None

    def __post_init__(self):
        none_policy = self.security_policy is POLICY_NONE
        none_mode = self.security_mode == MessageSecurityMode.NONE
        if none_policy != none_mode:
            raise ValueError(
                "security mode None if and only if security policy None "
                f"(got {self.security_mode.name}/{self.security_policy.name})"
            )

    @property
    def security_level(self) -> int:
        """Relative strength byte advertised in the description."""
        if self.security_mode == MessageSecurityMode.NONE:
            return 0
        base = self.security_policy.security_rank * 10
        bonus = 5 if self.security_mode == MessageSecurityMode.SIGN_AND_ENCRYPT else 0
        return base + bonus


def token_policy_for(token_type: UserTokenType) -> UserTokenPolicy:
    names = {
        UserTokenType.ANONYMOUS: "anonymous",
        UserTokenType.USERNAME: "username",
        UserTokenType.CERTIFICATE: "certificate",
        UserTokenType.ISSUED_TOKEN: "issued-token",
    }
    return UserTokenPolicy(policy_id=names[token_type], token_type=token_type)


def build_endpoint_descriptions(
    endpoint_url: str,
    application_uri: str,
    product_uri: str | None,
    application_name: str,
    application_type: ApplicationType,
    endpoint_configs: list[EndpointConfig],
    token_types: list[UserTokenType],
    certificate_der: bytes | None,
) -> list[EndpointDescription]:
    """Render the endpoint list a GetEndpoints response carries."""
    server = ApplicationDescription(
        application_uri=application_uri,
        product_uri=product_uri,
        application_name=LocalizedText(application_name),
        application_type=application_type,
        discovery_urls=[endpoint_url],
    )
    descriptions = []
    for config in endpoint_configs:
        effective_tokens = (
            list(config.token_types)
            if config.token_types is not None
            else list(token_types)
        )
        descriptions.append(
            EndpointDescription(
                endpoint_url=endpoint_url,
                server=server,
                server_certificate=certificate_der,
                security_mode=config.security_mode,
                security_policy_uri=config.security_policy.uri,
                user_identity_tokens=[
                    token_policy_for(t) for t in effective_tokens
                ],
                transport_profile_uri=TRANSPORT_PROFILE_BINARY,
                security_level=config.security_level,
            )
        )
    return descriptions
