"""The simulated network core: hosts, listeners, and sockets.

A host registers listeners per TCP port; each listener is a factory
returning a connection object with a ``receive(bytes) -> bytes``
method (the shape of :class:`repro.server.engine.ServerConnection`).
Connecting yields a :class:`SimSocket` whose ``write``/``read`` pair
models a synchronous request/response exchange and advances the
simulated clock by the modelled RTT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.latency import ZeroLatency
from repro.transport.messages import TransportTimeout
from repro.util.ipaddr import format_ipv4
from repro.util.simtime import SimClock

#: Cumulative seconds a reader waits on a stalling peer before the
#: simulated lane raises :class:`TransportTimeout` — the per-grab
#: deadline a slow-loris writer runs into.
DEFAULT_STALL_TIMEOUT_S = 30.0


class ConnectionRefused(Exception):
    """No listener on the target port."""

    #: Coarse failure class for the scanner's rejection breakdown
    #: (:func:`repro.client.errors.categorize_error`).
    category = "refused"


class HostDown(Exception):
    """No host at the target address."""

    category = "unreachable"


@dataclass
class SimHost:
    """One addressable machine."""

    address: int
    asn: int | None = None
    listeners: dict[int, object] = field(default_factory=dict)
    # Tags let the population builder annotate ground truth (never
    # visible to the scanner).
    tags: dict[str, object] = field(default_factory=dict)

    def listen(self, port: int, connection_factory) -> None:
        if port in self.listeners:
            raise ValueError(
                f"port {port} already bound on {format_ipv4(self.address)}"
            )
        self.listeners[port] = connection_factory

    def close_port(self, port: int) -> None:
        self.listeners.pop(port, None)


class SimSocket:
    """A connected TCP-ish byte stream with RTT accounting.

    Connections normally answer synchronously inside ``write``.  A
    connection may additionally implement ``poll() -> (seconds,
    bytes)`` — a peer that stalls before dribbling out more bytes
    (the slow-loris personality).  ``read`` then waits on the
    simulated clock and enforces a cumulative stall deadline: the
    total seconds spent polling one socket never resets, so dribbling
    a byte per poll cannot keep a grab alive forever.
    """

    def __init__(
        self,
        connection,
        clock: SimClock,
        latency,
        asn: int | None,
        stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
    ):
        self._connection = connection
        self._clock = clock
        self._latency = latency
        self._asn = asn
        self._inbox = bytearray()
        self._stall_timeout_s = stall_timeout_s
        self._stalled_s = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.closed = False

    def write(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionRefused("socket is closed")
        self._clock.advance(self._latency.rtt(self._asn))
        self.bytes_sent += len(data)
        response = self._connection.receive(data)
        self.bytes_received += len(response)
        self._inbox.extend(response)
        if getattr(self._connection, "closed", False) and not self._inbox:
            self.closed = True

    def read(self) -> bytes:
        poll = getattr(self._connection, "poll", None)
        while not self._inbox and poll is not None:
            if self._stalled_s >= self._stall_timeout_s:
                self.closed = True
                raise TransportTimeout(
                    f"peer stalled for {self._stalled_s:.0f}s"
                )
            waited_s, data = poll()
            self._clock.advance(waited_s)
            self._stalled_s += waited_s
            self.bytes_received += len(data)
            self._inbox.extend(data)
            if getattr(self._connection, "closed", False):
                break
        out = bytes(self._inbox)
        self._inbox.clear()
        return out

    def close(self) -> None:
        self.closed = True


class SimNetwork:
    """Registry of hosts plus the connect() entry point."""

    def __init__(
        self,
        clock: SimClock | None = None,
        latency=None,
        stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
    ):
        self.clock = clock or SimClock()
        self.latency = latency or ZeroLatency()
        self.stall_timeout_s = stall_timeout_s
        self._hosts: dict[int, SimHost] = {}

    def add_host(self, host: SimHost) -> SimHost:
        if host.address in self._hosts:
            raise ValueError(
                f"duplicate host address: {format_ipv4(host.address)}"
            )
        self._hosts[host.address] = host
        return host

    def remove_host(self, address: int) -> None:
        self._hosts.pop(address, None)

    def host(self, address: int) -> SimHost | None:
        return self._hosts.get(address)

    def hosts(self) -> list[SimHost]:
        return list(self._hosts.values())

    def __len__(self) -> int:
        return len(self._hosts)

    def syn(self, address: int, port: int) -> bool:
        """zmap-style probe: is the port open? (no data exchanged)"""
        host = self._hosts.get(address)
        return host is not None and port in host.listeners

    def connect(self, address: int, port: int) -> SimSocket:
        return self._make_socket(address, port, self.clock, self.latency)

    def _make_socket(self, address, port, clock, latency) -> SimSocket:
        host = self._hosts.get(address)
        if host is None:
            raise HostDown(f"no host at {format_ipv4(address)}")
        factory = host.listeners.get(port)
        if factory is None:
            raise ConnectionRefused(
                f"{format_ipv4(address)}:{port} refused the connection"
            )
        connection = factory()
        return SimSocket(
            connection, clock, latency, host.asn,
            stall_timeout_s=self.stall_timeout_s,
        )

    def task_view(self, label: str) -> "NetworkView":
        """A per-task facade with isolated clock and latency stream.

        Parallel grabs must not race on the shared sweep clock (the
        traversal paces itself by advancing it), so each scan task gets
        a view whose clock starts at the current sweep time and whose
        latency jitter draws from a substream keyed by ``label``.  The
        serial executor uses the same views, which is what makes all
        backends bit-identical.
        """
        latency = self.latency
        fork = getattr(latency, "fork", None)
        if fork is not None:
            latency = fork(label)
        return NetworkView(self, SimClock(self.clock.now()), latency)


class NetworkView:
    """Shares a :class:`SimNetwork`'s hosts, owns its own clock."""

    def __init__(self, network: SimNetwork, clock: SimClock, latency):
        self._network = network
        self.clock = clock
        self.latency = latency

    def host(self, address: int) -> SimHost | None:
        return self._network.host(address)

    def hosts(self) -> list[SimHost]:
        return self._network.hosts()

    def syn(self, address: int, port: int) -> bool:
        return self._network.syn(address, port)

    def probe(self, address: int, port: int) -> bool:
        """SYN probe with pacing: advances this view's clock by one
        (jitter-free) round trip before reporting the port state.

        The campaign's batched sweep probes on per-batch views, so the
        pacing models zmap's send rate on the simulated clock without
        touching the shared sweep clock — probe timing never reaches a
        :class:`~repro.scanner.records.HostRecord`.
        """
        host = self._network.host(address)
        pace = getattr(self.latency, "syn_rtt", self.latency.rtt)
        self.clock.advance(pace(host.asn if host is not None else None))
        return host is not None and port in host.listeners

    def probe_many(self, addresses, port: int) -> list[int]:
        """Batched :meth:`probe`: the open subset of ``addresses``.

        Port states are exactly what per-address :meth:`probe` calls
        would report, and the latency model is consulted once per
        address as before (so jitter-drawing models see the same call
        sequence); only the clock bookkeeping is batched — one advance
        by the summed pacing instead of one per probe.  Open addresses
        come back in input order.
        """
        hosts = self._network._hosts
        latency = self.latency
        pace = getattr(latency, "syn_rtt", latency.rtt)
        hosts_get = hosts.get
        opens: list[int] = []
        append = opens.append
        total = 0.0
        for address in addresses:
            host = hosts_get(address)
            if host is None:
                total += pace(None)
            else:
                total += pace(host.asn)
                if port in host.listeners:
                    append(address)
        self.clock.advance(total)
        return opens

    def connect(self, address: int, port: int) -> SimSocket:
        return self._network._make_socket(
            address, port, self.clock, self.latency
        )
