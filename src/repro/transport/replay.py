"""Replay lane: drive the unchanged protocol stack from a capture.

The third lane on the :class:`~repro.transport.socket_io.Transport`
seam (after the simulator and live sockets): a
:class:`ReplayNetwork` reconstructs, from one
:class:`~repro.transport.capture.TargetCapture`, exactly what the
scanner observed when the capture was recorded — connection outcomes,
response bytes, error categories *and messages*, clock readings — so
:func:`~repro.scanner.grabber.grab_host` runs start to finish against
recorded traffic and produces a byte-identical
:class:`~repro.scanner.records.HostRecord`.

Replay is strict by default: every ``write`` is checked against the
recorded payload, every ``advance`` against the recorded pacing, and
running past the end of a stream is an error.  A corpus is a
*regression* fixture — if the protocol driver starts sending
different bytes than it sent at capture time, that is a finding, and
:class:`ReplayMismatch` reports it with the first diverging operation
instead of letting a stale record masquerade as a reproduction.

A minimal round trip against :mod:`repro.transport.capture`::

    >>> from repro.transport.capture import CaptureTransport
    >>> from repro.transport.replay import ReplayTransport
    >>> class Echo:
    ...     bytes_sent = bytes_received = 0
    ...     def write(self, data): self._last = data
    ...     def read(self): return self._last
    ...     def close(self): pass
    >>> events = []
    >>> recording = CaptureTransport(Echo(), events, connection=0)
    >>> recording.write(b"ping")
    >>> recording.read()
    b'ping'
    >>> replay = ReplayTransport(events, connection=0)
    >>> replay.write(b"ping")  # verified against the recording
    >>> replay.read()
    b'ping'
"""

from __future__ import annotations

from collections import deque
from datetime import datetime

from repro.netsim.net import ConnectionRefused, HostDown
from repro.transport.messages import TransportError, TransportTimeout


class ReplayError(RuntimeError):
    """A capture cannot be replayed (exhausted or malformed stream)."""


class ReplayMismatch(ReplayError):
    """Replayed execution diverged from the recorded execution.

    Raised when the protocol stack writes different bytes, paces the
    clock differently, or opens connections in a different order than
    it did at capture time — the capture is stale relative to the
    code, or the replay was configured with a different scanner
    identity/seed than the recording.
    """


def _rebuild_io_error(category: str, message: str) -> Exception:
    """An exception whose ``str`` and category match the recording.

    The grabber copies ``str(exc)`` into record fields and
    ``categorize_error(exc)`` into the failure taxonomy, so both must
    round-trip exactly for replayed records to be byte-identical.
    """
    if category == "timeout":
        return TransportTimeout(message)
    if category == "refused":
        # Mid-stream refusals come from the simulator (a write on a
        # closed SimSocket); rebuild the simulator's type so the
        # grabber's except clauses take the same branch they took at
        # capture time.
        return ConnectionRefused(message)
    if category == "unreachable":
        return OSError(message)
    return TransportError(message)


def _rebuild_connect_error(category: str, message: str) -> Exception:
    """Reconstruct a connect failure on the simulator's taxonomy.

    The live lane maps socket failures onto
    :class:`~repro.netsim.net.ConnectionRefused` /
    :class:`~repro.netsim.net.HostDown` before the grabber sees them,
    so replay rebuilds the post-mapping exception directly.
    """
    if category == "refused":
        return ConnectionRefused(message)
    error = HostDown(message)
    error.category = category
    return error


class ReplayClock:
    """Returns the recorded clock observations, in recorded order."""

    def __init__(self, events: deque, target_key):
        self._events = events
        self._target_key = target_key

    def _pop(self, expected: str) -> dict:
        if not self._events:
            raise ReplayMismatch(
                f"target {self._target_key}: replay requested a clock "
                f"'{expected}' after the recorded clock stream ended"
            )
        event = self._events.popleft()
        if event["event"] != expected:
            raise ReplayMismatch(
                f"target {self._target_key}: replay requested a clock "
                f"'{expected}' where the recording has "
                f"'{event['event']}'"
            )
        return event

    def remaining(self) -> int:
        return len(self._events)

    def now(self) -> datetime:
        return datetime.fromisoformat(self._pop("now")["time"])

    def advance(self, seconds: float) -> datetime:
        event = self._pop("advance")
        if event["seconds"] != seconds:
            raise ReplayMismatch(
                f"target {self._target_key}: replay advanced the clock "
                f"by {seconds!r}s where the recording advanced by "
                f"{event['seconds']!r}s"
            )
        return datetime.fromisoformat(event["time"])


class ReplayTransport:
    """A :class:`~repro.transport.socket_io.Transport` fed by a capture.

    ``read`` returns the recorded response slices (including the
    partial-frame boundaries the live TCP stream produced, so the
    :class:`~repro.transport.connection.FrameReader` reassembly path is
    exercised exactly as it was live); ``write`` verifies the request
    against the recording when ``strict`` (the default).  Recorded
    errors re-raise at the operation where they originally surfaced.
    """

    def __init__(
        self, events, connection: int, target_key=None, strict: bool = True
    ):
        self._events = deque(
            e
            for e in events
            if e.get("connection") == connection
            and e["event"] in ("write", "read", "io-error", "close")
        )
        self._connection = connection
        self._target_key = target_key
        self._strict = strict
        self.bytes_sent = 0
        self.bytes_received = 0
        self.closed = False

    def _context(self) -> str:
        return (
            f"target {self._target_key} connection {self._connection}"
        )

    def _pop(self, op: str) -> dict:
        """Next event, which must be ``op`` or its recorded failure.

        Returns the event; the caller inspects ``event["event"]`` for
        the io-error case (accounting differs per operation before
        the rebuilt error is raised).
        """
        if not self._events:
            raise ReplayMismatch(
                f"{self._context()}: replay issued a '{op}' after the "
                "recorded stream ended"
            )
        event = self._events.popleft()
        if event["event"] == "io-error" and event.get("op") == op:
            return event
        if event["event"] != op:
            raise ReplayMismatch(
                f"{self._context()}: replay issued a '{op}' where the "
                f"recording has '{event['event']}'"
            )
        return event

    def write(self, data: bytes) -> None:
        event = self._pop("write")
        if event["event"] == "io-error":
            # The capture recorded exactly how many bytes the failing
            # operation counted before raising (lanes differ: a live
            # drain stall counts the payload, a deadline check or the
            # simulator's refusal counts nothing) — and the grabber
            # copies bytes_sent into scan_bytes even on failed grabs,
            # so replay applies the recorded delta, not a guess.
            self.bytes_sent += event.get("counted", 0)
            raise _rebuild_io_error(event["category"], event["message"])
        recorded = bytes.fromhex(event["data"])
        if self._strict and recorded != data:
            raise ReplayMismatch(
                f"{self._context()}: request bytes diverge from the "
                f"recording at write #{self.bytes_sent} "
                f"(sent {len(data)} bytes, recorded {len(recorded)}); "
                "the capture is stale, or the replay identity/seed "
                "differs from the recording's"
            )
        self.bytes_sent += len(data)

    def read(self) -> bytes:
        event = self._pop("read")
        if event["event"] == "io-error":
            self.bytes_received += event.get("counted", 0)
            raise _rebuild_io_error(event["category"], event["message"])
        data = bytes.fromhex(event["data"])
        self.bytes_received += len(data)
        return data

    def remaining(self) -> int:
        return len(self._events)

    def close(self) -> None:
        self.closed = True
        # Tolerate a missing close event (the capture may have ended
        # mid-teardown); consume it when it is next, so a strict
        # stream-exhaustion check can still pass.
        if self._events and self._events[0]["event"] == "close":
            self._events.popleft()


class _ReplayHost:
    """Ground-truth stub carrying the recorded ``asn`` observation."""

    def __init__(self, asn):
        self.asn = asn


class ReplayNetwork:
    """One target's recorded observations behind the grabber surface.

    Splits the capture's single ordered event stream into the queues
    replay consumes: clock observations, ``host`` ground-truth
    observations, connect outcomes (in order), and per-connection I/O
    events (handed to :class:`ReplayTransport` at connect time).
    """

    def __init__(self, capture, strict: bool = True):
        self._capture = capture
        self._strict = strict
        self._events = capture.events
        self._key = capture.key
        self._hosts = deque(
            e for e in self._events if e["event"] == "host"
        )
        self._connects = deque(
            e
            for e in self._events
            if e["event"] in ("connect", "connect-error")
        )
        self._transports: list[ReplayTransport] = []
        self.clock = ReplayClock(
            deque(
                e
                for e in self._events
                if e["event"] in ("now", "advance")
            ),
            self._key,
        )

    def assert_exhausted(self) -> None:
        """Require that replay consumed everything the capture holds.

        Over-consumption fails at the operation that ran past the
        recording; this is the other direction — a driver that now
        performs *fewer* operations than it did at capture time would
        otherwise replay "successfully" while silently diverging.
        """
        leftovers = []
        if self._hosts:
            leftovers.append(f"{len(self._hosts)} host observation(s)")
        if self._connects:
            leftovers.append(
                f"{len(self._connects)} recorded connection(s) never "
                "opened"
            )
        if self.clock.remaining():
            leftovers.append(
                f"{self.clock.remaining()} clock observation(s)"
            )
        for transport in self._transports:
            if transport.remaining():
                leftovers.append(
                    f"{transport.remaining()} event(s) on connection "
                    f"{transport._connection}"
                )
        if leftovers:
            raise ReplayMismatch(
                f"target {self._key}: replay finished with recorded "
                "events left unconsumed — the driver performs fewer "
                "operations than it did at capture time: "
                + ", ".join(leftovers)
            )

    def host(self, address: int):
        if not self._hosts:
            raise ReplayMismatch(
                f"target {self._key}: replay requested ground truth "
                "after the recorded host observations ended"
            )
        event = self._hosts.popleft()
        if not event.get("known", False):
            return None
        return _ReplayHost(event.get("asn"))

    def connect(self, address: int, port: int):
        if not self._connects:
            raise ReplayMismatch(
                f"target {self._key}: replay opened more connections "
                "than the recording holds"
            )
        event = self._connects.popleft()
        if event["event"] == "connect-error":
            raise _rebuild_connect_error(
                event["category"], event["message"]
            )
        transport = ReplayTransport(
            self._events,
            event["connection"],
            target_key=self._key,
            strict=self._strict,
        )
        self._transports.append(transport)
        return transport
