"""Newline-delimited JSON dataset files.

Layout: one header line per snapshot (``{"snapshot": date, ...}``)
followed by one line per host record.  The header's ``records`` field
declares how many record lines follow, which lets the reader detect
truncated files — a partially written dataset (interrupted run, bad
copy) fails loudly instead of silently shrinking a sweep.

Files whose name ends in ``.gz`` are transparently gzip-compressed on
both ends.  :func:`iter_snapshots` is the streaming reader: it yields
one fully populated snapshot at a time, so a consumer that only needs
one sweep (or wants to process sweeps incrementally) never holds the
whole study in memory.  :func:`read_snapshots` remains the eager
convenience wrapper.

The open/iterate primitives — :func:`canonical_open_write`,
:func:`canonical_open_read`, :func:`iter_decompressed_lines` — are
shared with the capture-corpus format
(:mod:`repro.transport.capture`), so every gzip-framed artifact in the
repo has the same reproducible-bytes and truncation-detection story.
"""

from __future__ import annotations

import gzip
import io
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, TextIO

from repro.scanner.records import HostRecord, MeasurementSnapshot


class DatasetFormatError(ValueError):
    """A dataset file violates the JSONL snapshot layout."""


def canonical_open_read(path: str | Path) -> TextIO:
    """Open a text file for reading, transparently gunzipping ``.gz``."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, encoding="utf-8")


@contextmanager
def canonical_open_write(path: str | Path) -> Iterator[TextIO]:
    """Open a text file for writing with byte-reproducible compression.

    Files ending in ``.gz`` are gzip-compressed with ``filename=""``
    and ``mtime=0``, so the header carries no environment detail: the
    compressed bytes are a pure function of the written content.  That
    property is what lets stored studies and capture corpora be
    content-addressed and digest-pinned.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".gz":
        with open(path, "wb") as binary:
            with gzip.GzipFile(
                fileobj=binary, mode="wb", filename="", mtime=0
            ) as raw:
                with io.TextIOWrapper(raw, encoding="utf-8") as handle:
                    yield handle
    else:
        with open(path, "w", encoding="utf-8") as handle:
            yield handle


def iter_decompressed_lines(path: Path, handle: TextIO) -> Iterator[str]:
    """Iterate lines, mapping decompression failures to format errors.

    A byte-truncated or corrupted ``.gz`` file surfaces as
    ``EOFError``/``BadGzipFile``/``zlib.error`` mid-iteration; callers
    are promised :class:`DatasetFormatError` for every malformed-file
    shape, so wrap them here.
    """
    import zlib

    iterator = iter(handle)
    while True:
        try:
            line = next(iterator)
        except StopIteration:
            return
        except (EOFError, gzip.BadGzipFile, zlib.error) as exc:
            raise DatasetFormatError(
                f"{path}: corrupted or truncated compressed data: {exc}"
            ) from None
        yield line


def write_snapshots(
    path: str | Path, snapshots: list[MeasurementSnapshot]
) -> None:
    with canonical_open_write(path) as handle:
        _write_lines(handle, snapshots)


def _write_lines(
    handle: TextIO, snapshots: list[MeasurementSnapshot]
) -> None:
    for snapshot in snapshots:
        header = {
            "snapshot": snapshot.date,
            "probed": snapshot.probed,
            "port_open": snapshot.port_open,
            "excluded": snapshot.excluded,
            "records": len(snapshot.records),
        }
        handle.write(json.dumps(header) + "\n")
        for record in snapshot.records:
            handle.write(json.dumps(record.to_json_dict()) + "\n")


def iter_snapshots(path: str | Path) -> Iterator[MeasurementSnapshot]:
    """Stream snapshots one at a time, validating record counts.

    Each snapshot is yielded only once all the record lines its header
    declared have been read, so a truncated tail raises
    :class:`DatasetFormatError` instead of yielding a short snapshot.
    """
    path = Path(path)
    current: MeasurementSnapshot | None = None
    remaining = 0
    with canonical_open_read(path) as handle:
        for number, line in enumerate(
            iter_decompressed_lines(path, handle), 1
        ):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetFormatError(
                    f"{path}:{number}: not valid JSON "
                    f"(truncated write?): {exc}"
                ) from None
            if "snapshot" in data:
                if remaining:
                    raise DatasetFormatError(
                        f"{path}:{number}: snapshot {current.date!r} "
                        f"declared {len(current.records) + remaining} "
                        f"records but only {len(current.records)} "
                        "precede the next header"
                    )
                if current is not None:
                    yield current
                current = MeasurementSnapshot(
                    date=data["snapshot"],
                    probed=data.get("probed", 0),
                    port_open=data.get("port_open", 0),
                    excluded=data.get("excluded", 0),
                )
                remaining = data.get("records", 0)
            else:
                if current is None:
                    raise DatasetFormatError(
                        f"{path}:{number}: record line before any "
                        "snapshot header"
                    )
                if remaining <= 0:
                    raise DatasetFormatError(
                        f"{path}:{number}: snapshot {current.date!r} "
                        "has more record lines than its header declared"
                    )
                current.records.append(HostRecord.from_json_dict(data))
                remaining -= 1
    if remaining:
        raise DatasetFormatError(
            f"{path}: truncated file: snapshot {current.date!r} declared "
            f"{len(current.records) + remaining} records but the file "
            f"ends after {len(current.records)}"
        )
    if current is not None:
        yield current


def read_snapshots(path: str | Path) -> list[MeasurementSnapshot]:
    return list(iter_snapshots(path))
