#!/usr/bin/env python3
"""Responsible disclosure: find operator contacts and track remediation.

Replays the paper's Appendix-A workflow on a simulated deployment
sample: scan, discover contact addresses in accessible address spaces,
notify the operators, then re-scan later and measure who actually
fixed their configuration (the paper: 50 notified, 2 replies, exactly
one system gained access control, three went offline).

Run:  python examples/notify_operators.py
"""

from repro.core.study import Study, StudyConfig
from repro.deployments.population import PopulationBuilder, install_hosts
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.net import SimNetwork
from repro.scanner.campaign import ScanCampaign
from repro.scanner.ethics import (
    NotificationCampaign,
    measure_remediation,
)
from repro.server.auth import Authenticator
from repro.uabin.enums import UserTokenType
from repro.util.simtime import SimClock, parse_utc

SEED = 20200830


def main() -> None:
    spec = build_default_spec()
    sample = PopulationSpec(rows=spec.rows[:7])
    print(f"building {sample.total_servers} deployments...")
    builder = PopulationBuilder(sample, seed=SEED)
    hosts = builder.build_hosts()
    network = SimNetwork(SimClock(parse_utc("2020-04-05")))
    install_hosts(network, hosts)

    study = Study(StudyConfig(seed=SEED))
    identity = study.scanner_identity()
    scan = ScanCampaign(network, identity, study._rng.substream("notify"))
    first = scan.run_sweep(label="2020-04-05")

    contact_values = {
        (r.ip, r.port): (r.nodes.value_samples if r.nodes else [])
        for r in first.records
    }
    campaign = NotificationCampaign()
    sent = campaign.notify_from_snapshot(first, contact_values)
    accessible = sum(1 for r in first.records if r.anonymous_accessible())
    print(
        f"scan 2020-04-05: {accessible} anonymously accessible systems, "
        f"contacts found for {sent}"
    )
    for notification in campaign.notifications[:5]:
        print(f"  notified {notification.contact}")

    # One operator reacts (as in the paper): anonymous access disabled.
    if campaign.notifications:
        fixed = campaign.notifications[0]
        campaign.record_reply(fixed.ip, fixed.port)
        responsive = next(
            h for h in hosts if h.address == fixed.ip and h.port == fixed.port
        )
        config = responsive.server.config
        config.token_types = [UserTokenType.USERNAME]
        config.authenticator = Authenticator(
            allowed_token_types={UserTokenType.USERNAME},
            directory=config.authenticator.directory,
        )
        print(f"\noperator of {fixed.contact} replied and disabled anonymous access")

    network.clock.set_to(parse_utc("2020-08-30"))
    second = ScanCampaign(
        network, identity, study._rng.substream("notify-2")
    ).run_sweep(label="2020-08-30")
    outcome = measure_remediation(campaign, second)
    print("\nfour months later:")
    print(f"  notified:   {outcome['notified']}")
    print(f"  remediated: {outcome['remediated']}")
    print(f"  still open: {outcome['still_open']}")
    print(f"  offline:    {outcome['offline']}")
    print(
        "\nthe paper observed the same pattern: of 50 notified operators, "
        "2 replied and exactly 1 system gained access control"
    )


if __name__ == "__main__":
    main()
