"""Endpoint ranking shared by the scanner's probe/session/negotiation steps.

The grab sequence picks endpoints from the advertised list three
times — the strongest pair for the secure-channel probe and the
negotiated re-grab, the weakest anonymous one for the session attempt
— and every caller must rank identically for records to stay pure
functions of the endpoint list.  The ordering key is
``(policy.security_rank, mode.security_rank)``: policy strength
dominates, mode breaks ties, and among equal pairs the first
advertised endpoint wins (both pickers are stable).
"""

from __future__ import annotations

from repro.secure.policies import SecurityPolicy, policy_by_uri
from repro.uabin.enums import MessageSecurityMode, UserTokenType


def endpoint_policy(endpoint) -> SecurityPolicy | None:
    """The endpoint's registered policy, or None when absent/unknown."""
    if endpoint.security_policy_uri is None:
        return None
    try:
        return policy_by_uri(endpoint.security_policy_uri)
    except KeyError:
        return None


def security_rank(
    policy: SecurityPolicy, mode: MessageSecurityMode
) -> tuple[int, int]:
    """Comparable strength of a ``(policy, mode)`` pair."""
    return (policy.security_rank, mode.security_rank)


def most_secure_endpoint(endpoints):
    """Strongest advertised secure ``(endpoint, policy)`` pair, or None.

    None-mode endpoints and endpoints with an unknown policy URI are
    skipped; ties keep the first advertised endpoint.
    """
    best = None
    best_rank = (-1, -1)
    for endpoint in endpoints:
        if endpoint.mode == MessageSecurityMode.NONE:
            continue
        policy = endpoint_policy(endpoint)
        if policy is None:
            continue
        rank = security_rank(policy, endpoint.mode)
        if rank > best_rank:
            best_rank = rank
            best = (endpoint, policy)
    return best


def weakest_anonymous_endpoint(endpoints):
    """Preferred ``(endpoint, policy)`` for the anonymous session attempt.

    None-mode endpoints first (cheapest), then the weakest secure one —
    the scanner is after access classification, not confidentiality.
    Returns None when no endpoint advertises the anonymous token.
    """
    candidates = []
    for endpoint in endpoints:
        if UserTokenType.ANONYMOUS not in endpoint.token_type_set():
            continue
        policy = endpoint_policy(endpoint)
        if policy is None:
            continue
        candidates.append((security_rank(policy, endpoint.mode), endpoint, policy))
    if not candidates:
        return None
    candidates.sort(key=lambda item: item[0])
    _, endpoint, policy = candidates[0]
    return endpoint, policy
