"""Anonymized dataset release (paper Appendix A.1).

The paper released its dataset with IP addresses and AS numbers
replaced by consecutive identifiers, certificate fields carrying
address-equivalent information blackened, and all payload data
excluded.  This package applies the same transformations and writes
newline-delimited JSON.
"""

from repro.dataset.anonymize import AnonymizationMap, anonymize_snapshot
from repro.dataset.catalog import RunInfo, StudyCatalog
from repro.dataset.io import (
    DatasetFormatError,
    iter_snapshots,
    read_snapshots,
    write_snapshots,
)
from repro.dataset.store import (
    StoreIntegrityError,
    StudyStore,
    default_store,
    resolve_store,
    study_key,
)

__all__ = [
    "AnonymizationMap",
    "DatasetFormatError",
    "RunInfo",
    "StoreIntegrityError",
    "StudyCatalog",
    "StudyStore",
    "anonymize_snapshot",
    "default_store",
    "iter_snapshots",
    "read_snapshots",
    "resolve_store",
    "study_key",
    "write_snapshots",
]
