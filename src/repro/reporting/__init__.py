"""Rendering: ASCII tables, bar charts, and paper-vs-measured figures."""

from repro.reporting.tables import render_table
from repro.reporting.charts import render_bars, render_cdf
from repro.reporting.figures import Comparison, ExperimentReport
from repro.reporting.pack import PackIntegrityError, verify_pack, write_pack
from repro.reporting.summary import (
    render_analysis_report,
    render_runs,
    render_study_diff,
)

__all__ = [
    "Comparison",
    "ExperimentReport",
    "PackIntegrityError",
    "render_analysis_report",
    "render_bars",
    "render_cdf",
    "render_runs",
    "render_study_diff",
    "render_table",
    "verify_pack",
    "write_pack",
]
