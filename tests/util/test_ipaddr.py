import pytest
from hypothesis import given, strategies as st

from repro.util.ipaddr import CidrBlock, format_ipv4, parse_ipv4


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ipv4("1.2.3.4") == 0x01020304

    def test_parse_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ipv4("255.255.255.255") == 2**32 - 1

    def test_format_basic(self):
        assert format_ipv4(0x01020304) == "1.2.3.4"

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "01.2.3.4", ""]
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(2**32)
        with pytest.raises(ValueError):
            format_ipv4(-1)


class TestCidrBlock:
    def test_parse(self):
        block = CidrBlock.parse("10.2.0.0/16")
        assert block.size == 65536
        assert format_ipv4(block.first) == "10.2.0.0"
        assert format_ipv4(block.last) == "10.2.255.255"

    def test_contains(self):
        block = CidrBlock.parse("10.2.0.0/16")
        assert parse_ipv4("10.2.5.1") in block
        assert parse_ipv4("10.3.0.0") not in block

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            CidrBlock(parse_ipv4("10.2.0.1"), 16)

    def test_slash_zero_covers_everything(self):
        block = CidrBlock(0, 0)
        assert block.size == 2**32
        assert parse_ipv4("255.1.2.3") in block

    def test_slash_32_single_host(self):
        block = CidrBlock.parse("10.0.0.1/32")
        assert block.size == 1
        assert block.first == block.last

    def test_address_at(self):
        block = CidrBlock.parse("10.0.0.0/24")
        assert format_ipv4(block.address_at(5)) == "10.0.0.5"
        with pytest.raises(IndexError):
            block.address_at(256)

    def test_missing_prefix_rejected(self):
        with pytest.raises(ValueError):
            CidrBlock.parse("10.0.0.0")

    def test_str(self):
        assert str(CidrBlock.parse("10.2.0.0/16")) == "10.2.0.0/16"


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_parse_format_round_trip(value):
    assert parse_ipv4(format_ipv4(value)) == value


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 32))
def test_block_membership_consistent(addr, prefix_len):
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len else 0
    block = CidrBlock(addr & mask, prefix_len)
    assert (addr in block) == (addr & mask == block.network)
