"""Secure-channel layer: security policies, key derivation, and the
message protection applied to OPC UA chunks.

This package realizes the paper's Table 1: the six security policies,
their cryptographic primitives, key-length ranges, and
deprecated/insecure classification, plus the channel state machines
that apply them.
"""

from repro.secure.policies import (
    POLICY_NONE,
    POLICY_BASIC128RSA15,
    POLICY_BASIC256,
    POLICY_AES128_SHA256_RSAOAEP,
    POLICY_BASIC256SHA256,
    POLICY_AES256_SHA256_RSAPSS,
    ALL_POLICIES,
    SECURE_POLICIES,
    DEPRECATED_POLICIES,
    SecurityPolicy,
    policy_by_label,
    policy_by_uri,
)
from repro.secure.keysets import SymmetricKeys, derive_channel_keys
from repro.secure.channel import (
    ClientSecureChannel,
    SecureChannelError,
    ServerSecureChannel,
)
from repro.secure.negotiation import ChannelSecurity

__all__ = [
    "ALL_POLICIES",
    "DEPRECATED_POLICIES",
    "ChannelSecurity",
    "ClientSecureChannel",
    "POLICY_AES128_SHA256_RSAOAEP",
    "POLICY_AES256_SHA256_RSAPSS",
    "POLICY_BASIC128RSA15",
    "POLICY_BASIC256",
    "POLICY_BASIC256SHA256",
    "POLICY_NONE",
    "SECURE_POLICIES",
    "SecureChannelError",
    "SecurityPolicy",
    "ServerSecureChannel",
    "SymmetricKeys",
    "derive_channel_keys",
    "policy_by_label",
    "policy_by_uri",
]
