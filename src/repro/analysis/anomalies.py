"""Anomaly analysis: the hostile-Internet surface of a study.

The paper's measurement constantly runs into deployments that are
broken in mundane ways — expired certificates, deprecated-only
security policies, honeypot-like responders, half-speaking TCP stacks.
This analysis aggregates everything a sweep recorded about such hosts:
per-``error_category`` failure counts, certificate pathologies,
policy-hygiene breakdowns, honeypot tells, and cross-sweep address
churn.  Detection works from scan records alone; when the population
spec is available (simulated studies), ``spec_personalities`` carries
the planted ground truth the golden tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scanner.records import HostRecord, MeasurementSnapshot
from repro.secure.policies import policy_by_uri
from repro.util.simtime import parse_utc


@dataclass
class AnomalyStatistics:
    """Counters over the final sweep (plus cross-sweep churn)."""

    total_records: int = 0
    total_servers: int = 0
    # How failed hosts failed: error_category -> count, at each level.
    host_error_categories: dict[str, int] = field(default_factory=dict)
    session_error_categories: dict[str, int] = field(default_factory=dict)
    details_error_categories: dict[str, int] = field(default_factory=dict)
    # Transport-level oddballs.
    junk_talkers: int = 0  # open, spoke, but not OPC UA — no failure class
    stalled_hosts: int = 0  # hit the stall deadline (slow-loris)
    # Certificate pathologies among reachable servers.
    expired_certificates: int = 0
    not_yet_valid_certificates: int = 0
    hostname_mismatches: int = 0  # cert names a different application
    invalid_signatures: int = 0  # self-signed certs that fail verification
    # Policy hygiene.
    deprecated_only_hosts: int = 0  # secure-only at deprecated policies
    # Honeypot tells: session completes, every data service faults.
    honeypot_suspects: int = 0
    # Applications observed at more than one address across sweeps.
    churned_applications: int = 0
    # Planted ground truth (empty when no spec is available, and for
    # well-behaved populations).
    spec_personalities: dict[str, int] = field(default_factory=dict)


def _bump(counter: dict[str, int], key: str) -> None:
    counter[key] = counter.get(key, 0) + 1


def _is_deprecated_only(record: HostRecord) -> bool:
    """Endpoints present, no None-policy fallback, all deprecated."""
    if not record.endpoints:
        return False
    for endpoint in record.endpoints:
        uri = endpoint.security_policy_uri
        if uri is None:
            return False
        try:
            policy = policy_by_uri(uri)
        except KeyError:
            return False
        if not policy.is_deprecated:
            return False
    return True


def _is_honeypot_suspect(record: HostRecord) -> bool:
    """The session dance completed, but no data service ever did."""
    session = record.session
    return (
        session is not None
        and session.success
        and session.details_error is not None
        and session.details_error.startswith("service-fault")
        and not record.namespaces
    )


def analyze_anomalies(
    snapshots: list[MeasurementSnapshot], spec=None
) -> AnomalyStatistics:
    """Aggregate anomaly counters for a study's sweeps.

    Failure categories and certificate checks read the final snapshot
    (the paper's analysis set); address churn compares server
    addresses across every sweep.
    """
    stats = AnomalyStatistics()
    if not snapshots:
        return stats
    final = snapshots[-1]
    date = final.date_dt()
    stats.total_records = len(final.records)

    for record in final.records:
        if record.error_category is not None:
            _bump(stats.host_error_categories, record.error_category)
            if record.error_category == "timeout":
                stats.stalled_hosts += 1
        elif record.tcp_open and not record.is_opcua:
            stats.junk_talkers += 1

    servers = final.servers()
    stats.total_servers = len(servers)
    # Certificates shared across hosts (reuse images) legitimately
    # name an application other than the host's — only unique
    # certificates count toward the hostname-mismatch pathology.
    thumbprint_hosts: dict[str, int] = {}
    for record in servers:
        if record.certificate is not None:
            _bump(thumbprint_hosts, record.certificate.thumbprint_hex)

    for record in servers:
        session = record.session
        if session is not None:
            if session.error_category is not None:
                _bump(stats.session_error_categories, session.error_category)
            if session.details_error is not None:
                prefix = session.details_error.split(":", 1)[0]
                _bump(stats.details_error_categories, prefix)
        certificate = record.certificate
        if certificate is not None:
            if parse_utc(certificate.not_after) < date:
                stats.expired_certificates += 1
            if parse_utc(certificate.not_before) > date:
                stats.not_yet_valid_certificates += 1
            # CA-signed certificates cannot verify against their own
            # embedded key; only a *self*-signed cert failing its own
            # signature is a pathology.
            if certificate.self_signed and not certificate.signature_valid:
                stats.invalid_signatures += 1
            if (
                certificate.application_uri is not None
                and record.application_uri is not None
                and certificate.application_uri != record.application_uri
                and thumbprint_hosts[certificate.thumbprint_hex] == 1
            ):
                stats.hostname_mismatches += 1
        if _is_deprecated_only(record):
            stats.deprecated_only_hosts += 1
        if _is_honeypot_suspect(record):
            stats.honeypot_suspects += 1

    addresses_by_application: dict[str, set[int]] = {}
    for snapshot in snapshots:
        for record in snapshot.servers():
            if record.application_uri is not None:
                addresses_by_application.setdefault(
                    record.application_uri, set()
                ).add(record.ip)
    stats.churned_applications = sum(
        1 for ips in addresses_by_application.values() if len(ips) > 1
    )

    if spec is not None:
        stats.spec_personalities = spec.personality_counts()
    return stats
