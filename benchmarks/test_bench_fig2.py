"""Regenerates Figure 2 (hosts over time by manufacturer)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_fig2_hosts_over_time(benchmark, study_result):
    report = benchmark(run_experiment, "fig2", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
