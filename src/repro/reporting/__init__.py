"""Rendering: ASCII tables, bar charts, and paper-vs-measured figures."""

from repro.reporting.tables import render_table
from repro.reporting.charts import render_bars, render_cdf
from repro.reporting.figures import Comparison, ExperimentReport

__all__ = [
    "Comparison",
    "ExperimentReport",
    "render_bars",
    "render_cdf",
    "render_table",
]
