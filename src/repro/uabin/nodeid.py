"""NodeId and ExpandedNodeId with all six binary encodings.

OPC UA addresses every node by a NodeId: a namespace index plus an
identifier that is numeric, string, GUID, or opaque bytes.  The binary
encoding selects the most compact of six formats via the first byte.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass

from repro.util.binary import BinaryReader, BinaryWriter

# Encoding bytes (OPC 10000-6 §5.2.2.9).
_TWO_BYTE = 0x00
_FOUR_BYTE = 0x01
_NUMERIC = 0x02
_STRING = 0x03
_GUID = 0x04
_BYTESTRING = 0x05
_NAMESPACE_URI_FLAG = 0x80
_SERVER_INDEX_FLAG = 0x40


@dataclass(frozen=True)
class NodeId:
    """A node identifier: ``NodeId(namespace, identifier)``.

    The identifier type is inferred from the Python type: int for
    numeric, str for string, :class:`uuid.UUID` for GUID, bytes for
    opaque identifiers.
    """

    namespace: int = 0
    identifier: int | str | uuid.UUID | bytes = 0

    def __post_init__(self):
        if not 0 <= self.namespace <= 0xFFFF:
            raise ValueError(f"namespace index out of range: {self.namespace}")
        if isinstance(self.identifier, int) and not 0 <= self.identifier <= 0xFFFFFFFF:
            raise ValueError(f"numeric identifier out of range: {self.identifier}")

    @property
    def is_null(self) -> bool:
        return self.namespace == 0 and self.identifier in (0, "", b"")

    def to_string(self) -> str:
        """Render in the ``ns=1;i=42`` textual convention."""
        prefix = f"ns={self.namespace};" if self.namespace else ""
        if isinstance(self.identifier, int):
            return f"{prefix}i={self.identifier}"
        if isinstance(self.identifier, str):
            return f"{prefix}s={self.identifier}"
        if isinstance(self.identifier, uuid.UUID):
            return f"{prefix}g={self.identifier}"
        return f"{prefix}b={self.identifier.hex()}"

    @classmethod
    def from_string(cls, text: str) -> "NodeId":
        namespace = 0
        rest = text
        if text.startswith("ns="):
            ns_part, _, rest = text.partition(";")
            namespace = int(ns_part[3:])
        kind, _, value = rest.partition("=")
        if kind == "i":
            return cls(namespace, int(value))
        if kind == "s":
            return cls(namespace, value)
        if kind == "g":
            return cls(namespace, uuid.UUID(value))
        if kind == "b":
            return cls(namespace, bytes.fromhex(value))
        raise ValueError(f"unparseable NodeId: {text!r}")

    # --- binary encoding -----------------------------------------------------

    def encode(self, writer: BinaryWriter) -> None:
        ident = self.identifier
        if isinstance(ident, int):
            if self.namespace == 0 and ident <= 0xFF:
                writer.write_uint8(_TWO_BYTE)
                writer.write_uint8(ident)
            elif self.namespace <= 0xFF and ident <= 0xFFFF:
                writer.write_uint8(_FOUR_BYTE)
                writer.write_uint8(self.namespace)
                writer.write_uint16(ident)
            else:
                writer.write_uint8(_NUMERIC)
                writer.write_uint16(self.namespace)
                writer.write_uint32(ident)
        elif isinstance(ident, str):
            writer.write_uint8(_STRING)
            writer.write_uint16(self.namespace)
            _write_string(writer, ident)
        elif isinstance(ident, uuid.UUID):
            writer.write_uint8(_GUID)
            writer.write_uint16(self.namespace)
            writer.write_bytes(ident.bytes_le)
        elif isinstance(ident, bytes):
            writer.write_uint8(_BYTESTRING)
            writer.write_uint16(self.namespace)
            _write_bytestring(writer, ident)
        else:
            raise TypeError(f"unsupported identifier type: {type(ident).__name__}")

    @classmethod
    def decode(cls, reader: BinaryReader) -> "NodeId":
        node_id, _, _ = _decode_nodeid_with_flags(reader)
        return node_id

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        self.encode(writer)
        return writer.to_bytes()


@dataclass(frozen=True)
class ExpandedNodeId:
    """NodeId plus optional namespace URI and server index."""

    node_id: NodeId = NodeId()
    namespace_uri: str | None = None
    server_index: int = 0

    def encode(self, writer: BinaryWriter) -> None:
        inner = BinaryWriter()
        self.node_id.encode(inner)
        data = bytearray(inner.to_bytes())
        if self.namespace_uri is not None:
            data[0] |= _NAMESPACE_URI_FLAG
        if self.server_index:
            data[0] |= _SERVER_INDEX_FLAG
        writer.write_bytes(bytes(data))
        if self.namespace_uri is not None:
            _write_string(writer, self.namespace_uri)
        if self.server_index:
            writer.write_uint32(self.server_index)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "ExpandedNodeId":
        node_id, has_uri, has_server = _decode_nodeid_with_flags(reader)
        namespace_uri = _read_string(reader) if has_uri else None
        server_index = reader.read_uint32() if has_server else 0
        return cls(node_id, namespace_uri, server_index)


def _decode_nodeid_with_flags(reader: BinaryReader) -> tuple[NodeId, bool, bool]:
    encoding = reader.read_uint8()
    has_uri = bool(encoding & _NAMESPACE_URI_FLAG)
    has_server = bool(encoding & _SERVER_INDEX_FLAG)
    kind = encoding & 0x3F
    if kind == _TWO_BYTE:
        return NodeId(0, reader.read_uint8()), has_uri, has_server
    if kind == _FOUR_BYTE:
        ns = reader.read_uint8()
        return NodeId(ns, reader.read_uint16()), has_uri, has_server
    if kind == _NUMERIC:
        ns = reader.read_uint16()
        return NodeId(ns, reader.read_uint32()), has_uri, has_server
    if kind == _STRING:
        ns = reader.read_uint16()
        return NodeId(ns, _read_string(reader) or ""), has_uri, has_server
    if kind == _GUID:
        ns = reader.read_uint16()
        guid = uuid.UUID(bytes_le=reader.read_bytes(16))
        return NodeId(ns, guid), has_uri, has_server
    if kind == _BYTESTRING:
        ns = reader.read_uint16()
        return NodeId(ns, _read_bytestring(reader) or b""), has_uri, has_server
    raise ValueError(f"invalid NodeId encoding byte: 0x{encoding:02x}")


# Local copies of string helpers to avoid a circular import with
# builtin.py (which imports NodeId).


def _write_string(writer: BinaryWriter, value: str | None) -> None:
    if value is None:
        writer.write_int32(-1)
        return
    data = value.encode("utf-8")
    writer.write_int32(len(data))
    writer.write_bytes(data)


def _read_string(reader: BinaryReader) -> str | None:
    length = reader.read_int32()
    if length < 0:
        return None
    return reader.read_bytes(length).decode("utf-8")


def _write_bytestring(writer: BinaryWriter, value: bytes | None) -> None:
    if value is None:
        writer.write_int32(-1)
        return
    writer.write_int32(len(value))
    writer.write_bytes(value)


def _read_bytestring(reader: BinaryReader) -> bytes | None:
    length = reader.read_int32()
    if length < 0:
        return None
    return reader.read_bytes(length)
