"""Materialize the spec into servers, certificates, and network hosts.

``PopulationBuilder`` is the bridge between the abstract spec and the
running simulation: it plans autonomous systems (Figure 8b's
concentrations), mints per-host RSA keys and certificates (sharing
key+certificate inside reuse groups, §5.3), instantiates a fully
configured :class:`~repro.server.engine.UaServer` per host, and
registers everything with a :class:`~repro.netsim.net.SimNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.deployments.addresspaces import (
    RightsProfile,
    build_address_space,
    draw_rights_profile,
)
from repro.deployments.keyfactory import KeyFactory
from repro.deployments.manufacturers import (
    Manufacturer,
    manufacturer_by_name,
)
from repro.deployments.personalities import (
    CHURN_SWEEPS,
    PERSONALITIES,
    Personality,
)
from repro.deployments.profiles import CERT_CLASSES, POLICY_GROUPS, CertClass
from repro.deployments.spec import (
    AUTH,
    PopulationSpec,
    SC,
    SpecRow,
)
from repro.netsim.asn import AsRegistry, AutonomousSystem
from repro.netsim.net import SimHost, SimNetwork
from repro.secure.policies import POLICY_NONE
from repro.server.auth import Authenticator, UserDirectory
from repro.server.endpoints import EndpointConfig
from repro.server.engine import ServerBehavior, ServerConfig, UaServer
from repro.uabin.enums import ApplicationType, MessageSecurityMode, UserTokenType
from repro.util.ipaddr import CidrBlock, format_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import CertificateBuilder
from repro.x509.certificate import Certificate
from repro.x509.name import DistinguishedName

OPCUA_PORT = 4840

# Autonomous-system plan (Appendix B.1.2): one ISP focused on
# connecting (I)IoT devices carries a large share of the weak-cert and
# reuse hosts; two regional ISPs concentrate deprecated policies and
# anonymous access; the rest spreads over generic networks.
AS_IIOT = 64600
AS_REGIONAL_1 = 64610
AS_REGIONAL_2 = 64611
GENERIC_AS_BASE = 64700
GENERIC_AS_COUNT = 45


@dataclass
class BuiltHost:
    """One materialized deployment plus its ground truth."""

    index: int
    row: SpecRow
    address: int
    port: int
    asn: int
    server: UaServer
    certificate: Certificate
    key_label: str
    rights: RightsProfile | None
    deployed_at: datetime
    # Set by the timeline when this host renews its certificate.
    renewal: "object | None" = None
    # Hostile device-zoo personality name (None: well-behaved).
    personality: str | None = None
    # Address-churn hosts carry one address per sweep; the last entry
    # equals ``address`` so ``url`` names the final-sweep reality.
    sweep_addresses: tuple[int, ...] | None = None

    @property
    def url(self) -> str:
        return f"opc.tcp://{format_ipv4(self.address)}:{self.port}/"

    def address_for_sweep(self, sweep: int) -> int:
        if self.sweep_addresses is None:
            return self.address
        return self.sweep_addresses[sweep]

    def connection_factory(self):
        """The bare factory this host answers connections with.

        The engine's ``new_connection`` for well-behaved hosts; a
        personality wrapper around (or instead of) it for hostile
        ones.  This is the same factory shape
        :class:`~repro.server.tcp.TcpServerHost` hosts, so the zoo
        runs unchanged over the simulated and live lanes.
        """
        factory = self.server.new_connection
        if self.personality is not None:
            spec = PERSONALITIES[self.personality]
            if spec.wrap_connection is not None:
                return spec.wrap_connection(factory)
        return factory


def build_as_registry() -> AsRegistry:
    registry = AsRegistry()
    registry.register(
        AutonomousSystem(
            AS_IIOT,
            "IIoT Connect ISP",
            [CidrBlock.parse("10.64.0.0/14")],
            profile="iiot-isp",
        )
    )
    registry.register(
        AutonomousSystem(
            AS_REGIONAL_1,
            "Regional ISP North",
            [CidrBlock.parse("10.80.0.0/15")],
            profile="regional-isp",
        )
    )
    registry.register(
        AutonomousSystem(
            AS_REGIONAL_2,
            "Regional ISP South",
            [CidrBlock.parse("10.82.0.0/15")],
            profile="regional-isp",
        )
    )
    for offset in range(GENERIC_AS_COUNT):
        registry.register(
            AutonomousSystem(
                GENERIC_AS_BASE + offset,
                f"Enterprise-{offset:02d}",
                [CidrBlock.parse(f"10.{100 + offset}.0.0/16")],
            )
        )
    return registry


class PopulationBuilder:
    """Builds all hosts of the latest-measurement population."""

    def __init__(
        self,
        spec: PopulationSpec,
        seed: int = 20200830,
        key_factory: KeyFactory | None = None,
        compact_address_spaces: bool = True,
    ):
        self._spec = spec
        self._seed = seed
        self._rng = DeterministicRng(seed, "population")
        self._keys = key_factory or KeyFactory(seed)
        self._registry = build_as_registry()
        self._reuse_certs: dict[str, tuple[Certificate, object, str]] = {}
        self._compact = compact_address_spaces

    @property
    def as_registry(self) -> AsRegistry:
        return self._registry

    # --- host construction ---------------------------------------------------

    def build_hosts(self) -> list[BuiltHost]:
        """Materialize every server host of the final population."""
        hosts = []
        reference_port_hosts = self._pick_reference_port_hosts()
        for index, row in self._spec.expand():
            hosts.append(
                self._build_one(index, row, 4841 if index in reference_port_hosts else OPCUA_PORT)
            )
        return hosts

    def _pick_reference_port_hosts(self) -> set[int]:
        """~20 servers live on port 4841, found only via references.

        These model Figure 2's "non-default port" hosts that joined the
        dataset once the scanner started following endpoint references
        (2020-05-04).  They must be reachable and harmless to overall
        counts, so accessible/auth-rejected rows are preferred.
        """
        rng = self._rng.substream("reference-port")
        eligible = [
            index
            for index, row in self._spec.expand()
            if row.outcome == AUTH
            and not row.offers_anonymous
            and row.reuse_group is None  # keep §5.5's family counts exact
        ]
        return set(rng.sample(eligible, k=min(20, len(eligible))))

    def _build_one(self, index: int, row: SpecRow, port: int) -> BuiltHost:
        rng = self._rng.substream(f"host-{index}")
        manufacturer = manufacturer_by_name(row.manufacturer)
        asn = self._asn_for(row, index, rng)
        address = self._registry.allocate_address(asn, rng)
        url = f"opc.tcp://{format_ipv4(address)}:{port}/"
        personality = (
            PERSONALITIES[row.personality]
            if row.personality is not None
            else None
        )
        # Address-churn hosts draw one extra address per earlier sweep
        # from a dedicated substream, so well-behaved hosts consume
        # exactly the same draws as before personalities existed.
        sweep_addresses = None
        if personality is not None and personality.churns_address:
            churn_rng = rng.substream("churn")
            earlier = tuple(
                self._registry.allocate_address(asn, churn_rng)
                for _ in range(CHURN_SWEEPS - 1)
            )
            sweep_addresses = earlier + (address,)

        certificate, private_key, key_label = self._certificate_for(
            index, row, manufacturer, url, rng, personality
        )

        if personality is not None and personality.endpoint_configs is not None:
            endpoint_configs = personality.endpoint_configs(row)
        else:
            endpoint_configs = self._endpoint_configs_for(row)
        rights = None
        if row.accessible:
            rights = draw_rights_profile(rng.substream("rights"))
            # ~10 % of accessible systems expose operator contact data
            # (the paper could identify contacts for 50 of 493).
            contact = None
            if rng.substream("contact").random() < 0.101:
                contact = (
                    f"operator-{index}@"
                    f"{manufacturer.name.lower().replace(' ', '-')}-plant.example.org"
                )
            space = build_address_space(
                row.outcome,
                manufacturer,
                rights,
                rng.substream("space"),
                contact_email=contact,
            )
        elif self._compact:
            space = None  # non-accessible hosts never expose their space
        else:
            space = build_address_space(
                "inaccessible", manufacturer, draw_rights_profile(
                    rng.substream("rights")
                ), rng.substream("space"),
            )

        directory = UserDirectory()
        directory.add_user("plant-operator", rng.token_bytes(12).hex())
        behavior = ServerBehavior(
            reject_untrusted_client_certs=(row.outcome == SC),
            faulty_session_config=(
                row.outcome == AUTH and row.offers_anonymous
            ),
            fault_data_services=(
                personality is not None and personality.fault_data_services
            ),
        )
        config = ServerConfig(
            application_uri=manufacturer.application_uri(index),
            application_name=f"{manufacturer.name} OPC UA Server",
            endpoint_url=url,
            product_uri=manufacturer.product_uri,
            application_type=ApplicationType.SERVER,
            certificate=certificate,
            private_key=private_key,
            endpoint_configs=endpoint_configs,
            token_types=list(row.token_combo),
            authenticator=Authenticator(
                allowed_token_types=set(row.token_combo), directory=directory
            ),
            address_space=space,
            behavior=behavior,
            software_version=self._software_version(manufacturer, rng),
        )
        server = UaServer(config, rng.substream("server"))
        return BuiltHost(
            index=index,
            row=row,
            address=address,
            port=port,
            asn=asn,
            server=server,
            certificate=certificate,
            key_label=key_label,
            rights=rights,
            deployed_at=parse_utc("2020-01-01"),
            personality=row.personality,
            sweep_addresses=sweep_addresses,
        )

    # --- attribute helpers -----------------------------------------------------

    def _asn_for(self, row: SpecRow, index: int, rng: DeterministicRng) -> int:
        """AS placement implementing Figure 8b's concentrations."""
        if row.reuse_group == "R1":
            # 385 devices across exactly 24 ASes, weighted toward the
            # IIoT ISP (the paper's extreme case).
            bucket = rng.substream("as").randrange(100)
            if bucket < 55:
                return AS_IIOT
            return GENERIC_AS_BASE + (index % 23)
        if row.reuse_group == "R2":
            return (AS_IIOT, *range(GENERIC_AS_BASE, GENERIC_AS_BASE + 7))[index % 8]
        if row.reuse_group == "R3":
            return (AS_IIOT, *range(GENERIC_AS_BASE + 7, GENERIC_AS_BASE + 11))[
                index % 5
            ]
        cert = CERT_CLASSES[row.cert_class]
        if cert.signature_hash != "sha256" and row.policy_group in ("P4", "P4s1"):
            # Weak-certificate hosts cluster on the IIoT ISP.
            if rng.substream("as").random() < 0.45:
                return AS_IIOT
        group = POLICY_GROUPS[row.policy_group]
        most = max(group.policies, key=lambda p: p.security_rank)
        if most.is_deprecated and row.offers_anonymous:
            # Deprecated + anonymous: the two regional ISPs.
            return AS_REGIONAL_1 if index % 2 else AS_REGIONAL_2
        return GENERIC_AS_BASE + rng.substream("as").randrange(GENERIC_AS_COUNT)

    def _endpoint_configs_for(self, row: SpecRow) -> list[EndpointConfig]:
        group = POLICY_GROUPS[row.policy_group]
        configs = []
        for mode in row.mode_set:
            if mode == MessageSecurityMode.NONE:
                tokens = None
                if row.anon_on_secure_only:
                    tokens = tuple(
                        t for t in row.token_combo
                        if t != UserTokenType.ANONYMOUS
                    ) or (UserTokenType.USERNAME,)
                configs.append(
                    EndpointConfig(mode, POLICY_NONE, token_types=tokens)
                )
                continue
            for policy in group.policies:
                if policy is POLICY_NONE:
                    continue
                configs.append(EndpointConfig(mode, policy))
        return configs

    # Two hosts carry CA-signed certificates (paper §5.2: "99 %
    # self-signed, 2 CA signed").
    CA_SIGNED_INDEXES = (7, 8)

    def _certificate_for(
        self,
        index: int,
        row: SpecRow,
        manufacturer: Manufacturer,
        url: str,
        rng: DeterministicRng,
        personality: Personality | None = None,
    ):
        if row.reuse_group is not None:
            cached = self._reuse_certs.get(row.reuse_group)
            if cached is not None:
                return cached
        cert_class = CERT_CLASSES[row.cert_class]
        key_label = row.reuse_group or f"host-{index}"
        pair = self._keys.key_for(key_label, cert_class.key_bits)
        not_before = self._not_before_for(cert_class, rng)
        valid_days = 365 * 10
        cert_uri = (
            manufacturer.application_uri(index)
            if row.reuse_group is None
            else f"{manufacturer.uri_prefix}:image"
        )
        if personality is not None:
            # Certificate pathologies override *after* the standard
            # draws, so the RNG call sequence stays identical.
            if personality.cert_not_before is not None:
                not_before = parse_utc(personality.cert_not_before)
                valid_days = personality.cert_valid_days or valid_days
            if personality.mismatched_cert_uri:
                cert_uri = f"{manufacturer.uri_prefix}:mislabel:{index}"
        common_name = (
            f"{manufacturer.name}-device-{index}"
            if row.reuse_group is None
            else f"{manufacturer.name}-image"
        )
        builder = (
            CertificateBuilder()
            .subject(
                DistinguishedName.build(
                    common_name=common_name,
                    organization=manufacturer.subject_organization,
                )
            )
            .public_key(pair.public)
            .valid_from(not_before)
            .valid_for_days(valid_days)
            .application_uri(cert_uri)
        )
        if index in self.CA_SIGNED_INDEXES and row.reuse_group is None:
            ca_key = self._keys.key_for("study-ca", 2048)
            certificate = builder.sign_with_ca(
                ca_key.private,
                DistinguishedName.build(
                    common_name="Industrial Device CA",
                    organization="Industrial CA Services",
                ),
                hash_name=cert_class.signature_hash,
                rng=rng.substream("cert"),
            )
        else:
            certificate = builder.self_sign(
                pair.private,
                hash_name=cert_class.signature_hash,
                rng=rng.substream("cert"),
            )
        result = (certificate, pair.private, key_label)
        if row.reuse_group is not None:
            self._reuse_certs[row.reuse_group] = result
        return result

    def _not_before_for(
        self, cert_class: CertClass, rng: DeterministicRng
    ) -> datetime:
        """Certificate creation dates driving §5.5's age analysis.

        Roughly half of the SHA-1 certificates were minted *after* the
        2017 deprecation of the SHA-1 policies, most of those after
        2019 — the paper's evidence that insecure deployments continue.
        """
        draw = rng.substream("age").random()
        if cert_class.signature_hash == "sha1":
            if draw < 0.44:
                return self._random_date(rng, "2019-01-01", "2020-06-01")
            if draw < 0.51:
                return self._random_date(rng, "2017-06-01", "2018-12-31")
            return self._random_date(rng, "2012-01-01", "2017-05-31")
        if cert_class.signature_hash == "md5":
            return self._random_date(rng, "2010-01-01", "2014-12-31")
        return self._random_date(rng, "2018-01-01", "2020-06-01")

    def _random_date(
        self, rng: DeterministicRng, start: str, end: str
    ) -> datetime:
        start_dt = parse_utc(start)
        end_dt = parse_utc(end)
        seconds = int((end_dt - start_dt).total_seconds())
        return start_dt + timedelta(
            seconds=rng.substream("date").randrange(max(seconds, 1))
        )

    def _software_version(
        self, manufacturer: Manufacturer, rng: DeterministicRng
    ) -> str:
        major = rng.randrange(1, 4)
        minor = rng.randrange(0, 12)
        patch = rng.randrange(0, 30)
        return f"{major}.{minor}.{patch}"


def install_hosts(network: SimNetwork, hosts: list[BuiltHost]) -> None:
    """Register built hosts (and their listeners) with the network."""
    for built in hosts:
        sim_host = network.host(built.address)
        if sim_host is None:
            sim_host = SimHost(address=built.address, asn=built.asn)
            network.add_host(sim_host)
        sim_host.listen(built.port, built.connection_factory())
        sim_host.tags[f"row:{built.port}"] = built.row.row_id
