"""Golden-snapshot regression: the serial tiny study is pinned by hash.

Any accidental determinism break — RNG re-keying, record schema drift,
candidate-order change, clock leakage between tasks — lands here as a
digest mismatch in the CI fast tier, instead of surfacing twenty
minutes into the full-study benchmark on main.

If the mismatch is *intentional*, regenerate via
``PYTHONPATH=src python tests/golden/regenerate.py`` and justify the
refreshed digests in the same PR.
"""

from __future__ import annotations

import pytest

from repro.core.golden import (
    snapshot_digest,
    study_digest,
    study_digests,
    tiny_study_config,
)

pytestmark = pytest.mark.golden


def test_serial_tiny_study_matches_committed_digest(
    serial_tiny_result, committed_digests
):
    per_sweep = study_digests(serial_tiny_result)
    # Compare sweep-by-sweep first: a single diverging sweep narrows
    # the regression to one date's pipeline instead of "something
    # changed somewhere in eight sweeps".
    assert per_sweep == committed_digests["per_sweep"]
    assert study_digest(serial_tiny_result) == committed_digests["digest"]


def test_digest_config_still_matches_committed_metadata(committed_digests):
    """The digest is only meaningful for the exact pinned config."""
    config = tiny_study_config()
    assert committed_digests["seed"] == config.seed
    assert committed_digests["probe_batch_size"] == config.probe_batch_size


def test_snapshot_digest_is_order_sensitive(serial_tiny_result):
    """The digest must notice record-order changes, not just content —
    canonical ordering is part of the cross-backend contract."""
    snapshot = serial_tiny_result.final_snapshot
    reference = snapshot_digest(snapshot)
    snapshot.records.reverse()
    try:
        assert snapshot_digest(snapshot) != reference
    finally:
        snapshot.records.reverse()
    assert snapshot_digest(snapshot) == reference
