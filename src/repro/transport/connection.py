"""Frame encoding and incremental frame parsing over a byte stream."""

from __future__ import annotations

from repro.transport.messages import HEADER_SIZE, MessageHeader, MessageType, TransportError


def encode_frame(message_type: MessageType, chunk_type: str, body: bytes) -> bytes:
    """Wrap a body in the 8-byte transport header."""
    header = MessageHeader(message_type, chunk_type, HEADER_SIZE + len(body))
    return header.encode() + body


class FrameReader:
    """Incremental parser turning a byte stream into (header, body) frames.

    Works with partial delivery: feed arbitrary byte slices, pop
    complete frames as they become available.
    """

    def __init__(self, max_frame_size: int = 16 * 1024 * 1024):
        self._buffer = bytearray()
        self._max_frame_size = max_frame_size

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def next_frame(self) -> tuple[MessageHeader, bytes] | None:
        """Pop one complete frame, or None if more bytes are needed."""
        if len(self._buffer) < HEADER_SIZE:
            return None
        header = MessageHeader.decode(bytes(self._buffer[:HEADER_SIZE]))
        if header.size < HEADER_SIZE:
            # A frame can never be smaller than its own header.  Guard
            # here as well as in the header decoder: consuming such a
            # frame would leave the buffer untouched, so drain_frames
            # would yield the same bytes forever.
            raise TransportError(f"frame size too small: {header.size}")
        if header.size > self._max_frame_size:
            raise TransportError(f"frame of {header.size} bytes exceeds limit")
        if len(self._buffer) < header.size:
            return None
        body = bytes(self._buffer[HEADER_SIZE : header.size])
        del self._buffer[: header.size]
        return header, body

    def drain_frames(self):
        """Yield all complete frames currently buffered."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame
