"""Fuzzing the frame layer: hostile bytes must never hang the scanner.

The device-zoo personalities plant *specific* malformed streams; these
properties plant *arbitrary* ones.  Oracle: the frame-size guards —
a frame header may promise at most ``max_frame_size`` bytes and at
least its own 8 — plus the reassembly invariants.  For any byte
stream, :class:`FrameReader` either yields well-formed frames, asks
for more bytes, or raises :class:`TransportError`; and
``UaClient._read_frame`` terminates with a frame or a classified
error.  No input may cause an unbounded loop, an over-read past the
buffered bytes, or a silently mis-framed message.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.client import UaClient
from repro.client.errors import ConnectionClosedError, UaClientError
from repro.transport.connection import FrameReader, encode_frame
from repro.transport.messages import (
    HEADER_SIZE,
    MessageType,
    TransportError,
)

MAX_TEST_FRAME = 4096

#: Well-formed frames: any type/chunk marker, bounded random body.
valid_frames = st.builds(
    encode_frame,
    st.sampled_from(list(MessageType)),
    st.sampled_from(["F", "C", "A"]),
    st.binary(max_size=200),
)


def chop(data: bytes, boundaries: list[int]) -> list[bytes]:
    """Split ``data`` at the given (arbitrary) cut points."""
    cuts = sorted({min(b, len(data)) for b in boundaries})
    pieces, start = [], 0
    for cut in cuts:
        pieces.append(data[start:cut])
        start = cut
    pieces.append(data[start:])
    return pieces


class ScriptedStream:
    """A read/write stream that replays a fixed chunk script, then EOF."""

    def __init__(self, chunks: list[bytes]):
        self._chunks = list(chunks)
        self.reads = 0

    def write(self, data: bytes) -> None:
        pass

    def read(self) -> bytes:
        self.reads += 1
        if self._chunks:
            return self._chunks.pop(0)
        return b""


def read_all_frames(reader: FrameReader, limit: int = 10_000):
    """Drain a reader with a hard iteration bound (the hang oracle)."""
    frames = []
    for _ in range(limit):
        frame = reader.next_frame()
        if frame is None:
            return frames
        frames.append(frame)
    raise AssertionError("FrameReader did not terminate")


class TestFrameReaderProperties:
    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=400))
    def test_arbitrary_bytes_never_hang_or_overread(self, data):
        reader = FrameReader(max_frame_size=MAX_TEST_FRAME)
        reader.feed(data)
        try:
            frames = read_all_frames(reader)
        except TransportError:
            return  # rejected junk is a legal outcome
        consumed = sum(header.size for header, _ in frames)
        # Every yielded frame is internally consistent and fully
        # accounted for: consumed + still-buffered == fed.
        for header, body in frames:
            assert len(body) == header.size - HEADER_SIZE
            assert header.size >= HEADER_SIZE
            assert header.size <= MAX_TEST_FRAME
        assert consumed + reader.buffered == len(data)
        # Whatever remains is less than one complete frame.
        if reader.buffered >= HEADER_SIZE:
            assert reader.next_frame() is None

    @settings(max_examples=100, deadline=None)
    @given(
        frames=st.lists(valid_frames, max_size=5),
        boundaries=st.lists(st.integers(min_value=0, max_value=2000), max_size=8),
    )
    def test_segmentation_invariance(self, frames, boundaries):
        """Reassembly must not depend on TCP segment boundaries."""
        stream = b"".join(frames)
        whole = FrameReader(max_frame_size=MAX_TEST_FRAME)
        whole.feed(stream)
        expected = read_all_frames(whole)

        pieced = FrameReader(max_frame_size=MAX_TEST_FRAME)
        got = []
        for piece in chop(stream, boundaries):
            pieced.feed(piece)
            got.extend(read_all_frames(pieced))
        assert got == expected
        assert len(got) == len(frames)
        assert pieced.buffered == 0

    @settings(max_examples=50, deadline=None)
    @given(
        size=st.integers(min_value=0, max_value=HEADER_SIZE - 1),
        tail=st.binary(max_size=50),
    )
    def test_undersized_frame_rejected(self, size, tail):
        """size < header size can never yield (it would loop forever)."""
        reader = FrameReader(max_frame_size=MAX_TEST_FRAME)
        reader.feed(b"MSGF" + size.to_bytes(4, "little") + tail)
        try:
            reader.next_frame()
        except TransportError:
            return
        raise AssertionError("undersized frame accepted")

    @settings(max_examples=50, deadline=None)
    @given(size=st.integers(min_value=MAX_TEST_FRAME + 1, max_value=2**32 - 1))
    def test_oversized_promise_rejected_before_delivery(self, size):
        """A huge size field fails fast — no buffering toward a frame
        the peer may never send (the slow-loris precondition)."""
        reader = FrameReader(max_frame_size=MAX_TEST_FRAME)
        reader.feed(b"MSGF" + size.to_bytes(4, "little"))
        try:
            reader.next_frame()
        except TransportError:
            return
        raise AssertionError("oversized frame accepted")


class TestReadFrameProperties:
    def _client(self, chunks):
        stream = ScriptedStream(chunks)
        client = UaClient(stream, None, random.Random(0))
        return client, stream

    @settings(max_examples=100, deadline=None)
    @given(chunks=st.lists(st.binary(max_size=120), max_size=6))
    def test_read_frame_always_terminates(self, chunks):
        """Whatever the peer dribbles, ``_read_frame`` returns a frame
        or raises a classified error — within a bounded number of
        reads (the stream EOFs after the script)."""
        client, stream = self._client(chunks)
        try:
            header, body = client._read_frame()
        except (ConnectionClosedError, TransportError, UaClientError):
            pass
        else:
            assert len(body) == header.size - HEADER_SIZE
        assert stream.reads <= len(chunks) + 1

    @settings(max_examples=50, deadline=None)
    @given(
        frame=valid_frames,
        boundaries=st.lists(st.integers(min_value=1, max_value=300), max_size=4),
    )
    def test_read_frame_reassembles_segmented_delivery(
        self, frame, boundaries
    ):
        """A frame split across arbitrary TCP segments parses whole."""
        pieces = [p for p in chop(frame, boundaries) if p]
        client, _ = self._client(pieces)
        header, body = client._read_frame()
        assert encode_frame(header.message_type, header.chunk_type, body) == frame

    @settings(max_examples=50, deadline=None)
    @given(frame=valid_frames, cut=st.integers(min_value=1, max_value=100))
    def test_truncated_frame_classified_closed(self, frame, cut):
        """EOF mid-frame is ``closed`` — distinct from a silent peer."""
        truncated = frame[: max(HEADER_SIZE, len(frame) - cut)]
        if len(truncated) >= len(frame):
            return  # nothing was actually cut off
        client, _ = self._client([truncated])
        try:
            client._read_frame()
        except ConnectionClosedError as exc:
            assert "mid-frame" in str(exc)
        else:
            raise AssertionError("truncated frame yielded a full frame")

    def test_silent_peer_classified_no_response(self):
        client, _ = self._client([])
        try:
            client._read_frame()
        except ConnectionClosedError as exc:
            assert "no response" in str(exc)
        else:
            raise AssertionError("EOF yielded a frame")

    def test_no_read_after_complete_frame_buffered(self):
        """Once a full frame is buffered the client must not block on
        another read — over-reading would hang on a quiet live peer."""
        frame = encode_frame(MessageType.MESSAGE, "F", b"payload")
        client, stream = self._client([frame])
        client._read_frame()
        assert stream.reads == 1
