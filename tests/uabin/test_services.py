"""Round-trip tests for every service structure."""

from datetime import datetime, timezone

import pytest

from repro.uabin import registry
from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.enums import (
    ApplicationType,
    BrowseDirection,
    MessageSecurityMode,
    NodeClass,
    SecurityTokenRequestType,
    UserTokenType,
)
from repro.uabin.nodeid import ExpandedNodeId, NodeId
from repro.uabin.statuscodes import StatusCodes
from repro.uabin.structs import (
    DecodingError,
    ExtensionObject,
    RequestHeader,
    ResponseHeader,
)
from repro.uabin.types_attribute import (
    ReadRequest,
    ReadResponse,
    ReadValueId,
    WriteRequest,
    WriteResponse,
    WriteValue,
)
from repro.uabin.types_channel import (
    ChannelSecurityToken,
    CloseSecureChannelRequest,
    OpenSecureChannelRequest,
    OpenSecureChannelResponse,
)
from repro.uabin.types_common import (
    ApplicationDescription,
    EndpointDescription,
    UserTokenPolicy,
)
from repro.uabin.types_discovery import (
    FindServersRequest,
    FindServersResponse,
    GetEndpointsRequest,
    GetEndpointsResponse,
)
from repro.uabin.types_method import (
    CallMethodRequest,
    CallMethodResult,
    CallRequest,
    CallResponse,
    ServiceFault,
)
from repro.uabin.types_session import (
    ActivateSessionRequest,
    ActivateSessionResponse,
    AnonymousIdentityToken,
    CloseSessionRequest,
    CreateSessionRequest,
    CreateSessionResponse,
    IssuedIdentityToken,
    UserNameIdentityToken,
    X509IdentityToken,
)
from repro.uabin.types_view import (
    BrowseDescription,
    BrowseRequest,
    BrowseResponse,
    BrowseResult,
    ReferenceDescription,
)
from repro.uabin.variant import DataValue, Variant, VariantType

NOW = datetime(2020, 8, 30, 12, 0, 0, tzinfo=timezone.utc)


def round_trip(value):
    out = type(value).from_bytes(value.to_bytes())
    assert out == value
    return out


def make_endpoint():
    return EndpointDescription(
        endpoint_url="opc.tcp://10.0.0.1:4840/",
        server=ApplicationDescription(
            application_uri="urn:bachmann:m1/1",
            product_uri="urn:bachmann:m1",
            application_name=LocalizedText("M1 controller"),
            application_type=ApplicationType.SERVER,
            discovery_urls=["opc.tcp://10.0.0.1:4840/"],
        ),
        server_certificate=b"\x30\x82\x01\x00",
        security_mode=MessageSecurityMode.SIGN_AND_ENCRYPT,
        security_policy_uri="http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256",
        user_identity_tokens=[
            UserTokenPolicy(policy_id="anon", token_type=UserTokenType.ANONYMOUS),
            UserTokenPolicy(policy_id="user", token_type=UserTokenType.USERNAME),
        ],
        transport_profile_uri="http://opcfoundation.org/UA-Profile/Transport/uatcp-uasc-uabinary",
        security_level=3,
    )


class TestHeaders:
    def test_request_header(self):
        header = RequestHeader(
            authentication_token=NodeId(0, 42),
            timestamp=NOW,
            request_handle=7,
            timeout_hint=5000,
        )
        round_trip(header)

    def test_response_header_with_fault(self):
        header = ResponseHeader(
            timestamp=NOW,
            request_handle=7,
            service_result=StatusCodes.BadServiceUnsupported,
        )
        round_trip(header)


class TestDiscoveryServices:
    def test_get_endpoints_request(self):
        round_trip(
            GetEndpointsRequest(
                request_header=RequestHeader(timestamp=NOW),
                endpoint_url="opc.tcp://10.0.0.1:4840/",
                locale_ids=["en"],
            )
        )

    def test_get_endpoints_response(self):
        round_trip(
            GetEndpointsResponse(
                response_header=ResponseHeader(timestamp=NOW),
                endpoints=[make_endpoint(), make_endpoint()],
            )
        )

    def test_empty_endpoint_list(self):
        out = round_trip(GetEndpointsResponse(endpoints=[]))
        assert out.endpoints == []

    def test_find_servers(self):
        round_trip(FindServersRequest(endpoint_url="opc.tcp://h:4840/"))
        round_trip(
            FindServersResponse(
                servers=[ApplicationDescription(application_uri="urn:x")]
            )
        )

    def test_endpoint_token_types_helper(self):
        endpoint = make_endpoint()
        assert endpoint.token_types() == {
            UserTokenType.ANONYMOUS,
            UserTokenType.USERNAME,
        }


class TestChannelServices:
    def test_open_request(self):
        round_trip(
            OpenSecureChannelRequest(
                request_header=RequestHeader(timestamp=NOW),
                request_type=SecurityTokenRequestType.ISSUE,
                security_mode=MessageSecurityMode.SIGN,
                client_nonce=b"\x01" * 32,
                requested_lifetime=600_000,
            )
        )

    def test_open_response(self):
        round_trip(
            OpenSecureChannelResponse(
                security_token=ChannelSecurityToken(
                    channel_id=5, token_id=1, created_at=NOW, revised_lifetime=600_000
                ),
                server_nonce=b"\x02" * 32,
            )
        )

    def test_close_request(self):
        round_trip(CloseSecureChannelRequest())


class TestSessionServices:
    def test_create_session_round_trip(self):
        round_trip(
            CreateSessionRequest(
                request_header=RequestHeader(timestamp=NOW),
                client_description=ApplicationDescription(
                    application_uri="urn:scanner",
                    application_type=ApplicationType.CLIENT,
                ),
                endpoint_url="opc.tcp://10.0.0.1:4840/",
                session_name="scan",
                client_nonce=b"\x03" * 32,
                client_certificate=b"\x30\x82",
            )
        )

    def test_create_session_response(self):
        round_trip(
            CreateSessionResponse(
                session_id=NodeId(1, 77),
                authentication_token=NodeId(0, b"tok"),
                revised_session_timeout=60_000.0,
                server_endpoints=[make_endpoint()],
            )
        )

    def test_activate_with_anonymous_token(self):
        token = AnonymousIdentityToken(policy_id="anon")
        request = ActivateSessionRequest(
            user_identity_token=registry.make_extension_object(token)
        )
        out = round_trip(request)
        decoded = registry.decode_extension_object(out.user_identity_token)
        assert decoded == token

    def test_activate_with_username_token(self):
        token = UserNameIdentityToken(
            policy_id="user", user_name="operator", password=b"hunter2"
        )
        request = ActivateSessionRequest(
            user_identity_token=registry.make_extension_object(token)
        )
        out = round_trip(request)
        assert registry.decode_extension_object(out.user_identity_token) == token

    def test_activate_response(self):
        round_trip(
            ActivateSessionResponse(
                server_nonce=b"\x04" * 32, results=[StatusCodes.Good]
            )
        )

    def test_close_session(self):
        round_trip(CloseSessionRequest(delete_subscriptions=False))

    @pytest.mark.parametrize(
        "token",
        [
            AnonymousIdentityToken("a"),
            UserNameIdentityToken("u", "user", b"pw", None),
            X509IdentityToken("c", b"\x30"),
            IssuedIdentityToken("t", b"jwt", None),
        ],
    )
    def test_all_identity_tokens_round_trip(self, token):
        wrapped = registry.make_extension_object(token)
        assert registry.decode_extension_object(wrapped) == token


class TestViewServices:
    def test_browse_request(self):
        round_trip(
            BrowseRequest(
                requested_max_references_per_node=1000,
                nodes_to_browse=[
                    BrowseDescription(
                        node_id=NodeId(0, 84),
                        browse_direction=BrowseDirection.FORWARD,
                        reference_type_id=NodeId(0, 33),
                    )
                ],
            )
        )

    def test_browse_response_with_references(self):
        reference = ReferenceDescription(
            reference_type_id=NodeId(0, 35),
            is_forward=True,
            node_id=ExpandedNodeId(NodeId(2, "Demo")),
            browse_name=QualifiedName(2, "Demo"),
            display_name=LocalizedText("Demo"),
            node_class=NodeClass.OBJECT,
            type_definition=ExpandedNodeId(NodeId(0, 61)),
        )
        round_trip(
            BrowseResponse(
                results=[
                    BrowseResult(
                        status_code=StatusCodes.Good, references=[reference]
                    )
                ]
            )
        )


class TestAttributeServices:
    def test_read_request(self):
        round_trip(
            ReadRequest(
                nodes_to_read=[
                    ReadValueId(node_id=NodeId(2, "Demo/Value"), attribute_id=13)
                ]
            )
        )

    def test_read_response(self):
        round_trip(
            ReadResponse(
                results=[
                    DataValue(value=Variant(3.14, VariantType.DOUBLE)),
                    DataValue(status=StatusCodes.BadAttributeIdInvalid),
                ]
            )
        )

    def test_write_request(self):
        round_trip(
            WriteRequest(
                nodes_to_write=[
                    WriteValue(
                        node_id=NodeId(2, "rSetFillLevel"),
                        value=DataValue(value=Variant(80.0, VariantType.DOUBLE)),
                    )
                ]
            )
        )

    def test_write_response(self):
        round_trip(WriteResponse(results=[StatusCodes.BadNotWritable]))


class TestMethodServices:
    def test_call_request(self):
        round_trip(
            CallRequest(
                methods_to_call=[
                    CallMethodRequest(
                        object_id=NodeId(2, "Server"),
                        method_id=NodeId(2, "AddEndpoint"),
                        input_arguments=[Variant("opc.tcp://x", VariantType.STRING)],
                    )
                ]
            )
        )

    def test_call_response(self):
        round_trip(
            CallResponse(
                results=[
                    CallMethodResult(
                        status_code=StatusCodes.Good,
                        output_arguments=[Variant(1, VariantType.INT32)],
                    )
                ]
            )
        )

    def test_service_fault(self):
        fault = ServiceFault(
            response_header=ResponseHeader(
                service_result=StatusCodes.BadSecurityChecksFailed
            )
        )
        round_trip(fault)


class TestRegistry:
    def test_every_registered_struct_round_trips_by_id(self):
        for cls, numeric in registry.BINARY_ENCODING_IDS.items():
            assert registry.lookup_struct(NodeId(0, numeric)) is cls

    def test_encode_body_nodeid(self):
        node_id = registry.encode_body_nodeid(GetEndpointsRequest)
        assert node_id == NodeId(0, 428)

    def test_unknown_id_rejected(self):
        with pytest.raises(DecodingError):
            registry.lookup_struct(NodeId(0, 999999))

    def test_unknown_class_rejected(self):
        class NotRegistered:
            pass

        with pytest.raises(DecodingError):
            registry.encode_body_nodeid(NotRegistered)

    def test_null_extension_object_decodes_to_none(self):
        assert registry.decode_extension_object(ExtensionObject.null()) is None

    def test_truncated_body_raises_decoding_error(self):
        wrapped = registry.make_extension_object(GetEndpointsRequest())
        broken = ExtensionObject(wrapped.type_id, wrapped.body[:5], 1)
        with pytest.raises(DecodingError):
            registry.decode_extension_object(broken)

    def test_oversized_array_length_rejected(self):
        # A malicious length prefix must not cause a huge allocation.
        data = GetEndpointsResponse(endpoints=[]).to_bytes()
        corrupted = data[:-4] + (2**31 - 1).to_bytes(4, "little")
        with pytest.raises(DecodingError):
            GetEndpointsResponse.from_bytes(corrupted)
