"""Roles, permissions, and user contexts.

OPC UA servers can enforce access control at single-node granularity
(paper §2); the study's Figure 7 measures exactly this: which fraction
of nodes the *anonymous* user may read, write, or execute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Role(str, enum.Enum):
    """Principal classes the simulated servers distinguish."""

    ANONYMOUS = "anonymous"
    OPERATOR = "operator"
    ADMIN = "admin"


@dataclass(frozen=True)
class Permissions:
    """Per-node access rules: which roles may read/write/execute.

    The default is the locked-down shape; deployment templates open
    nodes up (often far too much, which is the paper's point).
    """

    read: frozenset[Role] = frozenset({Role.OPERATOR, Role.ADMIN})
    write: frozenset[Role] = frozenset({Role.ADMIN})
    execute: frozenset[Role] = frozenset({Role.ADMIN})

    @classmethod
    def open_to_all(cls) -> "Permissions":
        everyone = frozenset({Role.ANONYMOUS, Role.OPERATOR, Role.ADMIN})
        return cls(read=everyone, write=everyone, execute=everyone)

    @classmethod
    def read_only_public(cls) -> "Permissions":
        everyone = frozenset({Role.ANONYMOUS, Role.OPERATOR, Role.ADMIN})
        return cls(read=everyone)

    @classmethod
    def make(
        cls,
        read_anonymous: bool = False,
        write_anonymous: bool = False,
        execute_anonymous: bool = False,
    ) -> "Permissions":
        """Shorthand used by the deployment templates."""
        authenticated = {Role.OPERATOR, Role.ADMIN}
        read = set(authenticated)
        write = {Role.ADMIN, Role.OPERATOR}
        execute = {Role.ADMIN, Role.OPERATOR}
        if read_anonymous:
            read.add(Role.ANONYMOUS)
        if write_anonymous:
            write.add(Role.ANONYMOUS)
        if execute_anonymous:
            execute.add(Role.ANONYMOUS)
        return cls(
            read=frozenset(read),
            write=frozenset(write),
            execute=frozenset(execute),
        )

    def allows_read(self, role: Role) -> bool:
        return role in self.read

    def allows_write(self, role: Role) -> bool:
        return role in self.write

    def allows_execute(self, role: Role) -> bool:
        return role in self.execute


@dataclass(frozen=True)
class UserContext:
    """The authenticated principal attached to an activated session."""

    role: Role
    name: str = ""

    @classmethod
    def anonymous(cls) -> "UserContext":
        return cls(Role.ANONYMOUS, "anonymous")

    @property
    def is_anonymous(self) -> bool:
        return self.role == Role.ANONYMOUS
