"""X.509 v3 certificate structure, DER serialization, and parsing.

The parsed representation keeps exactly what the study's analysis
needs: signature hash function, public-key modulus length, validity
window (``NotBefore`` drives §5.5's certificate-age analysis), subject
and issuer names (the manufacturer attribution of Fig. 5 reads the
subject), the ApplicationURI SAN, and the raw DER for thumbprinting.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.asn1 import der, oids
from repro.crypto.cache import KeyedOpCache
from repro.crypto.rsa import RsaPublicKey
from repro.x509.name import DistinguishedName

# DER-keyed parse memo: the scanner sees the same few certificates
# thousands of times (every server presents one per handshake, and
# record assembly re-parses it), and :class:`Certificate` is frozen,
# so sharing one parsed instance per DER is observationally identical.
_PARSED_CERTIFICATES = KeyedOpCache("x509-parse", maxsize=4096)


class CertificateError(Exception):
    """Malformed or unsupported certificate material."""


@dataclass(frozen=True)
class Certificate:
    """A parsed (or freshly built) X.509 v3 certificate."""

    serial_number: int
    signature_hash: str  # "md5" | "sha1" | "sha256"
    issuer: DistinguishedName
    subject: DistinguishedName
    not_before: datetime
    not_after: datetime
    public_key: RsaPublicKey
    application_uri: str | None
    is_ca: bool
    signature: bytes
    tbs_der: bytes
    raw_der: bytes

    @property
    def key_bits(self) -> int:
        return self.public_key.bit_length

    @property
    def self_signed(self) -> bool:
        return self.issuer == self.subject

    def __repr__(self) -> str:  # keep reprs short in test output
        return (
            f"Certificate(subject={self.subject.rfc4514()!r}, "
            f"hash={self.signature_hash}, bits={self.key_bits})"
        )


def _public_key_to_spki(key: RsaPublicKey) -> der.Sequence:
    algorithm = der.Sequence(
        [der.ObjectIdentifier(oids.RSA_ENCRYPTION), der.Null()]
    )
    rsa_key = der.Sequence([key.n, key.e])
    return der.Sequence([algorithm, der.BitString(der.encode_der(rsa_key))])


def _spki_to_public_key(spki: der.Sequence) -> RsaPublicKey:
    algorithm = spki[0]
    if algorithm[0].dotted != oids.RSA_ENCRYPTION:
        raise CertificateError(
            f"unsupported key algorithm: {algorithm[0].dotted}"
        )
    bit_string = spki[1]
    rsa_key = der.decode_der(bit_string.data)
    return RsaPublicKey(n=rsa_key[0], e=rsa_key[1])


def _signature_algorithm(hash_name: str) -> der.Sequence:
    oid = oids.HASH_SIGNATURE_OIDS.get(hash_name)
    if oid is None:
        raise CertificateError(f"no signature OID for hash {hash_name!r}")
    return der.Sequence([der.ObjectIdentifier(oid), der.Null()])


def build_tbs_certificate(
    serial_number: int,
    hash_name: str,
    issuer: DistinguishedName,
    subject: DistinguishedName,
    not_before: datetime,
    not_after: datetime,
    public_key: RsaPublicKey,
    application_uri: str | None,
    is_ca: bool,
) -> bytes:
    """Serialize the TBSCertificate (the part that gets signed)."""
    extensions = []
    if application_uri is not None:
        # GeneralName uniformResourceIdentifier is [6] IA5String,
        # encoded primitively inside the SAN GeneralNames sequence.
        general_names = der.RawTlv(
            der.TAG_SEQUENCE,
            der.encode_der(
                der.ContextTag(6, primitive_data=application_uri.encode("ascii"))
            ),
        )
        extensions.append(
            der.Sequence(
                [
                    der.ObjectIdentifier(oids.SUBJECT_ALT_NAME),
                    der.OctetString(der.encode_der(general_names)),
                ]
            )
        )
    basic = der.Sequence([True]) if is_ca else der.Sequence([])
    extensions.append(
        der.Sequence(
            [
                der.ObjectIdentifier(oids.BASIC_CONSTRAINTS),
                True,  # critical
                der.OctetString(der.encode_der(basic)),
            ]
        )
    )
    tbs = der.Sequence(
        [
            der.ContextTag(0, inner=2),  # version v3
            serial_number,
            _signature_algorithm(hash_name),
            issuer.to_der_value(),
            der.Sequence([der.UtcTime(not_before), der.UtcTime(not_after)]),
            subject.to_der_value(),
            _public_key_to_spki(public_key),
            der.ContextTag(3, inner=der.Sequence(extensions)),
        ]
    )
    return der.encode_der(tbs)


def assemble_certificate(tbs_der: bytes, hash_name: str, signature: bytes) -> bytes:
    """Wrap a signed TBSCertificate into the outer Certificate DER."""
    body = (
        tbs_der
        + der.encode_der(_signature_algorithm(hash_name))
        + der.encode_der(der.BitString(signature))
    )
    return bytes([der.TAG_SEQUENCE]) + _der_length(len(body)) + body


def _der_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def parse_certificate(raw_der: bytes) -> Certificate:
    """Parse a DER certificate into the analysis-facing structure."""
    if type(raw_der) is bytes:
        cached = _PARSED_CERTIFICATES.get(raw_der)
        if cached is not None:
            return cached
        certificate = _parse_certificate(raw_der)
        _PARSED_CERTIFICATES.put(raw_der, certificate)
        return certificate
    return _parse_certificate(raw_der)


def _parse_certificate(raw_der: bytes) -> Certificate:
    try:
        outer, consumed = der.decode_der(raw_der, allow_trailing=True)
    except der.Asn1Error as exc:
        raise CertificateError(f"undecodable certificate: {exc}") from exc
    raw_der = raw_der[:consumed]
    if not isinstance(outer, der.Sequence) or len(outer) != 3:
        raise CertificateError("certificate must be a 3-element SEQUENCE")
    tbs, sig_alg, sig_bits = outer
    if not isinstance(sig_bits, der.BitString):
        raise CertificateError("signature must be a BIT STRING")

    sig_oid = sig_alg[0].dotted
    hash_name = oids.SIGNATURE_HASHES.get(sig_oid)
    if hash_name is None:
        raise CertificateError(f"unsupported signature algorithm: {sig_oid}")

    # Recover the exact TBS bytes for signature verification.
    tbs_der = _extract_first_tlv(raw_der)

    try:
        fields = list(tbs)
        index = 0
        if isinstance(fields[0], der.ContextTag) and fields[0].number == 0:
            if fields[0].inner != 2:
                raise CertificateError(
                    f"unsupported X.509 version: {fields[0].inner}"
                )
            index = 1
        serial = fields[index]
        issuer = DistinguishedName.from_der_value(fields[index + 2])
        validity = fields[index + 3]
        subject = DistinguishedName.from_der_value(fields[index + 4])
        public_key = _spki_to_public_key(fields[index + 5])

        not_before = _time_value(validity[0])
        not_after = _time_value(validity[1])

        application_uri = None
        is_ca = False
        for field_value in fields[index + 6 :]:
            if isinstance(field_value, der.ContextTag) and field_value.number == 3:
                application_uri, is_ca = _parse_extensions(field_value.inner)
    except (ValueError, IndexError, TypeError, AttributeError) as exc:
        if isinstance(exc, CertificateError):
            raise
        raise CertificateError(f"malformed TBSCertificate: {exc}") from exc

    return Certificate(
        serial_number=serial,
        signature_hash=hash_name,
        issuer=issuer,
        subject=subject,
        not_before=not_before,
        not_after=not_after,
        public_key=public_key,
        application_uri=application_uri,
        is_ca=is_ca,
        signature=sig_bits.data,
        tbs_der=tbs_der,
        raw_der=raw_der,
    )


def _time_value(value) -> datetime:
    if isinstance(value, der.UtcTime):
        return value.moment
    if isinstance(value, der.GeneralizedTime):
        return value.moment
    raise CertificateError("unsupported validity time encoding")


def _parse_extensions(extensions) -> tuple[str | None, bool]:
    application_uri = None
    is_ca = False
    for ext in extensions:
        ext_oid = ext[0].dotted
        payload = ext[-1]
        if not isinstance(payload, der.OctetString):
            raise CertificateError("extension value must be an OCTET STRING")
        if ext_oid == oids.SUBJECT_ALT_NAME:
            names = der.decode_der(payload.data)
            for name in _iter_general_names(names):
                if isinstance(name, der.ContextTag) and name.number == 6:
                    application_uri = name.primitive_data.decode("ascii")
        elif ext_oid == oids.BASIC_CONSTRAINTS:
            basic = der.decode_der(payload.data)
            if len(basic) >= 1 and basic[0] is True:
                is_ca = True
    return application_uri, is_ca


def _iter_general_names(names):
    if isinstance(names, der.Sequence):
        return iter(names)
    if isinstance(names, der.RawTlv) and names.tag == der.TAG_SEQUENCE:
        value = der.decode_der(
            bytes([der.TAG_SEQUENCE]) + _der_length(len(names.payload)) + names.payload
        )
        return iter(value)
    raise CertificateError("malformed GeneralNames")


def _extract_first_tlv(raw_der: bytes) -> bytes:
    """Return the DER bytes of the TBSCertificate inside ``raw_der``."""
    # Skip the outer SEQUENCE header.
    pos = 1
    first = raw_der[pos]
    pos += 1
    if first & 0x80:
        pos += first & 0x7F
    # pos now points at the TBSCertificate TLV.
    start = pos
    tag = raw_der[pos]
    pos += 1
    length_byte = raw_der[pos]
    pos += 1
    if length_byte & 0x80:
        count = length_byte & 0x7F
        length = int.from_bytes(raw_der[pos : pos + count], "big")
        pos += count
    else:
        length = length_byte
    if tag != der.TAG_SEQUENCE:
        raise CertificateError("TBSCertificate must be a SEQUENCE")
    return raw_der[start : pos + length]
