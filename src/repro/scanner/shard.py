"""Address-space sharding: partition, scan, checkpoint, merge.

The paper's campaign is internet-wide; one process owning a whole
study means a crash at sweep 47 of 48 rescans everything.  This
module cuts a study into N independent **shards** the way zmap cuts
the IPv4 permutation across scan machines: candidate *i* of the
per-sweep permutation belongs to shard ``i % N``.  Because the
permutation is a pure function of the sweep RNG (see
:func:`repro.netsim.tcpscan.candidate_stream`) and every grab derives
its bytes from ``(seed, date, address, port)`` alone, each shard can
run in its own process — on its own rebuilt simulated Internet, on
any executor backend — and the merged snapshots are byte-identical to
an unsharded run, for every N.

Shards checkpoint into the :class:`~repro.dataset.store.StudyStore`
(``shards/<study-key>/<index>-of-<count>/``, digest-validated like
any entry), so a killed campaign resumes from the last completed
shard: ``repro study --shards N --resume``.  The merge reassembles
canonical record order, re-applies the first-wave-beats-referenced
classification globally, and publishes the result under the study's
ordinary content key — analyses load it with no idea it was sharded —
plus a ``merge.json`` manifest recording every shard digest that went
in (the integrity-lock pattern: provenance you can re-hash).

    >>> ShardSpec(0, 2).select(["a", "b", "c", "d", "e"])
    ['a', 'c', 'e']
    >>> ShardSpec(1, 2).select(["a", "b", "c", "d", "e"])
    ['b', 'd']
    >>> ShardSpec(0, 1).select(["a", "b"])
    ['a', 'b']
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import StudyConfig
from repro.core.golden import (
    canonical_json,
    combined_digest,
    sweep_digests,
)
from repro.core.study import Study, StudyResult
from repro.dataset.store import (
    SCHEMA_VERSION,
    StoreIntegrityError,
    StudyStore,
)
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.tcpscan import candidate_stream
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import build_executor
from repro.scanner.records import MeasurementSnapshot


class ShardMergeError(RuntimeError):
    """Shard outputs cannot be reassembled into one coherent study."""


@dataclass(frozen=True)
class ShardSpec:
    """One slice of an index-mod partition: positions ``i % count == index``.

    zmap's sharding, exactly: membership depends only on a candidate's
    *position* in the shared permutation, so the union over all shards
    is the whole stream for every ``count``, and no candidate lands in
    two shards.
    """

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index {self.index} outside [0, {self.count})"
            )

    @property
    def label(self) -> str:
        return f"{self.index}/{self.count}"

    def select(self, items: Sequence) -> list:
        """This shard's slice of ``items``, order preserved."""
        return list(items[self.index :: self.count])


class ShardedScanCampaign(ScanCampaign):
    """A :class:`~repro.scanner.campaign.ScanCampaign` over one shard.

    Identical in every respect — RNG derivation, per-task network
    views, executor fan-out, follow-references — except that stage 0
    probes only this shard's slice of the candidate permutation.
    Follow-reference grabs are *not* sharded: a referenced endpoint is
    grabbed by whichever shard scanned the referring server, and the
    merge deduplicates (byte-equal by construction) and re-applies the
    first-wave-beats-referenced rule across shards.
    """

    def __init__(self, *args, shard: ShardSpec, **kwargs):
        super().__init__(*args, **kwargs)
        self._shard = shard

    def _sweep_batches(self, sweep_rng, extra_candidates, batch_size):
        stream = candidate_stream(
            self._network,
            self._port,
            sweep_rng,
            extra_candidates=extra_candidates,
        )
        mine = self._shard.select(stream)
        for start in range(0, len(mine), batch_size):
            yield mine[start : start + batch_size]


# --- merging -----------------------------------------------------------------


def merge_sweep(parts: Sequence[MeasurementSnapshot]) -> MeasurementSnapshot:
    """Reassemble one sweep from its per-shard snapshots.

    Counters sum exactly (each unique candidate was probed by exactly
    one shard).  First-wave records concatenate and re-sort into the
    canonical ``(address, port)`` order — a duplicate first-wave key
    means the shards did not partition and is an error.  Referenced
    records may legitimately appear in several shards (two shards'
    servers can advertise the same endpoint) — they are byte-identical
    by RNG construction, which the merge verifies before keeping one —
    and a referenced record whose endpoint any shard scanned as
    first-wave is dropped, restoring the campaign's
    first-wave-beats-referenced classification globally.
    """
    if not parts:
        raise ShardMergeError("nothing to merge")
    dates = {part.date for part in parts}
    if len(dates) != 1:
        raise ShardMergeError(f"shards disagree on sweep date: {sorted(dates)}")
    primary: dict[tuple[int, int], object] = {}
    referenced: dict[tuple[int, int], object] = {}
    for part in parts:
        for record in part.records:
            key = (record.ip, record.port)
            if record.via_reference:
                prior = referenced.get(key)
                if prior is None:
                    referenced[key] = record
                elif canonical_json(prior.to_json_dict()) != canonical_json(
                    record.to_json_dict()
                ):
                    raise ShardMergeError(
                        f"shards produced different referenced records "
                        f"for {key}"
                    )
            else:
                if key in primary:
                    raise ShardMergeError(
                        f"first-wave record {key} appears in two shards "
                        "— the inputs do not partition one candidate "
                        "stream"
                    )
                primary[key] = record
    merged = MeasurementSnapshot(
        date=next(iter(dates)),
        probed=sum(part.probed for part in parts),
        port_open=sum(part.port_open for part in parts),
        excluded=sum(part.excluded for part in parts),
    )
    merged.records.extend(primary[key] for key in sorted(primary))
    merged.records.extend(
        referenced[key] for key in sorted(referenced) if key not in primary
    )
    return merged


def merge_snapshots(
    shard_snapshots: Sequence[Sequence[MeasurementSnapshot]],
) -> list[MeasurementSnapshot]:
    """Merge whole shard runs (one snapshot list per shard), sweep-wise.

    Input order does not matter: :func:`merge_sweep` re-sorts records
    canonically and sums counters, so any shard completion or
    presentation order yields identical bytes.
    """
    lengths = {len(snapshots) for snapshots in shard_snapshots}
    if len(lengths) != 1:
        raise ShardMergeError(
            f"shards ran different sweep counts: {sorted(lengths)}"
        )
    return [
        merge_sweep([snapshots[i] for snapshots in shard_snapshots])
        for i in range(lengths.pop())
    ]


def build_merge_manifest(
    key: str,
    parts: Sequence[Sequence[MeasurementSnapshot]],
    merged: Sequence[MeasurementSnapshot],
) -> dict:
    """The provenance record a merged entry publishes (``merge.json``).

    Names every shard's per-sweep and combined digests plus the merged
    digest, and seals itself with a digest over its own canonical JSON
    — any later edit to the manifest is detectable, and any shard
    checkpoint can be re-hashed against it.
    """
    manifest = {
        "schema": SCHEMA_VERSION,
        "key": key,
        "shard_count": len(parts),
        "merged_digest": combined_digest(sweep_digests(list(merged))),
        "shards": [
            {
                "index": index,
                "count": len(parts),
                "records": sum(len(s.records) for s in snapshots),
                "digest": combined_digest(sweep_digests(list(snapshots))),
                "per_sweep": sweep_digests(list(snapshots)),
            }
            for index, snapshots in enumerate(parts)
        ],
    }
    manifest["manifest_digest"] = hashlib.sha256(
        canonical_json(manifest).encode("utf-8")
    ).hexdigest()
    return manifest


# --- running -----------------------------------------------------------------


def run_study_shard(
    config: StudyConfig,
    shard: ShardSpec,
    spec: PopulationSpec | None = None,
    store: StudyStore | None = None,
    resume: bool = False,
) -> list[MeasurementSnapshot]:
    """Scan (or resume) one shard of a study; returns its snapshots.

    With ``resume`` and a store, a checkpoint that validates is
    returned without rebuilding a single host; an absent or corrupt
    checkpoint is (re)scanned.  Each shard rebuilds the simulated
    Internet itself — shard processes share nothing but the seed.
    """
    spec = spec or build_default_spec()
    if store is not None and resume:
        try:
            stored = store.load_shard(config, spec, shard.index, shard.count)
        except StoreIntegrityError:
            # A checkpoint that fails validation is treated exactly
            # like an absent one: rescan.  Resume must never be
            # stopped by a half-written leftover from the crash it is
            # recovering from.
            stored = None
        if stored is not None:
            return stored
    study = Study(config, spec=spec)
    _, timeline = study.build_environment(spec)
    identity = study.scanner_identity()
    executor = build_executor(config.executor, config.workers)
    snapshots = study.scan_sweeps(timeline, identity, executor, shard=shard)
    if store is not None:
        store.save_shard(config, spec, shard.index, shard.count, snapshots)
    return snapshots


def merge_study_shards(
    store: StudyStore,
    config: StudyConfig,
    shard_count: int,
    spec: PopulationSpec | None = None,
) -> str:
    """Merge all N shard checkpoints into the canonical store entry.

    Every shard must hold a validating checkpoint.  The merged
    snapshots are published under the study's ordinary content key —
    indistinguishable from an unsharded save, so ``Study.run(store)``
    and ``repro analyze`` load them transparently — together with the
    merge manifest.  Returns the entry key.
    """
    spec = spec or build_default_spec()
    parts: list[list[MeasurementSnapshot]] = []
    missing: list[int] = []
    for index in range(shard_count):
        snapshots = store.load_shard(config, spec, index, shard_count)
        if snapshots is None:
            missing.append(index)
        else:
            parts.append(snapshots)
    if missing:
        raise ShardMergeError(
            f"cannot merge: shards {missing} of {shard_count} have no "
            f"checkpoint under {store.root}"
        )
    merged = merge_snapshots(parts)
    key = store.save(config, spec, merged)
    store.write_merge_manifest(key, build_merge_manifest(key, parts, merged))
    return key


def run_sharded_study(
    config: StudyConfig,
    shard_count: int,
    spec: PopulationSpec | None = None,
    store: StudyStore | None = None,
    resume: bool = False,
) -> StudyResult:
    """Run every shard (skipping valid checkpoints under ``resume``),
    merge, and — with a store — publish the canonical entry + manifest.

    The driver loop a single machine uses; a fleet runs
    :func:`run_study_shard` per machine instead and finishes with
    :func:`merge_study_shards`.
    """
    spec = spec or build_default_spec()
    if store is not None and resume:
        stored = store.load(config, spec)
        if stored is not None:
            return StudyResult(config=config, spec=spec, snapshots=stored)
    parts = [
        run_study_shard(
            config,
            ShardSpec(index, shard_count),
            spec=spec,
            store=store,
            resume=resume,
        )
        for index in range(shard_count)
    ]
    merged = merge_snapshots(parts)
    if store is not None:
        key = store.save(config, spec, merged)
        store.write_merge_manifest(
            key, build_merge_manifest(key, parts, merged)
        )
    return StudyResult(config=config, spec=spec, snapshots=merged)
