"""Shared fixtures.

Key material is expensive to generate in pure Python, so a handful of
RSA keys at the sizes the tests need are created once per session, and
the population's 2048-bit keys always come from the committed
``.keycache/seed20200830/`` — pinned below so CI (whose working
directory or environment may differ) never spends minutes regenerating
them.
"""

from __future__ import annotations

import os
from pathlib import Path

# Must happen before any repro import: the key factory reads
# REPRO_KEYCACHE at module import time.
os.environ.setdefault(
    "REPRO_KEYCACHE", str(Path(__file__).resolve().parents[1] / ".keycache")
)

import pytest  # noqa: E402

from repro.crypto.rsa import generate_rsa_key  # noqa: E402
from repro.util.rng import DeterministicRng  # noqa: E402


@pytest.fixture(scope="session")
def serial_tiny_result():
    """One serial tiny-spec study per session.

    Shared by the golden-digest suite (committed-digest subject and
    parallel-backend reference), the study-store round-trip tests, and
    the analysis-pipeline equivalence tests, so the whole fast tier
    pays for exactly one tiny scan.
    """
    from repro.core.golden import run_tiny_study

    return run_tiny_study("serial", 1)


@pytest.fixture(scope="session")
def rng():
    return DeterministicRng(20200830, "tests")


@pytest.fixture(scope="session")
def rsa_512(rng):
    return generate_rsa_key(512, rng.substream("rsa-512"))


@pytest.fixture(scope="session")
def rsa_768(rng):
    return generate_rsa_key(768, rng.substream("rsa-768"))


@pytest.fixture(scope="session")
def rsa_1024(rng):
    return generate_rsa_key(1024, rng.substream("rsa-1024"))


@pytest.fixture(scope="session")
def rsa_2048(rng):
    return generate_rsa_key(2048, rng.substream("rsa-2048"))
