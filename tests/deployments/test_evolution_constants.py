"""Pure consistency checks on the study timeline constants."""

from repro.deployments.evolution import (
    DISCOVERY_COUNTS,
    RENEWAL_DOWNGRADES,
    RENEWAL_TOTAL,
    RENEWAL_UPGRADES,
    RENEWALS_WITH_SOFTWARE_UPDATE,
    REUSE_COUNTS,
    SERVER_COUNTS,
    SWEEP_DATES,
)
from repro.util.simtime import parse_utc


class TestSweepDates:
    def test_eight_sweeps(self):
        assert len(SWEEP_DATES) == 8

    def test_paper_endpoints(self):
        assert SWEEP_DATES[0] == "2020-02-09"
        assert SWEEP_DATES[3] == "2020-05-04"  # follow-references start
        assert SWEEP_DATES[-1] == "2020-08-30"

    def test_strictly_increasing(self):
        moments = [parse_utc(d) for d in SWEEP_DATES]
        assert moments == sorted(moments)
        assert len(set(moments)) == len(moments)


class TestCounts:
    def test_all_series_cover_every_sweep(self):
        assert len(SERVER_COUNTS) == len(SWEEP_DATES)
        assert len(REUSE_COUNTS) == len(SWEEP_DATES)
        assert len(DISCOVERY_COUNTS) == len(SWEEP_DATES)

    def test_reuse_growth_matches_paper(self):
        assert REUSE_COUNTS[0] == 263  # paper: 263 devices on 2020-02-09
        assert REUSE_COUNTS[-1] == 400  # 385 + 9 + 6 at the end
        assert list(REUSE_COUNTS) == sorted(REUSE_COUNTS)

    def test_server_counts_consistent_with_reuse(self):
        # 714 stable non-reuse hosts plus the reuse roll-out.
        for servers, reuse in zip(SERVER_COUNTS, REUSE_COUNTS):
            assert servers == 714 + reuse
        assert SERVER_COUNTS[-1] == 1114

    def test_totals_within_paper_range(self):
        # Measured totals subtract the 20 non-default-port hosts before
        # follow-references starts (sweeps 0-2).
        for sweep, (servers, discovery) in enumerate(
            zip(SERVER_COUNTS, DISCOVERY_COUNTS)
        ):
            found = servers - (20 if sweep < 3 else 0)
            total = found + discovery
            assert 1761 <= total <= 2069, (sweep, total)

    def test_final_discovery_share_42_percent(self):
        total = SERVER_COUNTS[-1] + DISCOVERY_COUNTS[-1]
        assert round(DISCOVERY_COUNTS[-1] / total, 2) == 0.42


class TestRenewalPlanConstants:
    def test_renewal_split(self):
        assert RENEWAL_TOTAL == 84
        assert RENEWAL_UPGRADES == 7
        assert RENEWAL_DOWNGRADES == 1
        assert RENEWALS_WITH_SOFTWARE_UPDATE == 9
        assert (
            RENEWAL_UPGRADES + RENEWAL_DOWNGRADES + RENEWALS_WITH_SOFTWARE_UPDATE
            <= RENEWAL_TOTAL
        )
