"""Regenerates §5.5 (longitudinal statistics across the 8 sweeps)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_sec55_longitudinal(benchmark, study_result):
    report = benchmark(run_experiment, "sec55", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
