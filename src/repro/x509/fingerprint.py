"""Certificate thumbprints.

OPC UA identifies certificates by the SHA-1 digest of their DER bytes
(the ``receiverCertificateThumbprint`` of the asymmetric security
header); the reuse analysis of paper §5.3 groups hosts by the same
digest.
"""

from __future__ import annotations

import hashlib

from repro.x509.certificate import Certificate


def sha1_thumbprint(certificate: Certificate | bytes) -> bytes:
    raw = certificate if isinstance(certificate, bytes) else certificate.raw_der
    return hashlib.sha1(raw).digest()


def thumbprint_hex(certificate: Certificate | bytes) -> str:
    return sha1_thumbprint(certificate).hex()
