"""Pluggable scan-execution backends for the campaign engine.

The paper's infrastructure ran zmap and zgrab2 as a pipeline: while
the port sweep was still emitting open addresses, protocol grabs were
already running, and endpoints referenced by already-grabbed servers
were fed back into the grab queue.  This module reproduces that shape
with four interchangeable backends:

* :class:`SerialScanExecutor` — one task at a time (the seed
  behaviour, and the reference for determinism checks);
* :class:`ThreadScanExecutor` — a thread pool (overlaps tasks; bounded
  by the GIL for pure-Python work but exercises the identical
  scheduling path);
* :class:`ProcessScanExecutor` — a fork-based process pool (true
  multi-core throughput on POSIX; workers inherit the simulated
  network and the in-memory RSA keycache through fork, so nothing is
  re-generated per worker);
* :class:`AsyncScanExecutor` — an asyncio event loop (one OS thread,
  bounded coroutine concurrency; the right shape for latency-bound
  non-simulated targets where a thread or process per in-flight
  connection wastes memory).

Tasks come in pipeline *stages*: the SYN sweep itself runs as
stage-0 :class:`ProbeBatchTask`s, the protocol grabs they discover are
stage 1, and follow-reference grabs are stage 2.  The coordinator
defers stage-2 task registration until every stage-0 batch has
completed and expanded, so whether an address is classified as
first-wave or via-reference never depends on completion timing — the
structural invariant that keeps all backends byte-identical now that
probing and grabbing overlap end-to-end.

Determinism is structural, not accidental: results are keyed by
``(address, port)`` and re-ordered canonically by the campaign, every
grab derives its RNG from a pure ``(seed, date, address, port)``
substream, and each grab runs against a per-task network view with its
own clock, so all backends produce byte-identical
:class:`~repro.scanner.records.MeasurementSnapshot` sequences.
"""

from __future__ import annotations

import os
import queue
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Tuple

#: Default bound on the in-flight result stream.  Workers block once
#: this many grabs are waiting for the coordinator, which keeps memory
#: flat on very large sweeps (backpressure, like a fixed kernel socket
#: buffer between zmap and zgrab2).
DEFAULT_QUEUE_SIZE = 64

EXECUTOR_NAMES = ("serial", "thread", "process", "async")

#: Default in-flight coroutine bound for the async backend.  CPU count
#: is the wrong yardstick for an event loop — concurrency is limited by
#: how many connections may be awaiting a response, not by cores.
DEFAULT_ASYNC_CONCURRENCY = 32

#: Grab tasks per IPC round-trip on the process backend.  Submitting
#: and collecting one task at a time costs a pickle, a queue wake-up,
#: and a done-callback per task; chunking amortizes all three.  (Probe
#: batches never cross the IPC boundary at all — see
#: :class:`_ChunkedSubmit`.)
DEFAULT_CHUNK_SIZE = 8


@dataclass(frozen=True)
class ProbeBatchTask:
    """One SYN-sweep batch: probe ``addresses`` on ``port``.

    Stage 0 of the pipeline.  The campaign probes each batch on its own
    :class:`~repro.netsim.net.NetworkView` (per-(sweep, batch) latency
    substream), so batches are independent and safe to fan out.
    """

    index: int
    port: int
    addresses: tuple[int, ...]

    stage = 0

    @property
    def key(self) -> tuple[str, int, int]:
        return ("probe", self.port, self.index)


@dataclass(frozen=True)
class GrabTask:
    """One host/port the engine owes a grab."""

    address: int
    port: int
    via_reference: bool = False

    @property
    def stage(self) -> int:
        return 2 if self.via_reference else 1

    @property
    def key(self) -> tuple[int, int]:
        return (self.address, self.port)


def _stage(task) -> int:
    return getattr(task, "stage", 1)


GrabFn = Callable[[GrabTask], object]
ExpandFn = Callable[[GrabTask, object], Iterable[GrabTask]]
ResultList = List[Tuple[GrabTask, object]]


class ScanExecutorError(RuntimeError):
    """A worker failed; carries the original task for diagnostics."""

    def __init__(self, task, cause: BaseException):
        # Tasks are not only grabs anymore (probe batches, analysis
        # tasks) — identify them by their pipeline key.
        super().__init__(f"task {task.key!r} failed: {cause!r}")
        self.task = task
        self.cause = cause


class ScanExecutor(ABC):
    """Fan ``grab`` out over a task stream, feeding back discoveries.

    ``run`` owns deduplication: every task key enters the pipeline at
    most once, whether it arrived with the initial stream or from
    ``expand``.  Completion order is backend-specific; callers
    re-order results canonically.
    """

    name: str = "abstract"
    workers: int = 1

    @abstractmethod
    def run(
        self, tasks: Iterable[GrabTask], grab: GrabFn, expand: ExpandFn
    ) -> ResultList:
        """Grab every task (plus everything ``expand`` discovers)."""


class SerialScanExecutor(ScanExecutor):
    """FIFO, one task at a time — the determinism reference.

    FIFO order alone satisfies the stage invariant: every stage-0
    probe batch precedes (and therefore expands before) the grabs it
    discovers, so all first-wave keys are registered before the first
    grab — let alone its follow-reference expansion — ever runs.
    """

    name = "serial"

    def run(self, tasks, grab, expand) -> ResultList:
        results: ResultList = []
        seen: set = set()
        pending: list = []
        for task in tasks:
            if task.key not in seen:
                seen.add(task.key)
                pending.append(task)
        cursor = 0
        while cursor < len(pending):
            task = pending[cursor]
            cursor += 1
            record = grab(task)
            results.append((task, record))
            for new_task in expand(task, record):
                if new_task.key not in seen:
                    seen.add(new_task.key)
                    pending.append(new_task)
        return results


class _PooledScanExecutor(ScanExecutor):
    """Shared coordinator for the thread, process, and async backends.

    The coordinator submits the initial task stream (so grabbing
    starts while the port sweep is still probing), then drains a
    bounded result queue, expanding each finished task into newly
    discovered ones until the pipeline runs dry.  It also enforces the
    stage invariant: follow-reference (stage-2) tasks are deferred
    while stage-0 probe batches are in flight, so key registration
    order — and with it first-wave classification — matches the serial
    reference regardless of completion timing.
    """

    def __init__(self, workers: int, queue_size: int = DEFAULT_QUEUE_SIZE):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.queue_size = queue_size

    def run(self, tasks, grab, expand) -> ResultList:
        results: ResultList = []
        seen: set = set()
        results_q: queue.Queue = queue.Queue(maxsize=self.queue_size)
        state = {"pending": 0, "sweeping": 0}
        # Stage-2 (follow-reference) tasks discovered while stage-0
        # probe batches are still in flight.  Registering them
        # immediately would let a fast via-reference discovery claim an
        # (address, port) key that a still-probing batch is about to
        # classify as first-wave — a race the serial backend can never
        # lose.  Deferring registration until the sweep is fully
        # expanded makes the classification timing-independent.
        deferred: list = []

        with self._pool(grab, results_q) as submit:
            # Backends that buffer submissions into chunks (the process
            # pool) expose a flush; it must run before every blocking
            # get, or the coordinator would wait on results of tasks
            # still sitting in the submit buffer.  The same backend may
            # complete some tasks inline in the coordinator (stage-0
            # probes); those triples arrive in ``inline_results``, not
            # on the queue, and are consumed before any blocking get.
            flush_submits = getattr(submit, "flush", None)
            inline_results = getattr(submit, "inline_results", None)

            def enqueue(task) -> None:
                if task.key in seen:
                    return
                if _stage(task) >= 2 and state["sweeping"]:
                    deferred.append(task)
                    return
                seen.add(task.key)
                state["pending"] += 1
                if _stage(task) == 0:
                    state["sweeping"] += 1
                submit(task)

            try:
                for task in tasks:
                    enqueue(task)
                while state["pending"]:
                    if flush_submits is not None:
                        flush_submits()
                    if inline_results:
                        task, record, error = inline_results.pop(0)
                    else:
                        task, record, error = results_q.get()
                    state["pending"] -= 1
                    if error is not None:
                        raise ScanExecutorError(task, error)
                    if _stage(task) == 0:
                        state["sweeping"] -= 1
                    results.append((task, record))
                    for new_task in expand(task, record):
                        enqueue(new_task)
                    if deferred and not state["sweeping"]:
                        # The final probe batch just expanded: every
                        # first-wave key is now registered, so the held
                        # follow-reference tasks can safely dedup.
                        flush, deferred = deferred, []
                        for held_task in flush:
                            enqueue(held_task)
            except BaseException as exc:
                # Drain every outstanding result so pool shutdown (run
                # by the context exit) cannot deadlock on workers
                # blocked at the bounded queue.  Safe to block: every
                # backend guarantees one queue put per submitted task
                # (thread workers and async coroutines always put;
                # process chunk relays put one triple per task even on
                # cancellation or a broken pool) — provided buffered
                # submissions are flushed first, since a task still in
                # the submit buffer has no worker owing a put.
                abort = getattr(submit, "abort", None)
                if isinstance(exc, KeyboardInterrupt) and abort is not None:
                    # Ctrl-C means *stop now*, not "finish the sweep,
                    # then stop".  Each backend's abort cancels what
                    # has not started and returns how many tasks were
                    # thereby relieved of their queue put (the process
                    # backend also terminates its forked workers —
                    # their in-flight chunks resolve as broken-pool
                    # error triples), so the drain below still closes
                    # the books before the pool shuts down and the
                    # interrupt is re-raised.
                    state["pending"] -= abort()
                elif flush_submits is not None:
                    flush_submits()
                if inline_results:
                    # Inline triples have no worker owing a queue put.
                    state["pending"] -= len(inline_results)
                    inline_results.clear()
                while state["pending"]:
                    results_q.get()
                    state["pending"] -= 1
                raise
        return results

    def _pool(self, grab, results_q):
        raise NotImplementedError


class ThreadScanExecutor(_PooledScanExecutor):
    """Thread-pool backend with a bounded result stream."""

    name = "thread"

    def _pool(self, grab, results_q):
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="scan-grab"
        )

        def worker(task: GrabTask) -> None:
            try:
                record, error = grab(task), None
            except BaseException as exc:  # surfaced by the coordinator
                record, error = None, exc
            results_q.put((task, record, error))

        class _Ctx:
            def __enter__(self_inner):
                futures: list = []

                def submit(task) -> None:
                    futures.append(executor.submit(worker, task))

                def abort() -> int:
                    # A queued-but-unstarted future cancels cleanly —
                    # its worker never runs, so it owes no queue put;
                    # the returned count squares the coordinator's
                    # books.  Running grabs finish and put as usual.
                    cancelled = sum(
                        1 for future in futures if future.cancel()
                    )
                    futures.clear()
                    return cancelled

                submit.abort = abort
                return submit

            def __exit__(self_inner, *exc_info):
                executor.shutdown(wait=True)
                return False

        return _Ctx()


# The grab closure is installed module-globally right before the pool
# forks, so worker processes inherit it without pickling (closures over
# the simulated network are not picklable; tasks and records are).
# _PROCESS_LOCK serializes process-pool runs within one parent process:
# the global is per-process, so overlapping runs would otherwise fork
# workers against the wrong sweep's closure.
_PROCESS_GRAB: GrabFn | None = None
_PROCESS_LOCK = threading.Lock()


def _process_worker(task: GrabTask):
    try:
        return task, _PROCESS_GRAB(task), None
    except BaseException as exc:
        return task, None, exc


def _process_chunk_worker(chunk: tuple):
    """Run one chunk of tasks in a worker, isolating per-task errors.

    A failing task yields its error triple without poisoning the rest
    of the chunk, so error semantics match the one-task-per-future
    protocol exactly.
    """
    return [_process_worker(task) for task in chunk]


class _ChunkedSubmit:
    """Buffered task submission: one pool round-trip per chunk.

    Callable like the plain per-task submit; full chunks ship
    immediately and :meth:`flush` ships the remainder.  The relay
    unpacks each chunk back into one queue put per task, preserving
    the coordinator's accounting invariant.

    Stage-0 probe batches never enter the pool at all: a batch costs
    about a millisecond of pure-Python work, far less than its pickle
    round-trip, so shipping probes to a worker makes the process
    backend the *slowest* prober.  zmap itself ran its SYN loop
    single-threaded for the same reason — only the protocol grabs are
    worth a process.  Probes therefore run inline in the coordinator
    and land in :attr:`inline_results`, which the coordinator drains
    preferentially (an inline triple never touches the bounded results
    queue: the coordinator putting into a queue only it drains would
    deadlock once full).
    """

    def __init__(self, pool, results_q, chunk_size: int):
        self._pool = pool
        self._results_q = results_q
        self._chunk_size = chunk_size
        self._buffer: list = []
        #: Completed (task, record, error) triples from inline stage-0
        #: execution, drained by the coordinator before it blocks.
        self.inline_results: list = []

    def abort(self) -> int:
        """Interrupt support: drop buffered tasks, kill the workers.

        Buffered tasks never reached the pool, so they owe no queue
        put — the returned count squares the coordinator's books.
        In-flight chunks are *not* cancelled (their relays would put
        from the aborting thread, which can deadlock on a full results
        queue); instead the forked workers are terminated, which
        breaks the pool and fails every outstanding future with
        ``BrokenProcessPool`` from the pool's management thread — each
        relay still puts one triple per task, off the coordinator
        thread, so the drain that follows always completes.
        """
        dropped = len(self._buffer)
        self._buffer.clear()
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
        return dropped

    def __call__(self, task) -> None:
        if _stage(task) == 0:
            self.inline_results.append(_process_worker(task))
            return
        self._buffer.append(task)
        if len(self._buffer) >= self._chunk_size:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        chunk = tuple(self._buffer)
        self._buffer.clear()
        future = self._pool.submit(_process_chunk_worker, chunk)
        results_q = self._results_q

        def relay(fut, chunk=chunk):
            try:
                for triple in fut.result():
                    results_q.put(triple)
            except BaseException as exc:
                # Covers BrokenProcessPool: a worker dying abnormally
                # fails the sweep instead of hanging the coordinator.
                # Every task of the chunk still gets its queue put.
                for task in chunk:
                    results_q.put((task, None, exc))

        future.add_done_callback(relay)


class ProcessScanExecutor(_PooledScanExecutor):
    """Fork-based process pool: real parallelism for CPU-bound grabs.

    Workers inherit the whole simulated Internet (hosts, servers, RSA
    keys) via fork, grab independently, and ship ``HostRecord``s back
    through pickling.  Server-side state mutated inside a worker stays
    in that worker — safe because per-sweep server RNG re-seeding makes
    each sweep's responses independent of earlier connection history.

    Grab tasks cross the IPC boundary in chunks of ``chunk_size`` (one
    pickled submission and one pickled result list per chunk), which
    amortizes the per-round-trip overhead.  Stage-0 probe batches run
    inline in the coordinator instead — a batch is cheaper than its
    pickle, so forking the SYN sweep can only slow it down (zmap's SYN
    loop was single-threaded for the same reason).
    """

    name = "process"

    def __init__(
        self,
        workers: int,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        super().__init__(workers, queue_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size

    def _pool(self, grab, results_q):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "process executor requires the 'fork' start method; "
                "use the 'thread' or 'serial' backend on this platform"
            )
        parent = self

        class _Ctx:
            def __enter__(self_inner):
                global _PROCESS_GRAB
                _PROCESS_LOCK.acquire()
                _PROCESS_GRAB = grab  # inherited by the fork below
                self_inner.pool = ProcessPoolExecutor(
                    max_workers=parent.workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
                return _ChunkedSubmit(
                    self_inner.pool, results_q, parent.chunk_size
                )

            def __exit__(self_inner, *exc_info):
                global _PROCESS_GRAB
                try:
                    self_inner.pool.shutdown(wait=True, cancel_futures=True)
                finally:
                    _PROCESS_GRAB = None
                    _PROCESS_LOCK.release()
                return False

        return _Ctx()


class AsyncScanExecutor(_PooledScanExecutor):
    """Asyncio backend: one event-loop thread, bounded coroutine fan-out.

    Every submitted task becomes a coroutine gated by a semaphore of
    ``workers`` concurrent slots.  ``grab`` may be a plain callable
    (the simulated network is synchronous, so CPU work serializes on
    the loop — correctness-identical, no parallel speedup) or return
    an awaitable, which the loop awaits — the shape a real
    latency-bound scan wants: thousands of in-flight connections on
    one OS thread instead of a thread or fork per connection.
    """

    name = "async"

    def _pool(self, grab, results_q):
        import asyncio
        import concurrent.futures as futures_mod
        import inspect

        parent = self

        class _Ctx:
            def __enter__(self_inner):
                self_inner.loop = asyncio.new_event_loop()
                self_inner.thread = threading.Thread(
                    target=self_inner.loop.run_forever,
                    name="scan-async-loop",
                    daemon=True,
                )
                self_inner.thread.start()
                semaphore = asyncio.Semaphore(parent.workers)
                futures: list = []
                guard = threading.Lock()
                aborted = [False]

                async def worker(task, put_once) -> None:
                    if aborted[0]:
                        # Interrupted: scheduled-but-unstarted
                        # coroutines run their first step regardless
                        # of future cancellation, so the body itself
                        # must refuse to grab — settling its queue put
                        # with a cancellation triple instead.
                        put_once((task, None, futures_mod.CancelledError()))
                        return
                    try:
                        async with semaphore:
                            try:
                                record = grab(task)
                                if inspect.isawaitable(record):
                                    record = await record
                                payload = (task, record, None)
                            except BaseException as exc:
                                payload = (task, None, exc)
                    except BaseException as exc:
                        # Cancelled while waiting at the semaphore:
                        # the grab never ran, but the task still owes
                        # its queue put before the cancellation
                        # propagates.
                        put_once((task, None, exc))
                        raise
                    # queue.Queue is thread-safe, so putting from the
                    # loop thread is fine.  A full queue blocks the
                    # loop — acceptable backpressure: the coordinator
                    # is always draining, so the put always completes.
                    put_once(payload)

                def submit(task) -> None:
                    fired = [False]

                    def put_once(payload) -> None:
                        # One queue put per task, exactly — the done
                        # callback below and the worker body can both
                        # reach here when a cancellation lands mid-grab.
                        with guard:
                            if fired[0]:
                                return
                            fired[0] = True
                        results_q.put(payload)

                    future = asyncio.run_coroutine_threadsafe(
                        worker(task, put_once), self_inner.loop
                    )

                    def on_done(fut, task=task, put_once=put_once):
                        if fut.cancelled():
                            # Cancelled before the coroutine ever ran:
                            # no worker body exists to put, so settle
                            # the task's debt here.
                            put_once(
                                (task, None, futures_mod.CancelledError())
                            )

                    future.add_done_callback(on_done)
                    futures.append(future)

                def abort() -> int:
                    # The flag stops every body that has not started;
                    # cancellation (scheduled on the loop thread, so
                    # every resulting queue put — done callbacks
                    # included — happens off the coordinator thread,
                    # which is about to drain the queue) interrupts
                    # the ones parked at the semaphore or mid-await.
                    # Every task still delivers exactly one put, hence
                    # the 0: the coordinator's pending count is
                    # already right.
                    aborted[0] = True

                    def cancel_all(pending=list(futures)):
                        for future in pending:
                            future.cancel()

                    futures.clear()
                    self_inner.loop.call_soon_threadsafe(cancel_all)
                    return 0

                submit.abort = abort
                return submit

            def __exit__(self_inner, *exc_info):
                # The coordinator only exits after draining one result
                # per submitted task, and each worker's final step runs
                # put-then-return atomically — every coroutine is done.
                self_inner.loop.call_soon_threadsafe(self_inner.loop.stop)
                self_inner.thread.join()
                self_inner.loop.close()
                return False

        return _Ctx()


def offload_blocking_grab(grab: GrabFn, pool) -> GrabFn:
    """Adapt a blocking grab function for any backend, async included.

    Live grabs block their calling thread on real socket I/O.  Under
    the serial/thread/process backends that is exactly right, and the
    wrapper is transparent (no running event loop → direct call).  On
    the async backend the grab is invoked *on the loop thread*, where
    blocking would stall every in-flight coroutine — so it is
    offloaded to ``pool`` (a ``ThreadPoolExecutor``) and the returned
    future awaited, semaphore-bounded like any other task.  The
    socket I/O itself multiplexes on the shared transport loop
    (:func:`repro.transport.socket_io.shared_io_loop`), never on the
    executor's.
    """
    import asyncio

    def wrapped(task):
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return grab(task)
        return loop.run_in_executor(pool, grab, task)

    return wrapped


class ProfiledScanExecutor(ScanExecutor):
    """Decorator executor feeding per-stage counters to ``--profile``.

    Wraps any backend: the task body is timed in-process around
    ``grab`` (``record_seconds``), and completions are counted
    coordinator-side inside ``expand`` (``record_completed``), which
    fires exactly once per finished task on every backend.  On the
    process backend grab bodies run in forked workers, so their
    seconds accumulate in the child and are lost — task counts stay
    exact there, and the grab seconds column reads zero (probe batches
    run inline in the coordinator, so their seconds are measured;
    documented in ``docs/performance.md``).  The wrapper adds two dict updates per
    task and never touches records, so profiled and unprofiled runs
    stay byte-identical.
    """

    def __init__(self, inner: ScanExecutor, stats):
        self._inner = inner
        self.stats = stats
        self.name = inner.name
        self.workers = inner.workers

    def run(self, tasks, grab, expand) -> ResultList:
        from time import perf_counter

        stats = self.stats

        def timed_grab(task):
            start = perf_counter()
            try:
                return grab(task)
            finally:
                stats.record_seconds(_stage(task), perf_counter() - start)

        def counting_expand(task, record):
            stats.record_completed(_stage(task))
            return expand(task, record)

        return self._inner.run(tasks, timed_grab, counting_expand)


def build_executor(name: str = "serial", workers: int = 1) -> ScanExecutor:
    """Instantiate a backend by name (:data:`EXECUTOR_NAMES`).

    ``workers == 1`` always yields the serial backend — a pool (or
    event loop) of one only adds scheduling overhead and the outputs
    are identical by construction.
    """
    if name not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if name == "serial" or workers == 1:
        return SerialScanExecutor()
    if name == "thread":
        return ThreadScanExecutor(workers)
    if name == "async":
        return AsyncScanExecutor(workers)
    return ProcessScanExecutor(workers)


def resolve_executor(
    name: str | None, workers: int | None
) -> tuple[str, int]:
    """Fill in backend/worker-count defaults so neither flag is ignored.

    Asking for parallelism picks a real backend, and picking a real
    backend gets real parallelism:

    * neither given → serial, one worker;
    * ``workers`` > 1 alone → the ``process`` backend (the one that
      actually scales with cores);
    * ``thread``/``process`` alone → one worker per CPU;
    * ``async`` alone → :data:`DEFAULT_ASYNC_CONCURRENCY` in-flight
      coroutines (an event loop is bounded by outstanding latency,
      not cores).
    """
    if name is not None and name not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
        )
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if name is None:
        name = "process" if (workers or 1) > 1 else "serial"
    if workers is None:
        if name == "serial":
            workers = 1
        elif name == "async":
            workers = DEFAULT_ASYNC_CONCURRENCY
        else:
            workers = os.cpu_count() or 1
    return name, workers
