"""Regenerates Table 1 (the security policy catalogue)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_table1_policies(benchmark, study_result):
    report = benchmark(run_experiment, "table1", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
