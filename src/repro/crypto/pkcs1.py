"""PKCS#1 paddings: v1.5 (signing + encryption), OAEP, and PSS.

These map one-to-one onto the asymmetric algorithms the OPC UA
security policies name (cf. paper Table 1): Basic128Rsa15 uses
RSAES-PKCS1-v1_5, Basic256/Basic256Sha256/Aes128_Sha256_RsaOaep use
RSA-OAEP, and Aes256_Sha256_RsaPss signs with RSASSA-PSS.
"""

from __future__ import annotations

import random

from repro.asn1 import der
from repro.crypto.hashes import get_hash
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey


class CryptoError(Exception):
    """Padding/verification failure or unusable parameters."""


# DigestInfo prefixes for EMSA-PKCS1-v1_5 (RFC 8017 §9.2).
_DIGEST_OIDS = {
    "md5": "1.2.840.113549.2.5",
    "sha1": "1.3.14.3.2.26",
    "sha256": "2.16.840.1.101.3.4.2.1",
}


def _int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


def _bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _digest_info(hash_name: str, digest: bytes) -> bytes:
    algorithm = der.Sequence(
        [der.ObjectIdentifier(_DIGEST_OIDS[hash_name]), der.Null()]
    )
    return der.encode_der(der.Sequence([algorithm, der.OctetString(digest)]))


def _mgf1(hash_name: str, seed: bytes, length: int) -> bytes:
    alg = get_hash(hash_name)
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(alg.digest(seed + counter.to_bytes(4, "big")))
        counter += 1
    return bytes(out[:length])


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


# --- RSASSA-PKCS1-v1_5 ------------------------------------------------------


def pkcs1v15_sign(key: RsaPrivateKey, hash_name: str, message: bytes) -> bytes:
    alg = get_hash(hash_name)
    info = _digest_info(hash_name, alg.digest(message))
    k = key.byte_length
    if len(info) + 11 > k:
        raise CryptoError("key too small for digest")
    padding = b"\xff" * (k - len(info) - 3)
    em = b"\x00\x01" + padding + b"\x00" + info
    return _int_to_bytes(key.raw_sign(_bytes_to_int(em)), k)


def pkcs1v15_verify(
    key: RsaPublicKey, hash_name: str, message: bytes, signature: bytes
) -> bool:
    k = key.byte_length
    if len(signature) != k:
        return False
    try:
        em = _int_to_bytes(key.raw_verify(_bytes_to_int(signature)), k)
    except ValueError:
        return False
    alg = get_hash(hash_name)
    info = _digest_info(hash_name, alg.digest(message))
    if len(info) + 11 > k:
        return False
    expected = b"\x00\x01" + b"\xff" * (k - len(info) - 3) + b"\x00" + info
    return em == expected


def pkcs1v15_recover_digest_info(key: RsaPublicKey, signature: bytes) -> bytes:
    """Recover the DigestInfo from a v1.5 signature (for cert parsing)."""
    k = key.byte_length
    if len(signature) != k:
        raise CryptoError("signature length mismatch")
    em = _int_to_bytes(key.raw_verify(_bytes_to_int(signature)), k)
    if not em.startswith(b"\x00\x01"):
        raise CryptoError("bad v1.5 header")
    try:
        sep = em.index(b"\x00", 2)
    except ValueError:
        raise CryptoError("missing v1.5 separator") from None
    if any(byte != 0xFF for byte in em[2:sep]):
        raise CryptoError("bad v1.5 padding bytes")
    return em[sep + 1 :]


# --- RSAES-PKCS1-v1_5 -------------------------------------------------------


def pkcs1v15_encrypt(
    key: RsaPublicKey, message: bytes, rng: random.Random
) -> bytes:
    k = key.byte_length
    if len(message) > k - 11:
        raise CryptoError("message too long for RSAES-PKCS1-v1_5")
    pad_len = k - len(message) - 3
    padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
    em = b"\x00\x02" + padding + b"\x00" + message
    return _int_to_bytes(key.raw_encrypt(_bytes_to_int(em)), k)


def pkcs1v15_decrypt(key: RsaPrivateKey, ciphertext: bytes) -> bytes:
    k = key.byte_length
    if len(ciphertext) != k:
        raise CryptoError("ciphertext length mismatch")
    em = _int_to_bytes(key.raw_decrypt(_bytes_to_int(ciphertext)), k)
    if not em.startswith(b"\x00\x02"):
        raise CryptoError("bad RSAES-PKCS1-v1_5 header")
    try:
        sep = em.index(b"\x00", 2)
    except ValueError:
        raise CryptoError("missing RSAES-PKCS1-v1_5 separator") from None
    if sep < 10:
        raise CryptoError("padding string too short")
    return em[sep + 1 :]


def pkcs1v15_max_plaintext(key_bytes: int) -> int:
    return key_bytes - 11


# --- RSAES-OAEP -------------------------------------------------------------


def oaep_encrypt(
    key: RsaPublicKey,
    message: bytes,
    rng: random.Random,
    hash_name: str = "sha1",
    label: bytes = b"",
) -> bytes:
    alg = get_hash(hash_name)
    k = key.byte_length
    h_len = alg.digest_size
    if len(message) > k - 2 * h_len - 2:
        raise CryptoError("message too long for OAEP")
    l_hash = alg.digest(label)
    ps = b"\x00" * (k - len(message) - 2 * h_len - 2)
    db = l_hash + ps + b"\x01" + message
    seed = bytes(rng.randrange(256) for _ in range(h_len))
    masked_db = _xor(db, _mgf1(hash_name, seed, k - h_len - 1))
    masked_seed = _xor(seed, _mgf1(hash_name, masked_db, h_len))
    em = b"\x00" + masked_seed + masked_db
    return _int_to_bytes(key.raw_encrypt(_bytes_to_int(em)), k)


def oaep_decrypt(
    key: RsaPrivateKey,
    ciphertext: bytes,
    hash_name: str = "sha1",
    label: bytes = b"",
) -> bytes:
    alg = get_hash(hash_name)
    k = key.byte_length
    h_len = alg.digest_size
    if len(ciphertext) != k or k < 2 * h_len + 2:
        raise CryptoError("ciphertext length mismatch")
    em = _int_to_bytes(key.raw_decrypt(_bytes_to_int(ciphertext)), k)
    if em[0] != 0:
        raise CryptoError("bad OAEP leading byte")
    masked_seed = em[1 : 1 + h_len]
    masked_db = em[1 + h_len :]
    seed = _xor(masked_seed, _mgf1(hash_name, masked_db, h_len))
    db = _xor(masked_db, _mgf1(hash_name, seed, k - h_len - 1))
    l_hash = alg.digest(label)
    if db[:h_len] != l_hash:
        raise CryptoError("OAEP label mismatch")
    try:
        sep = db.index(b"\x01", h_len)
    except ValueError:
        raise CryptoError("missing OAEP separator") from None
    if any(byte != 0 for byte in db[h_len:sep]):
        raise CryptoError("bad OAEP padding")
    return db[sep + 1 :]


def oaep_max_plaintext(key_bytes: int, hash_name: str = "sha1") -> int:
    return key_bytes - 2 * get_hash(hash_name).digest_size - 2


# --- RSASSA-PSS -------------------------------------------------------------


def pss_sign(
    key: RsaPrivateKey,
    hash_name: str,
    message: bytes,
    rng: random.Random,
    salt_length: int | None = None,
) -> bytes:
    alg = get_hash(hash_name)
    h_len = alg.digest_size
    salt_length = h_len if salt_length is None else salt_length
    em_bits = key.bit_length - 1
    em_len = (em_bits + 7) // 8
    if em_len < h_len + salt_length + 2:
        raise CryptoError("key too small for PSS")
    m_hash = alg.digest(message)
    salt = bytes(rng.randrange(256) for _ in range(salt_length))
    m_prime = b"\x00" * 8 + m_hash + salt
    h = alg.digest(m_prime)
    ps = b"\x00" * (em_len - salt_length - h_len - 2)
    db = ps + b"\x01" + salt
    masked_db = bytearray(_xor(db, _mgf1(hash_name, h, em_len - h_len - 1)))
    # Clear the leftmost bits so EM fits in em_bits.
    masked_db[0] &= 0xFF >> (8 * em_len - em_bits)
    em = bytes(masked_db) + h + b"\xbc"
    return _int_to_bytes(key.raw_sign(_bytes_to_int(em)), key.byte_length)


def pss_verify(
    key: RsaPublicKey,
    hash_name: str,
    message: bytes,
    signature: bytes,
    salt_length: int | None = None,
) -> bool:
    alg = get_hash(hash_name)
    h_len = alg.digest_size
    salt_length = h_len if salt_length is None else salt_length
    if len(signature) != key.byte_length:
        return False
    em_bits = key.bit_length - 1
    em_len = (em_bits + 7) // 8
    try:
        em_int = key.raw_verify(_bytes_to_int(signature))
    except ValueError:
        return False
    em = _int_to_bytes(em_int, key.byte_length)[-em_len:]
    if em_len < h_len + salt_length + 2 or em[-1] != 0xBC:
        return False
    masked_db = bytearray(em[: em_len - h_len - 1])
    h = em[em_len - h_len - 1 : -1]
    top_mask = 0xFF >> (8 * em_len - em_bits)
    if masked_db[0] & ~top_mask & 0xFF:
        return False
    db = bytearray(_xor(bytes(masked_db), _mgf1(hash_name, h, em_len - h_len - 1)))
    db[0] &= top_mask
    ps_len = em_len - h_len - salt_length - 2
    if any(byte != 0 for byte in db[:ps_len]) or db[ps_len] != 0x01:
        return False
    salt = bytes(db[ps_len + 1 :])
    m_prime = b"\x00" * 8 + alg.digest(message) + salt
    return alg.digest(m_prime) == h
