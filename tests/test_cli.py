"""CLI tests (cheap commands only; `study` is covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.command == "study"
        assert args.seed == 20200830

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_experiment_accepts_known_id(self):
        args = build_parser().parse_args(["experiment", "fig3", "--seed", "7"])
        assert args.experiment_id == "fig3"
        assert args.seed == 7

    def test_dataset_needs_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset"])

    def test_store_flags(self):
        args = build_parser().parse_args(["study", "--store", "/tmp/s"])
        assert args.store == "/tmp/s"
        assert not args.no_store
        args = build_parser().parse_args(["dataset", "out.jsonl", "--no-store"])
        assert args.no_store

    def test_study_scan_only(self):
        args = build_parser().parse_args(["study", "--scan-only"])
        assert args.scan_only

    def test_analyze_flags(self):
        args = build_parser().parse_args(
            ["analyze", "--store", "/tmp/s", "--analysis", "modes",
             "--analysis", "deficits", "--json", "out.json"]
        )
        assert args.analysis == ["modes", "deficits"]
        assert args.json == "out.json"

    def test_analyze_rejects_unknown_analysis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--analysis", "nope"])

    def test_analyze_choices_pin_the_registry(self):
        """cli.ANALYZE_CHOICES mirrors the registry without importing
        the analysis stack at parser-build time."""
        from repro.analysis.pipeline import ANALYSIS_NAMES
        from repro.cli import ANALYZE_CHOICES

        assert ANALYZE_CHOICES == ANALYSIS_NAMES


class TestCheapCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "ipv6" in out

    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "Basic256Sha256" in out
        assert "deprecated" in out


class TestAnalyzeErrors:
    def test_analyze_without_store_exits(self, monkeypatch):
        monkeypatch.delenv("REPRO_STUDY_STORE", raising=False)
        with pytest.raises(SystemExit, match="needs a study store"):
            main(["analyze"])

    def test_analyze_empty_store_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no stored study"):
            main(["analyze", "--store", str(tmp_path / "empty")])

    def test_no_store_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STUDY_STORE", str(tmp_path / "env-store"))
        with pytest.raises(SystemExit, match="needs a study store"):
            main(["analyze", "--no-store"])
