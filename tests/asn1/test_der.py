from datetime import datetime, timezone

import pytest
from hypothesis import given, strategies as st

from repro.asn1 import der


class TestPrimitives:
    def test_null_round_trip(self):
        assert der.decode_der(der.encode_der(der.Null())) == der.Null()

    def test_boolean_true(self):
        assert der.encode_der(True) == b"\x01\x01\xff"
        assert der.decode_der(b"\x01\x01\xff") is True

    def test_boolean_false(self):
        assert der.decode_der(der.encode_der(False)) is False

    def test_integer_zero(self):
        assert der.encode_der(0) == b"\x02\x01\x00"

    def test_integer_positive_high_bit_gets_leading_zero(self):
        assert der.encode_der(128) == b"\x02\x02\x00\x80"

    def test_integer_negative(self):
        assert der.encode_der(-1) == b"\x02\x01\xff"
        assert der.decode_der(b"\x02\x01\xff") == -1

    def test_non_minimal_integer_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.decode_der(b"\x02\x02\x00\x01")

    def test_octet_string(self):
        value = der.OctetString(b"\x01\x02")
        assert der.decode_der(der.encode_der(value)) == value

    def test_utf8_string(self):
        value = der.Utf8String("grüße")
        assert der.decode_der(der.encode_der(value)) == value

    def test_bit_string(self):
        value = der.BitString(b"\xaa\xbb")
        decoded = der.decode_der(der.encode_der(value))
        assert decoded.data == b"\xaa\xbb"
        assert decoded.unused_bits == 0


class TestOid:
    def test_rsa_oid_known_encoding(self):
        # 1.2.840.113549.1.1.1 has a well-known DER encoding.
        encoded = der.encode_der(der.ObjectIdentifier("1.2.840.113549.1.1.1"))
        assert encoded == bytes.fromhex("06092a864886f70d010101")

    def test_round_trip(self):
        oid = der.ObjectIdentifier("2.5.29.17")
        assert der.decode_der(der.encode_der(oid)) == oid

    def test_invalid_oid_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.ObjectIdentifier("banana")

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=6)
    )
    def test_arbitrary_arcs_round_trip(self, tail):
        dotted = "1.3." + ".".join(str(a) for a in tail)
        oid = der.ObjectIdentifier(dotted)
        assert der.decode_der(der.encode_der(oid)) == oid


class TestStructures:
    def test_sequence_round_trip(self):
        value = der.Sequence([1, der.Utf8String("x"), der.Null()])
        assert der.decode_der(der.encode_der(value)) == value

    def test_nested_sequences(self):
        value = der.Sequence([der.Sequence([1, 2]), der.Sequence([])])
        assert der.decode_der(der.encode_der(value)) == value

    def test_set_of_sorts_encodings(self):
        # DER requires SET OF elements in ascending encoded order.
        encoded = der.encode_der(der.SetOf([500, 1]))
        decoded = der.decode_der(encoded)
        assert decoded.items == (1, 500)

    def test_context_tag_constructed(self):
        value = der.ContextTag(0, inner=2)
        decoded = der.decode_der(der.encode_der(value))
        assert decoded.number == 0
        assert decoded.inner == 2

    def test_context_tag_primitive(self):
        value = der.ContextTag(6, primitive_data=b"urn:x")
        decoded = der.decode_der(der.encode_der(value))
        assert decoded.primitive_data == b"urn:x"

    def test_utc_time_round_trip(self):
        moment = datetime(2020, 8, 30, 11, 22, 33, tzinfo=timezone.utc)
        decoded = der.decode_der(der.encode_der(der.UtcTime(moment)))
        assert decoded.moment == moment

    def test_utc_time_pre_2000(self):
        moment = datetime(1999, 1, 2, 3, 4, 5, tzinfo=timezone.utc)
        decoded = der.decode_der(der.encode_der(der.UtcTime(moment)))
        assert decoded.moment == moment


class TestMalformedInput:
    def test_trailing_bytes_rejected(self):
        encoded = der.encode_der(der.Null()) + b"\x00"
        with pytest.raises(der.Asn1Error):
            der.decode_der(encoded)

    def test_trailing_bytes_allowed_when_requested(self):
        encoded = der.encode_der(5) + b"junk"
        value, consumed = der.decode_der(encoded, allow_trailing=True)
        assert value == 5
        assert consumed == 3

    def test_truncated_value_rejected(self):
        encoded = der.encode_der(der.OctetString(b"abcdef"))
        with pytest.raises(der.Asn1Error):
            der.decode_der(encoded[:-1])

    def test_empty_input_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.decode_der(b"")

    def test_indefinite_length_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.decode_der(b"\x30\x80\x00\x00")

    def test_bad_boolean_length_rejected(self):
        with pytest.raises(der.Asn1Error):
            der.decode_der(b"\x01\x02\xff\xff")


@given(st.integers(min_value=-(2**127), max_value=2**127))
def test_integer_round_trip(value):
    assert der.decode_der(der.encode_der(value)) == value


@given(st.binary(max_size=300))
def test_octet_string_round_trip(payload):
    value = der.OctetString(payload)
    assert der.decode_der(der.encode_der(value)) == value


@given(st.text(max_size=100))
def test_utf8_round_trip(text):
    value = der.Utf8String(text)
    assert der.decode_der(der.encode_der(value)) == value


@given(st.lists(st.integers(-1000, 1000), max_size=20))
def test_sequence_of_integers_round_trip(values):
    seq = der.Sequence(values)
    assert der.decode_der(der.encode_der(seq)) == seq
