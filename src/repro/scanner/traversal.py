"""Budgeted address-space traversal (paper §5.4 / Appendix A.2).

Breadth-first browse from the Objects folder, reading each variable's
UserAccessLevel and each method's UserExecutable attribute as the
anonymous user.  The walk never writes and never calls methods,
matching the paper's ethics constraints; it merely *asks the server*
what the anonymous user would be allowed to do.
"""

from __future__ import annotations

from repro.client import UaClient, UaClientError
from repro.transport.messages import TransportError
from repro.scanner.limits import TraversalBudget
from repro.scanner.records import NodeSummary
from repro.server.addressspace import NodeIds
from repro.uabin.enums import AttributeId, NodeClass
from repro.util.simtime import SimClock

_SAMPLE_LIMIT = 25
_READ_BATCH = 20


def traverse_address_space(
    client: UaClient,
    clock: SimClock,
    budget: TraversalBudget,
    socket=None,
) -> NodeSummary:
    """Walk the address space; returns the aggregate node summary."""
    budget.start(clock.now())
    summary = NodeSummary()
    def bytes_used() -> int:
        return socket.bytes_sent if socket is not None else 0

    visited = set()
    seen_leaves = set()
    variables = []
    methods = []
    queue = [NodeIds.ObjectsFolder, NodeIds.RootFolder]

    while queue:
        if not budget.check(clock.now(), bytes_used()):
            summary.traversal_complete = False
            summary.budget_exhausted = budget.exhausted_reason
            break
        node_id = queue.pop(0)
        if node_id in visited:
            continue
        visited.add(node_id)
        clock.advance(budget.inter_request_delay_s)
        budget.count_request()
        try:
            results = client.browse([node_id])
        except (UaClientError, TransportError):
            summary.traversal_complete = False
            break
        for result in results:
            for reference in result.references or []:
                target = reference.node_id.node_id
                if target in visited or target in seen_leaves:
                    continue
                name = reference.browse_name.name or ""
                if reference.node_class == NodeClass.VARIABLE:
                    # Leaves need no Browse of their own; the reference
                    # already tells us the class and name.
                    seen_leaves.add(target)
                    variables.append((target, name))
                elif reference.node_class == NodeClass.METHOD:
                    seen_leaves.add(target)
                    methods.append((target, name))
                else:
                    queue.append(target)

    summary.total_nodes = (
        len(visited)
        + len(seen_leaves)
        + len([n for n in queue if n not in visited])
    )
    summary.variables = len(variables)
    summary.methods = len(methods)

    # Read access attributes in batches.
    complete, readable_nodes = _collect_access_rights(
        client, clock, budget, summary, variables, methods, bytes_used
    )
    if not complete:
        summary.traversal_complete = False
        summary.budget_exhausted = summary.budget_exhausted or budget.exhausted_reason
        return summary
    # Sample readable values (the paper manually examined these, e.g.
    # to identify operators and data sensitivity, §5.4/Appendix A).
    if not _collect_value_samples(
        client, clock, budget, summary, readable_nodes, bytes_used
    ):
        summary.budget_exhausted = summary.budget_exhausted or budget.exhausted_reason
    return summary


def _collect_access_rights(
    client, clock, budget, summary, variables, methods, bytes_used
):
    readable_nodes = []
    for offset in range(0, len(variables), _READ_BATCH):
        if not budget.check(clock.now(), bytes_used()):
            return False, readable_nodes
        batch = variables[offset : offset + _READ_BATCH]
        clock.advance(budget.inter_request_delay_s)
        budget.count_request()
        try:
            values = client.read_attributes(
                [(node_id, AttributeId.USER_ACCESS_LEVEL) for node_id, _ in batch]
            )
        except (UaClientError, TransportError):
            return False, readable_nodes
        for (node_id, name), value in zip(batch, values):
            level = value.value.value if value.value is not None else 0
            if isinstance(level, int):
                if level & 0x01:
                    summary.readable_variables += 1
                    readable_nodes.append((node_id, name))
                    _sample(summary.readable_names_sample, name)
                if level & 0x02:
                    summary.writable_variables += 1
                    _sample(summary.writable_names_sample, name)

    for offset in range(0, len(methods), _READ_BATCH):
        if not budget.check(clock.now(), bytes_used()):
            return False, readable_nodes
        batch = methods[offset : offset + _READ_BATCH]
        clock.advance(budget.inter_request_delay_s)
        budget.count_request()
        try:
            values = client.read_attributes(
                [(node_id, AttributeId.USER_EXECUTABLE) for node_id, _ in batch]
            )
        except (UaClientError, TransportError):
            return False, readable_nodes
        for (node_id, name), value in zip(batch, values):
            executable = value.value.value if value.value is not None else False
            if executable:
                summary.executable_methods += 1
                _sample(summary.executable_names_sample, name)
    return True, readable_nodes


def _collect_value_samples(
    client, clock, budget, summary, readable_nodes, bytes_used
) -> bool:
    """Read a bounded sample of string-typed readable values."""
    candidates = [
        (node_id, name)
        for node_id, name in readable_nodes
        if name.startswith(("s", "S"))
    ][:_READ_BATCH]
    if not candidates:
        return True
    if not budget.check(clock.now(), bytes_used()):
        return False
    clock.advance(budget.inter_request_delay_s)
    budget.count_request()
    try:
        values = client.read_values([node_id for node_id, _ in candidates])
    except (UaClientError, TransportError):
        return False
    for value in values:
        if value.value is not None and isinstance(value.value.value, str):
            summary.value_samples.append(value.value.value)
    return True


def _sample(bucket: list[str], name: str) -> None:
    if name and len(bucket) < _SAMPLE_LIMIT:
        bucket.append(name)
