"""X.501 distinguished names (the RDNSequence subset RFC 5280 uses)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.asn1 import der
from repro.asn1 import oids

_ATTR_ORDER = [
    oids.COUNTRY,
    oids.STATE,
    oids.LOCALITY,
    oids.ORGANIZATION,
    oids.ORG_UNIT,
    oids.COMMON_NAME,
]

_SHORT_NAMES = {
    oids.COMMON_NAME: "CN",
    oids.COUNTRY: "C",
    oids.LOCALITY: "L",
    oids.STATE: "ST",
    oids.ORGANIZATION: "O",
    oids.ORG_UNIT: "OU",
}
_SHORT_TO_OID = {short: oid for oid, short in _SHORT_NAMES.items()}


@dataclass(frozen=True)
class DistinguishedName:
    """An ordered set of (attribute OID, value) pairs."""

    attributes: tuple[tuple[str, str], ...] = ()

    @classmethod
    def build(
        cls,
        common_name: str | None = None,
        organization: str | None = None,
        org_unit: str | None = None,
        country: str | None = None,
        locality: str | None = None,
        state: str | None = None,
    ) -> "DistinguishedName":
        values = {
            oids.COUNTRY: country,
            oids.STATE: state,
            oids.LOCALITY: locality,
            oids.ORGANIZATION: organization,
            oids.ORG_UNIT: org_unit,
            oids.COMMON_NAME: common_name,
        }
        attrs = tuple(
            (oid, value) for oid in _ATTR_ORDER if (value := values[oid]) is not None
        )
        return cls(attrs)

    @classmethod
    def parse_rfc4514(cls, text: str) -> "DistinguishedName":
        """Parse ``CN=x,O=y`` style strings (no escaping support)."""
        attrs = []
        for part in text.split(","):
            short, sep, value = part.strip().partition("=")
            if not sep:
                raise ValueError(f"malformed RDN: {part!r}")
            oid = _SHORT_TO_OID.get(short.strip().upper())
            if oid is None:
                raise ValueError(f"unknown attribute: {short!r}")
            attrs.append((oid, value))
        return cls(tuple(attrs))

    def get(self, oid: str) -> str | None:
        for attr_oid, value in self.attributes:
            if attr_oid == oid:
                return value
        return None

    @property
    def common_name(self) -> str | None:
        return self.get(oids.COMMON_NAME)

    @property
    def organization(self) -> str | None:
        return self.get(oids.ORGANIZATION)

    def rfc4514(self) -> str:
        return ",".join(
            f"{_SHORT_NAMES.get(oid, oid)}={value}" for oid, value in self.attributes
        )

    def __str__(self) -> str:
        return self.rfc4514()

    # --- DER mapping --------------------------------------------------------

    def to_der_value(self) -> der.Sequence:
        rdns = []
        for oid, value in self.attributes:
            if oid == oids.COUNTRY:
                text: object = der.PrintableString(value)
            else:
                text = der.Utf8String(value)
            attribute = der.Sequence([der.ObjectIdentifier(oid), text])
            rdns.append(der.SetOf([attribute]))
        return der.Sequence(rdns)

    @classmethod
    def from_der_value(cls, value: der.Sequence) -> "DistinguishedName":
        attrs = []
        for rdn in value:
            if not isinstance(rdn, der.SetOf):
                raise ValueError("RDN must be a SET")
            for attribute in rdn:
                oid, text = attribute[0], attribute[1]
                attrs.append((oid.dotted, getattr(text, "text", str(text))))
        return cls(tuple(attrs))
