"""End-to-end CLI coverage for the read-side verbs: runs, diff, pack.

These drive ``repro.cli.main`` exactly as the shipped entry point does,
against a real on-disk store, so they pin the full user journey the
redesign sells: list stored runs, diff two of them, export a sealed
bundle, and re-verify it.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.config import StudyConfig
from repro.dataset.store import StudyStore
from repro.deployments.spec import PopulationSpec
from tests.dataset.test_catalog import study


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("clistore") / "store"
    store = StudyStore(root)
    key_a = store.save(
        StudyConfig(seed=1), PopulationSpec(), study(["2020-07-06"], range(1, 10))
    )
    key_b = store.save(
        StudyConfig(seed=2), PopulationSpec(), study(["2020-08-30"], range(5, 15))
    )
    return root, key_a, key_b


class TestRuns:
    def test_runs_lists_both_studies(self, populated_store, capsys):
        root, key_a, key_b = populated_store
        assert main(["runs", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert key_a in out and key_b in out
        assert "Stored studies (2)" in out
        assert "registry digest:" in out

    def test_runs_key_describes_one_study(self, populated_store, capsys):
        root, key_a, _ = populated_store
        assert main(["runs", "--store", str(root), "--key", key_a]) == 0
        out = capsys.readouterr().out
        assert f"key:      {key_a}" in out
        assert "seed:     1" in out
        assert "sweeps:   1 (2020-07-06)" in out

    def test_runs_unknown_key_exits_with_hint(self, populated_store):
        root, *_ = populated_store
        with pytest.raises(SystemExit, match="no stored study"):
            main(["runs", "--store", str(root), "--key", "f" * 64])

    def test_runs_without_store_exits_with_hint(self, monkeypatch):
        monkeypatch.delenv("REPRO_STUDY_STORE", raising=False)
        with pytest.raises(
            SystemExit, match="pass --store DIR or set REPRO_STUDY_STORE"
        ):
            main(["runs"])


class TestDiff:
    def test_diff_renders_churn_and_digest(self, populated_store, capsys):
        root, key_a, key_b = populated_store
        assert main(["diff", key_a, key_b, "--store", str(root)]) == 0
        out = capsys.readouterr().out
        # range(1, 10) -> range(5, 15): 4 vanish, 5 appear, 5 persist.
        assert "appeared 5, disappeared 4" in out
        assert "diff digest:" in out

    def test_diff_json_payload_is_canonical(
        self, populated_store, capsys, tmp_path
    ):
        root, key_a, key_b = populated_store
        path = tmp_path / "diff.json"
        assert (
            main(["diff", key_a, key_b, "--store", str(root),
                  "--json", str(path)]) == 0
        )
        out = capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["label_a"] == key_a
        assert payload["label_b"] == key_b
        assert len(payload["appeared"]) == 5
        assert payload["digest"] in out

    def test_diff_unknown_key_exits_before_fanout(self, populated_store):
        root, key_a, _ = populated_store
        with pytest.raises(SystemExit, match="no stored study"):
            main(["diff", key_a, "0" * 64, "--store", str(root)])


class TestPackRoundTrip:
    def test_pack_then_verify(self, populated_store, capsys, tmp_path):
        root, key_a, _ = populated_store
        out_dir = tmp_path / "bundle"
        assert (
            main(["pack", key_a, "--out", str(out_dir),
                  "--store", str(root)]) == 0
        )
        out = capsys.readouterr().out
        assert "packed" in out
        assert "manifest digest:" in out

        assert main(["pack", key_a, "--out", str(out_dir), "--verify"]) == 0
        verified = capsys.readouterr().out
        assert f"pack OK: study {key_a[:12]}" in verified
        assert "artifacts verified" in verified

    def test_verify_tampered_bundle_exits_nonzero(
        self, populated_store, capsys, tmp_path
    ):
        root, key_a, _ = populated_store
        out_dir = tmp_path / "bundle"
        main(["pack", key_a, "--out", str(out_dir), "--store", str(root)])
        capsys.readouterr()
        (out_dir / "summary.txt").write_text("tampered")
        with pytest.raises(SystemExit, match="sha256 mismatch"):
            main(["pack", key_a, "--out", str(out_dir), "--verify"])

    def test_pack_unknown_key_writes_nothing(
        self, populated_store, tmp_path
    ):
        root, *_ = populated_store
        out_dir = tmp_path / "bundle"
        with pytest.raises(SystemExit, match="no stored study"):
            main(["pack", "9" * 64, "--out", str(out_dir),
                  "--store", str(root)])
        assert not out_dir.exists()
