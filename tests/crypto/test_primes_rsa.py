import math

import pytest

from repro.crypto.primes import SMALL_PRIMES, generate_prime, is_probable_prime
from repro.crypto.rsa import generate_rsa_key
from repro.util.rng import DeterministicRng


class TestPrimality:
    def test_small_primes_recognized(self):
        for p in (2, 3, 5, 7, 11, 97, 7919):
            assert is_probable_prime(p)

    def test_small_composites_rejected(self):
        for c in (0, 1, 4, 9, 91, 7917):
            assert not is_probable_prime(c)

    def test_carmichael_number_rejected(self):
        assert not is_probable_prime(561)
        assert not is_probable_prime(41041)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * 7)

    def test_sieve_contents(self):
        assert SMALL_PRIMES[:5] == [2, 3, 5, 7, 11]
        assert all(is_probable_prime(p) for p in SMALL_PRIMES[:50])


class TestGeneratePrime:
    def test_bit_length_exact(self):
        rng = DeterministicRng(1, "p")
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits

    def test_top_two_bits_set(self):
        rng = DeterministicRng(2, "p")
        p = generate_prime(128, rng)
        assert p >> 126 == 0b11

    def test_deterministic(self):
        a = generate_prime(96, DeterministicRng(3, "p"))
        b = generate_prime(96, DeterministicRng(3, "p"))
        assert a == b

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, DeterministicRng(1, "p"))


class TestRsaKeys:
    def test_modulus_exact_bits(self, rsa_512):
        assert rsa_512.private.n.bit_length() == 512

    def test_primes_multiply_to_modulus(self, rsa_512):
        key = rsa_512.private
        assert key.p * key.q == key.n

    def test_encrypt_decrypt_inverse(self, rsa_512):
        key = rsa_512.private
        message = 0x1234567890ABCDEF
        assert key.raw_decrypt(key.public_key().raw_encrypt(message)) == message

    def test_sign_verify_inverse(self, rsa_512):
        key = rsa_512.private
        message = 98765432123456789
        assert key.public_key().raw_verify(key.raw_sign(message)) == message

    def test_crt_matches_plain_exponentiation(self, rsa_512):
        key = rsa_512.private
        c = 31337
        assert key.raw_decrypt(c) == pow(c, key.d, key.n)

    def test_out_of_range_rejected(self, rsa_512):
        with pytest.raises(ValueError):
            rsa_512.private.raw_decrypt(rsa_512.private.n)
        with pytest.raises(ValueError):
            rsa_512.public.raw_encrypt(-1)

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            generate_rsa_key(513, DeterministicRng(1, "k"))

    def test_public_exponent_coprime(self, rsa_512):
        key = rsa_512.private
        assert math.gcd(key.e, (key.p - 1) * (key.q - 1)) == 1

    def test_distinct_keys_share_no_primes(self, rsa_512, rsa_768):
        assert math.gcd(rsa_512.private.n, rsa_768.private.n) == 1


class TestCrossValidation:
    """Validate our RSA against the `cryptography` package (oracle only)."""

    def test_key_loads_in_cryptography(self, rsa_512):
        from cryptography.hazmat.primitives.asymmetric import rsa as c_rsa

        key = rsa_512.private
        pub = c_rsa.RSAPublicNumbers(key.e, key.n).public_key()
        assert pub.key_size == 512
