"""Read-side facade over the study store: registry, folds, diffs.

The :class:`~repro.dataset.store.StudyStore` grew its surface
organically around the *write* path (``save``/``save_shard``/
``write_merge_manifest``…).  :class:`StudyCatalog` is the consolidated
*read* API the CLI, the experiments, and the pack exporter use
instead of poking at ``keys``/``read_meta``/``read_merge_manifest``
directly:

* **run registry** — :meth:`list_runs` / :meth:`describe` turn entry
  metadata (plus shard-merge manifests, when present) into
  :class:`RunInfo` rows; :meth:`registry_digest` pins the whole
  listing so ``repro runs`` output is checkably identical across
  machines;
* **streaming aggregation** — :meth:`summarize` folds an entry's
  digest-validated snapshot stream into a
  :class:`~repro.analysis.diff.StudySummary` one sweep at a time,
  so million-record studies never fully materialize;
* **diffing** — :meth:`diff` fans two summarize folds through any
  :class:`~repro.scanner.executor.ScanExecutor` backend and compares
  them into a digest-pinned
  :class:`~repro.analysis.diff.StudyDiff` (byte-identical on
  serial/thread/process/async, because the folds are pure functions
  of the stored snapshot bytes).

    >>> import tempfile
    >>> from repro.core.config import StudyConfig
    >>> from repro.dataset.store import StudyStore
    >>> from repro.deployments.spec import PopulationSpec
    >>> from repro.scanner.records import HostRecord, MeasurementSnapshot
    >>> store = StudyStore(tempfile.mkdtemp())
    >>> sweep = MeasurementSnapshot(date="2020-07-06", records=[
    ...     HostRecord(ip=1, port=4840, asn=None, timestamp="2020-07-06",
    ...                tcp_open=True, is_opcua=True)])
    >>> key = store.save(StudyConfig(seed=1), PopulationSpec(), [sweep])
    >>> catalog = StudyCatalog(store)
    >>> run, = catalog.list_runs()
    >>> run.key == key, run.sweeps, run.sweep_dates
    (True, 1, ('2020-07-06',))
    >>> catalog.describe(key).records
    1
    >>> catalog.summarize(key).final_stats.servers
    1
    >>> catalog.diff(key, key).is_empty()
    True
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.analysis.diff import StudyDiff, StudySummary, diff_summaries, summarize_stream
from repro.dataset.store import StudyStore, resolve_store
from repro.scanner.executor import build_executor
from repro.scanner.records import MeasurementSnapshot


@dataclass(frozen=True)
class RunInfo:
    """One stored study as the run registry presents it.

    A plain-data projection of ``meta.json`` (and, for merged sharded
    campaigns, ``merge.json``): everything ``repro runs`` prints and
    nothing that requires decoding snapshot bytes.
    """

    key: str
    seed: int
    sweeps: int
    records: int
    sweep_dates: tuple[str, ...]
    digest: str
    spec_rows: int
    spec_servers: int
    config: dict
    #: Shard-merge provenance from ``merge.json``; ``None`` for
    #: studies scanned in one piece.
    merge: dict | None = None

    @property
    def merged_from_shards(self) -> int | None:
        if self.merge is None:
            return None
        return self.merge.get("shard_count")


@dataclass(frozen=True)
class _SummarizeTask:
    """One "fold this entry" work item for a :class:`ScanExecutor`.

    The executor protocol dedups by ``key`` — so a self-diff
    (``diff(k, k)``) submits one task, not two, and the caller maps
    results back by entry key.
    """

    root: str
    entry: str

    stage = 1

    @property
    def key(self) -> tuple[str, str]:
        return ("summarize", self.entry)


def _summarize_entry(task: _SummarizeTask) -> StudySummary:
    """Executor grab function: stream-fold one store entry.

    Module-level and self-contained (the store is reopened from the
    task's root path) so every backend — including fork workers —
    computes the identical pure function of the on-disk bytes.
    """
    store = StudyStore(task.root)
    return summarize_stream(store.iter_validated(task.entry), label=task.entry)


class StudyCatalog:
    """The read-side API over a :class:`StudyStore` directory.

    Construct from a store, or :meth:`open` the ambient one (the
    ``--store`` flag / ``REPRO_STUDY_STORE`` environment variable via
    :func:`~repro.dataset.store.resolve_store`).
    """

    def __init__(self, store: StudyStore):
        self.store = store

    @classmethod
    def open(cls, path: str | Path | None = None) -> "StudyCatalog | None":
        """Catalog over the resolved ambient store; ``None`` if none."""
        store = resolve_store(path)
        if store is None:
            return None
        return cls(store)

    @property
    def root(self) -> Path:
        return self.store.root

    # --- run registry ------------------------------------------------------

    def keys(self) -> list[str]:
        """Every study key, sorted (see :meth:`StudyStore.keys`)."""
        return self.store.keys()

    def corpus_keys(self) -> list[str]:
        """Every capture-corpus key, sorted."""
        return self.store.corpus_keys()

    def describe(self, key: str) -> RunInfo:
        """The registry row for one stored study.

        Raises :class:`KeyError` for an unknown key;
        :class:`~repro.dataset.store.StoreIntegrityError` propagates
        from a corrupt ``meta.json``.
        """
        if not (self.store.entry_dir(key) / "meta.json").exists():
            raise KeyError(f"no stored study {key!r} under {self.root}")
        meta = self.store.read_meta(key)
        config = meta.get("config", {})
        return RunInfo(
            key=key,
            seed=config.get("seed", 0),
            sweeps=meta.get("sweeps", 0),
            records=meta.get("records", 0),
            sweep_dates=tuple(meta.get("per_sweep", {})),
            digest=meta.get("digest", ""),
            spec_rows=meta.get("spec_rows", 0),
            spec_servers=meta.get("spec_servers", 0),
            config=config,
            merge=self.store.read_merge_manifest(key),
        )

    def list_runs(self) -> list[RunInfo]:
        """Every stored study, in sorted key order."""
        return [self.describe(key) for key in self.keys()]

    def registry_digest(self) -> str:
        """SHA-256 over the canonical JSON of the whole listing.

        Two machines holding the same entries print the same
        ``repro runs`` table *and* the same digest — the quick "are
        our stores in sync?" check.
        """
        from repro.analysis.pipeline import jsonify
        from repro.core.golden import canonical_json

        material = canonical_json(jsonify(self.list_runs()))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # --- streaming reads ---------------------------------------------------

    def iter_validated(self, key: str) -> Iterator[MeasurementSnapshot]:
        """Digest-validating snapshot stream for one entry."""
        return self.store.iter_validated(key)

    def summarize(self, key: str) -> StudySummary:
        """Stream-fold one study; peak memory stays bounded by one
        decoded snapshot plus the compact per-endpoint state map."""
        return summarize_stream(self.iter_validated(key), label=key)

    # --- diffing -----------------------------------------------------------

    def diff(
        self,
        key_a: str,
        key_b: str,
        *,
        executor: str = "serial",
        workers: int = 1,
    ) -> StudyDiff:
        """Diff two stored studies, folding both through an executor.

        The two summarize folds are independent pure tasks, so they
        fan out through any backend; the comparison itself is
        deterministic, making the resulting
        :meth:`~repro.analysis.diff.StudyDiff.digest` byte-identical
        across serial/thread/process/async.
        """
        for key in dict.fromkeys((key_a, key_b)):
            # Fail with the registry's KeyError before spawning workers.
            self.describe(key)
        pool = build_executor(executor, workers)
        tasks = [
            _SummarizeTask(root=str(self.root), entry=key)
            for key in dict.fromkeys((key_a, key_b))
        ]
        completed = {
            task.entry: summary
            for task, summary in pool.run(
                tasks, _summarize_entry, lambda task, result: ()
            )
        }
        return diff_summaries(completed[key_a], completed[key_b])

    # --- full materialization (the pack exporter's read path) --------------

    def result_for(self, key: str):
        """A :class:`~repro.core.study.StudyResult` for a stored entry.

        Reconstructs the :class:`~repro.core.config.StudyConfig` from
        the entry's meta and attaches the default
        :class:`~repro.deployments.spec.PopulationSpec` when it
        content-addresses to this key (i.e. the entry *is* a
        default-population study); reduced-population entries get
        ``spec=None`` — every registered analysis reads only
        snapshots, so they are unaffected.

        This is the one catalog method that materializes all
        snapshots; the diff/summarize paths never do.
        """
        from repro.core.config import StudyConfig
        from repro.core.study import StudyResult
        from repro.dataset.store import study_key
        from repro.deployments.spec import build_default_spec

        info = self.describe(key)
        config = StudyConfig(**info.config)
        spec = build_default_spec()
        if study_key(config, spec) != key:
            spec = None
        snapshots = list(self.iter_validated(key))
        return StudyResult(config=config, spec=spec, snapshots=snapshots)
