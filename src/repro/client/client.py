"""The UaClient: protocol driver over an abstract byte stream.

The stream is anything satisfying the
:class:`~repro.transport.socket_io.Transport` seam::

    stream.write(data: bytes) -> None   # send request bytes
    stream.read() -> bytes              # next slice the peer produced
                                        # (b"" == connection closed)

The in-memory loopback used in tests, the network simulator's
sockets, and the live socket transports all provide it.  ``read`` may
return *partial* frames (live TCP segments arbitrarily); the client
reassembles via :class:`~repro.transport.connection.FrameReader` and
keeps reading until a frame completes or the peer goes silent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.client.errors import (
    ConnectionClosedError,
    ServiceFaultError,
    TransportRejectedError,
    UaClientError,
)
from repro.secure.channel import ClientSecureChannel
from repro.secure.negotiation import ChannelSecurity
from repro.transport.connection import FrameReader, encode_frame
from repro.transport.messages import (
    AcknowledgeMessage,
    ErrorMessage,
    HelloMessage,
    MessageType,
)
from repro.uabin.enums import (
    ApplicationType,
    AttributeId,
    SecurityTokenRequestType,
)
from repro.uabin.builtin import LocalizedText
from repro.uabin.nodeid import NodeId
from repro.uabin.registry import make_extension_object
from repro.uabin.statuscodes import lookup_status
from repro.uabin.structs import RequestHeader
from repro.uabin.types_attribute import ReadRequest, ReadValueId
from repro.uabin.types_channel import (
    CloseSecureChannelRequest,
    OpenSecureChannelRequest,
)
from repro.uabin.types_common import ApplicationDescription, SignatureData
from repro.uabin.types_discovery import FindServersRequest, GetEndpointsRequest
from repro.uabin.types_method import CallMethodRequest, CallRequest, ServiceFault
from repro.uabin.types_session import (
    ActivateSessionRequest,
    AnonymousIdentityToken,
    CloseSessionRequest,
    CreateSessionRequest,
    UserNameIdentityToken,
)
from repro.uabin.types_view import BrowseDescription, BrowseRequest
from repro.x509.certificate import Certificate


@dataclass(frozen=True)
class ClientIdentity:
    """The client application's identity (certificate + key)."""

    application_uri: str
    application_name: str
    certificate: Certificate | None = None
    private_key: object = None

    def description(self) -> ApplicationDescription:
        return ApplicationDescription(
            application_uri=self.application_uri,
            application_name=LocalizedText(self.application_name),
            application_type=ApplicationType.CLIENT,
        )


class UaClient:
    """Synchronous OPC UA client over a duplex byte stream."""

    def __init__(
        self,
        stream,
        identity: ClientIdentity,
        rng: random.Random,
        endpoint_url: str = "opc.tcp://unknown:4840/",
    ):
        self._stream = stream
        self._identity = identity
        self._rng = rng
        self._endpoint_url = endpoint_url
        self._frames = FrameReader()
        self._channel: ClientSecureChannel | None = None
        self._security: ChannelSecurity = ChannelSecurity.none()
        self._client_nonce: bytes = b""
        self._request_id = 0
        self._request_handle = 0
        self._auth_token = NodeId()
        self._server_nonce: bytes = b""
        self._server_certificate_der: bytes | None = None
        self.connected = False

    @property
    def identity(self) -> ClientIdentity:
        """The client identity (for building :class:`ChannelSecurity`)."""
        return self._identity

    # --- low-level exchange ----------------------------------------------------

    def _next_request_id(self) -> int:
        self._request_id += 1
        return self._request_id

    def _request_header(self, timeout_ms: int = 10_000) -> RequestHeader:
        self._request_handle += 1
        return RequestHeader(
            authentication_token=self._auth_token,
            request_handle=self._request_handle,
            timeout_hint=timeout_ms,
        )

    def _read_frame(self):
        # Keep reading until one complete frame is buffered: a live
        # peer may deliver a response across several TCP segments,
        # and a read returning b"" means the connection is gone.
        while True:
            frame = self._frames.next_frame()
            if frame is not None:
                return frame
            data = self._stream.read()
            if not data:
                if self._frames.buffered:
                    raise ConnectionClosedError(
                        "connection closed mid-frame"
                    )
                raise ConnectionClosedError("no response from server")
            self._frames.feed(data)

    def _expect(self, expected_type: MessageType):
        header, body = self._read_frame()
        if header.message_type == MessageType.ERROR:
            error = ErrorMessage.decode_body(body)
            raise TransportRejectedError(
                lookup_status(error.error_code), error.reason
            )
        if header.message_type != expected_type:
            raise UaClientError(
                f"expected {expected_type.value}, got {header.message_type.value}"
            )
        return header, body

    # --- connection establishment -----------------------------------------------

    def hello(self) -> AcknowledgeMessage:
        """Perform the HEL/ACK transport handshake."""
        hello = HelloMessage(endpoint_url=self._endpoint_url)
        self._stream.write(
            encode_frame(MessageType.HELLO, "F", hello.encode_body())
        )
        _, body = self._expect(MessageType.ACKNOWLEDGE)
        self.connected = True
        return AcknowledgeMessage.decode_body(body)

    def open_secure_channel(self, security: ChannelSecurity | None = None):
        """Open a secure channel with the negotiated ``security``.

        ``security`` is the :class:`ChannelSecurity` to complete the
        channel at — built per advertised endpoint via
        :meth:`ChannelSecurity.for_endpoint` — or ``None`` for the
        plain None-policy discovery channel.
        """
        if not self.connected:
            raise UaClientError("hello() must run before open_secure_channel()")
        if security is None:
            security = ChannelSecurity.none()
        if security.is_secure:
            self._server_certificate_der = security.peer_certificate_der
        channel = security.client_channel(self._rng)
        request = OpenSecureChannelRequest(
            request_header=self._request_header(),
            request_type=SecurityTokenRequestType.ISSUE,
            security_mode=security.mode,
        )
        self._stream.write(channel.build_open_request(request))
        _, body = self._expect(MessageType.OPEN_CHANNEL)
        response = channel.handle_open_response(body)
        self._channel = channel
        self._security = security
        return response

    # --- service invocation -------------------------------------------------------

    def _invoke(self, request):
        if self._channel is None:
            raise UaClientError("no secure channel")
        request_id = self._next_request_id()
        self._stream.write(self._channel.encode_message(request, request_id))
        _, body = self._expect(MessageType.MESSAGE)
        response, response_id = self._channel.decode_message(body)
        if response_id != request_id:
            raise UaClientError(
                f"response id {response_id} does not match request {request_id}"
            )
        if isinstance(response, ServiceFault):
            raise ServiceFaultError(response.response_header.service_result)
        return response

    # --- services ------------------------------------------------------------------

    def get_endpoints(self):
        request = GetEndpointsRequest(
            request_header=self._request_header(),
            endpoint_url=self._endpoint_url,
        )
        return self._invoke(request).endpoints or []

    def find_servers(self):
        """FindServers: application descriptions known to the peer.

        The first entry is the responding application's own
        description (the scanner uses it for manufacturer attribution
        and discovery-server detection).
        """
        request = FindServersRequest(
            request_header=self._request_header(),
            endpoint_url=self._endpoint_url,
        )
        return self._invoke(request).servers or []

    def create_session(self, session_name: str = "repro-session"):
        client_nonce = self._rng.getrandbits(256).to_bytes(32, "big")
        self._client_nonce = client_nonce
        request = CreateSessionRequest(
            request_header=self._request_header(),
            client_description=self._identity.description(),
            endpoint_url=self._endpoint_url,
            session_name=session_name,
            client_nonce=client_nonce,
            client_certificate=(
                self._identity.certificate.raw_der
                if self._identity.certificate
                else None
            ),
        )
        response = self._invoke(request)
        if self._security.is_secure and self._identity.certificate is not None:
            # The server proves possession of its certificate's key by
            # signing our certificate + nonce (OPC 10000-4 §5.6.2).
            signed = self._identity.certificate.raw_der + client_nonce
            if not self._security.verify_peer_proof(
                signed, response.server_signature
            ):
                raise UaClientError("server signature proof failed")
        self._auth_token = response.authentication_token
        self._server_nonce = response.server_nonce or b""
        if response.server_certificate:
            self._server_certificate_der = response.server_certificate
        return response

    def activate_session(self, identity_token=None):
        """Activate with an identity token (default: anonymous)."""
        token = identity_token or AnonymousIdentityToken(policy_id="anonymous")
        client_signature = SignatureData()
        if self._security.is_secure:
            signed = (self._server_certificate_der or b"") + self._server_nonce
            client_signature = self._security.sign_proof(signed, self._rng)
        request = ActivateSessionRequest(
            request_header=self._request_header(),
            client_signature=client_signature,
            user_identity_token=make_extension_object(token),
        )
        response = self._invoke(request)
        self._server_nonce = response.server_nonce or self._server_nonce
        return response

    def activate_session_username(self, user_name: str, password: str):
        token = UserNameIdentityToken(
            policy_id="username",
            user_name=user_name,
            password=password.encode("utf-8"),
        )
        return self.activate_session(token)

    def close_session(self):
        request = CloseSessionRequest(request_header=self._request_header())
        response = self._invoke(request)
        self._auth_token = NodeId()
        return response

    def browse(self, node_ids, max_references: int = 0):
        request = BrowseRequest(
            request_header=self._request_header(),
            requested_max_references_per_node=max_references,
            nodes_to_browse=[
                BrowseDescription(node_id=node_id) for node_id in node_ids
            ],
        )
        return self._invoke(request).results or []

    def read_attributes(self, pairs):
        """Read (node_id, attribute_id) pairs; returns DataValues."""
        request = ReadRequest(
            request_header=self._request_header(),
            nodes_to_read=[
                ReadValueId(node_id=node_id, attribute_id=int(attribute))
                for node_id, attribute in pairs
            ],
        )
        return self._invoke(request).results or []

    def read_values(self, node_ids):
        return self.read_attributes(
            [(node_id, AttributeId.VALUE) for node_id in node_ids]
        )

    def translate_browse_path(self, starting_node: NodeId, *browse_names):
        """Resolve a browse path of (namespace, name) pairs to a NodeId.

        Returns the target NodeId, or None when the path cannot be
        resolved.
        """
        from repro.uabin.builtin import QualifiedName
        from repro.uabin.types_query import (
            BrowsePath,
            RelativePath,
            RelativePathElement,
            TranslateBrowsePathsRequest,
        )

        elements = [
            RelativePathElement(
                target_name=QualifiedName(namespace, name)
            )
            for namespace, name in browse_names
        ]
        request = TranslateBrowsePathsRequest(
            request_header=self._request_header(),
            browse_paths=[
                BrowsePath(
                    starting_node=starting_node,
                    relative_path=RelativePath(elements=elements),
                )
            ],
        )
        results = self._invoke(request).results or []
        if not results or not results[0].status_code.is_good:
            return None
        targets = results[0].targets or []
        return targets[0].target_id.node_id if targets else None

    def register_server(self, registered_server):
        """Announce a server to a discovery server (RegisterServer)."""
        from repro.uabin.types_query import RegisterServerRequest

        request = RegisterServerRequest(
            request_header=self._request_header(), server=registered_server
        )
        return self._invoke(request)

    def call_method(self, object_id: NodeId, method_id: NodeId, arguments=None):
        request = CallRequest(
            request_header=self._request_header(),
            methods_to_call=[
                CallMethodRequest(
                    object_id=object_id,
                    method_id=method_id,
                    input_arguments=arguments or [],
                )
            ],
        )
        results = self._invoke(request).results or []
        return results[0] if results else None

    def close(self):
        """Send CloseSecureChannel; the server does not respond."""
        if self._channel is None:
            return
        try:
            request = CloseSecureChannelRequest(
                request_header=self._request_header()
            )
            self._stream.write(
                self._channel.encode_message(
                    request, self._next_request_id(), MessageType.CLOSE_CHANNEL
                )
            )
        finally:
            self._channel = None
            self.connected = False
