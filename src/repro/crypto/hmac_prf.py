"""HMAC and the P_SHA pseudo-random function.

OPC UA derives the symmetric keys of a secure channel from the client
and server nonces with P_SHA1 or P_SHA256 (OPC 10000-6), the same
construction as TLS 1.x's P_hash.
"""

from __future__ import annotations

import hmac as _hmac

from repro.crypto.hashes import get_hash


def hmac_digest(hash_name: str, key: bytes, data: bytes) -> bytes:
    """HMAC via the standard library, keyed by registry name."""
    return _hmac.new(key, data, get_hash(hash_name).name).digest()


def p_hash(hash_name: str, secret: bytes, seed: bytes, length: int) -> bytes:
    """The TLS-style P_hash expansion used by OPC UA key derivation.

    A(0) = seed; A(i) = HMAC(secret, A(i-1));
    output = HMAC(secret, A(1) || seed) || HMAC(secret, A(2) || seed) ...
    """
    if length < 0:
        raise ValueError("negative output length")
    out = bytearray()
    a_value = seed
    while len(out) < length:
        a_value = hmac_digest(hash_name, secret, a_value)
        out.extend(hmac_digest(hash_name, secret, a_value + seed))
    return bytes(out[:length])
