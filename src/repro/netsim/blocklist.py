"""Scan opt-out blocklist.

The paper excluded 5.79 M addresses (0.13 % of the IPv4 space) on
operator request; the simulator provides the same mechanism so the
campaign honours exclusions and the ethics tests can verify it.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.util.ipaddr import CidrBlock


class Blocklist:
    """A set of excluded CIDR blocks and raw address ranges.

    Raw ranges cover the IPv6 case, where exclusions arrive as
    first/last address pairs rather than IPv4 CIDR notation.

    Membership is checked once per probed address, so the blocks and
    ranges are lazily compiled into a sorted, merged interval table
    and answered by binary search; mutation invalidates the table.
    """

    def __init__(self, blocks: list[CidrBlock] | None = None):
        self._blocks: list[CidrBlock] = list(blocks or [])
        self._ranges: list[tuple[int, int]] = []
        self._starts: list[int] | None = None
        self._ends: list[int] = []

    def add(self, block: CidrBlock | str) -> None:
        if isinstance(block, str):
            block = CidrBlock.parse(block)
        self._blocks.append(block)
        self._starts = None

    def add_raw_range(self, first: int, last: int) -> None:
        if last < first:
            raise ValueError("range end before start")
        self._ranges.append((first, last))
        self._starts = None

    def _compile(self) -> None:
        intervals = sorted(
            self._ranges
            + [(block.first, block.last) for block in self._blocks]
        )
        merged: list[tuple[int, int]] = []
        for first, last in intervals:
            if merged and first <= merged[-1][1] + 1:
                if last > merged[-1][1]:
                    merged[-1] = (merged[-1][0], last)
            else:
                merged.append((first, last))
        self._starts = [first for first, _ in merged]
        self._ends = [last for _, last in merged]

    def __contains__(self, address: int) -> bool:
        if self._starts is None:
            self._compile()
        index = bisect_right(self._starts, address) - 1
        return index >= 0 and address <= self._ends[index]

    def __len__(self) -> int:
        return len(self._blocks) + len(self._ranges)

    @property
    def excluded_address_count(self) -> int:
        return sum(block.size for block in self._blocks) + sum(
            last - first + 1 for first, last in self._ranges
        )
