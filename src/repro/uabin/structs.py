"""Declarative codec for OPC UA service structures.

Every service message derives from :class:`UaStruct` and declares a
``_fields_`` table mapping attribute names to type specs:

* a string — one of the built-in codec names of
  :mod:`repro.uabin.builtin`, or the specials ``"variant"``,
  ``"datavalue"``, ``"extensionobject"``;
* a :class:`UaStruct` subclass — nested structure;
* an :class:`enum.IntEnum`/:class:`enum.IntFlag` subclass — encoded as
  Int32 (the OPC UA enum wire type);
* ``("array", spec)`` — length-prefixed array of any of the above.

The table *is* the wire format, which keeps each message definition
next to its fields and makes encode/decode impossible to drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime

from repro.uabin import builtin
from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.variant import DataValue, Variant
from repro.util.binary import BinaryReader, BinaryWriter, NotEnoughData


class DecodingError(Exception):
    """Raised when a message cannot be decoded."""


@dataclass(frozen=True)
class ExtensionObject:
    """A value wrapped with its binary-encoding NodeId.

    ``encoding`` 0 means no body, 1 a binary ByteString body, 2 an XML
    body (never produced here but tolerated on decode).
    """

    type_id: NodeId = field(default_factory=NodeId)
    body: bytes | None = None
    encoding: int = 0

    def encode(self, writer: BinaryWriter) -> None:
        self.type_id.encode(writer)
        if self.body is None:
            writer.write_uint8(0)
        else:
            writer.write_uint8(self.encoding or 1)
            builtin.write_bytestring(writer, self.body)

    @classmethod
    def decode(cls, reader: BinaryReader) -> "ExtensionObject":
        type_id = NodeId.decode(reader)
        encoding = reader.read_uint8()
        if encoding == 0:
            return cls(type_id, None, 0)
        if encoding in (1, 2):
            return cls(type_id, builtin.read_bytestring(reader), encoding)
        raise DecodingError(f"invalid ExtensionObject encoding: {encoding}")

    @classmethod
    def null(cls) -> "ExtensionObject":
        return cls(NodeId(0, 0), None, 0)


def _encode_field(writer: BinaryWriter, spec, value) -> None:
    if isinstance(spec, tuple) and spec[0] == "array":
        if value is None:
            writer.write_int32(-1)
            return
        writer.write_int32(len(value))
        for item in value:
            _encode_field(writer, spec[1], item)
        return
    if isinstance(spec, str):
        if spec == "variant":
            (value if value is not None else Variant()).encode(writer)
        elif spec == "datavalue":
            (value if value is not None else DataValue()).encode(writer)
        elif spec == "extensionobject":
            (value if value is not None else ExtensionObject.null()).encode(writer)
        else:
            builtin.write_value(writer, spec, value)
        return
    if isinstance(spec, type) and issubclass(spec, UaStruct):
        if value is None:
            value = spec()
        value.encode(writer)
        return
    if isinstance(spec, type) and issubclass(spec, enum.IntEnum | enum.IntFlag):
        writer.write_int32(int(value))
        return
    raise TypeError(f"unsupported field spec: {spec!r}")


def _decode_field(reader: BinaryReader, spec):
    if isinstance(spec, tuple) and spec[0] == "array":
        length = reader.read_int32()
        if length < 0:
            return None
        if length > reader.remaining:
            raise DecodingError(f"array length {length} exceeds message size")
        return [_decode_field(reader, spec[1]) for _ in range(length)]
    if isinstance(spec, str):
        if spec == "variant":
            return Variant.decode(reader)
        if spec == "datavalue":
            return DataValue.decode(reader)
        if spec == "extensionobject":
            return ExtensionObject.decode(reader)
        return builtin.read_value(reader, spec)
    if isinstance(spec, type) and issubclass(spec, UaStruct):
        return spec.decode(reader)
    if isinstance(spec, type) and issubclass(spec, enum.IntEnum | enum.IntFlag):
        return spec(reader.read_int32())
    raise TypeError(f"unsupported field spec: {spec!r}")


class UaStruct:
    """Base class for declaratively encoded structures."""

    _fields_: list[tuple[str, object]] = []

    def encode(self, writer: BinaryWriter) -> None:
        for name, spec in self._fields_:
            _encode_field(writer, spec, getattr(self, name))

    @classmethod
    def decode(cls, reader: BinaryReader):
        values = {}
        try:
            for name, spec in cls._fields_:
                values[name] = _decode_field(reader, spec)
        except (NotEnoughData, ValueError) as exc:
            raise DecodingError(
                f"cannot decode {cls.__name__}.{name}: {exc}"
            ) from exc
        return cls(**values)

    def to_bytes(self) -> bytes:
        writer = BinaryWriter()
        self.encode(writer)
        return writer.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes):
        reader = BinaryReader(data)
        value = cls.decode(reader)
        return value


def encode_struct(value: UaStruct) -> bytes:
    return value.to_bytes()


def decode_struct(cls: type[UaStruct], data: bytes) -> UaStruct:
    return cls.from_bytes(data)


# --- request/response headers (used by every service) -----------------------


@dataclass
class RequestHeader(UaStruct):
    """Common header carried by every service request."""

    authentication_token: NodeId = field(default_factory=NodeId)
    timestamp: datetime | None = None
    request_handle: int = 0
    return_diagnostics: int = 0
    audit_entry_id: str | None = None
    timeout_hint: int = 0
    additional_header: ExtensionObject = field(default_factory=ExtensionObject.null)

    _fields_ = [
        ("authentication_token", "nodeid"),
        ("timestamp", "datetime"),
        ("request_handle", "uint32"),
        ("return_diagnostics", "uint32"),
        ("audit_entry_id", "string"),
        ("timeout_hint", "uint32"),
        ("additional_header", "extensionobject"),
    ]


@dataclass
class ResponseHeader(UaStruct):
    """Common header carried by every service response."""

    timestamp: datetime | None = None
    request_handle: int = 0
    service_result: StatusCode = field(default_factory=lambda: StatusCodes.Good)
    service_diagnostics: builtin.DiagnosticInfo = field(
        default_factory=builtin.DiagnosticInfo
    )
    string_table: list[str] | None = None
    additional_header: ExtensionObject = field(default_factory=ExtensionObject.null)

    _fields_ = [
        ("timestamp", "datetime"),
        ("request_handle", "uint32"),
        ("service_result", "statuscode"),
        ("service_diagnostics", "diagnosticinfo"),
        ("string_table", ("array", "string")),
        ("additional_header", "extensionobject"),
    ]
