"""Session authentication: the four OPC UA user token types.

Which token types an endpoint advertises — and whether anonymous
sessions are actually accepted — is the subject of the paper's §5.4
and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.access import Role, UserContext
from repro.uabin.enums import UserTokenType
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.types_session import (
    AnonymousIdentityToken,
    IssuedIdentityToken,
    UserNameIdentityToken,
    X509IdentityToken,
)
from repro.x509.certificate import CertificateError, parse_certificate
from repro.x509.fingerprint import sha1_thumbprint


class AuthenticationError(Exception):
    """Raised when session activation must be rejected."""

    def __init__(self, status: StatusCode, message: str = ""):
        super().__init__(message or status.name)
        self.status = status


@dataclass
class UserDirectory:
    """Credential store backing username/certificate/token auth."""

    passwords: dict[str, str] = field(default_factory=dict)
    roles: dict[str, Role] = field(default_factory=dict)
    trusted_certificate_thumbprints: set[bytes] = field(default_factory=set)
    valid_issued_tokens: set[bytes] = field(default_factory=set)

    def add_user(self, name: str, password: str, role: Role = Role.OPERATOR) -> None:
        self.passwords[name] = password
        self.roles[name] = role

    def trust_certificate(self, cert_der: bytes) -> None:
        self.trusted_certificate_thumbprints.add(sha1_thumbprint(cert_der))

    def add_issued_token(self, token: bytes) -> None:
        self.valid_issued_tokens.add(token)


@dataclass
class Authenticator:
    """Validates identity tokens against the advertised policies."""

    allowed_token_types: set[UserTokenType] = field(
        default_factory=lambda: {UserTokenType.ANONYMOUS}
    )
    directory: UserDirectory = field(default_factory=UserDirectory)

    def authenticate(self, token) -> UserContext:
        """Map a decoded identity token to a user context or raise."""
        if token is None or isinstance(token, AnonymousIdentityToken):
            return self._authenticate_anonymous()
        if isinstance(token, UserNameIdentityToken):
            return self._authenticate_username(token)
        if isinstance(token, X509IdentityToken):
            return self._authenticate_certificate(token)
        if isinstance(token, IssuedIdentityToken):
            return self._authenticate_issued(token)
        raise AuthenticationError(
            StatusCodes.BadIdentityTokenInvalid,
            f"unsupported token type: {type(token).__name__}",
        )

    def _authenticate_anonymous(self) -> UserContext:
        if UserTokenType.ANONYMOUS not in self.allowed_token_types:
            raise AuthenticationError(
                StatusCodes.BadIdentityTokenRejected, "anonymous access disabled"
            )
        return UserContext.anonymous()

    def _authenticate_username(self, token: UserNameIdentityToken) -> UserContext:
        if UserTokenType.USERNAME not in self.allowed_token_types:
            raise AuthenticationError(
                StatusCodes.BadIdentityTokenRejected, "username auth disabled"
            )
        if token.user_name is None or token.password is None:
            raise AuthenticationError(StatusCodes.BadIdentityTokenInvalid)
        expected = self.directory.passwords.get(token.user_name)
        if expected is None or expected.encode("utf-8") != token.password:
            raise AuthenticationError(
                StatusCodes.BadUserAccessDenied, "bad credentials"
            )
        role = self.directory.roles.get(token.user_name, Role.OPERATOR)
        return UserContext(role, token.user_name)

    def _authenticate_certificate(self, token: X509IdentityToken) -> UserContext:
        if UserTokenType.CERTIFICATE not in self.allowed_token_types:
            raise AuthenticationError(
                StatusCodes.BadIdentityTokenRejected, "certificate auth disabled"
            )
        if not token.certificate_data:
            raise AuthenticationError(StatusCodes.BadIdentityTokenInvalid)
        try:
            parse_certificate(token.certificate_data)
        except CertificateError as exc:
            raise AuthenticationError(
                StatusCodes.BadIdentityTokenInvalid, str(exc)
            ) from exc
        thumbprint = sha1_thumbprint(token.certificate_data)
        if thumbprint not in self.directory.trusted_certificate_thumbprints:
            raise AuthenticationError(
                StatusCodes.BadUserAccessDenied, "untrusted user certificate"
            )
        return UserContext(Role.OPERATOR, "certificate-user")

    def _authenticate_issued(self, token: IssuedIdentityToken) -> UserContext:
        if UserTokenType.ISSUED_TOKEN not in self.allowed_token_types:
            raise AuthenticationError(
                StatusCodes.BadIdentityTokenRejected, "issued-token auth disabled"
            )
        if not token.token_data:
            raise AuthenticationError(StatusCodes.BadIdentityTokenInvalid)
        if token.token_data not in self.directory.valid_issued_tokens:
            raise AuthenticationError(
                StatusCodes.BadUserAccessDenied, "unknown issued token"
            )
        return UserContext(Role.OPERATOR, "token-user")
