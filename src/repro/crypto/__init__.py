"""From-scratch cryptographic substrate.

Implements everything the OPC UA security policies of the paper's
Table 1 require: RSA with PKCS#1 v1.5 / OAEP / PSS, MD5/SHA-1/SHA-256
digests (via :mod:`hashlib`), HMAC-based P_SHA key derivation, and
AES-CBC for SignAndEncrypt channels.  The implementation favours
clarity over speed; the simulation's hot paths (scanning ~2000 hosts)
stay comfortably fast because messages are small.
"""

from repro.crypto.hashes import HashAlgorithm, get_hash, hash_bytes
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_rsa_key
from repro.crypto.pkcs1 import (
    CryptoError,
    oaep_decrypt,
    oaep_encrypt,
    pkcs1v15_decrypt,
    pkcs1v15_encrypt,
    pkcs1v15_sign,
    pkcs1v15_verify,
    pss_sign,
    pss_verify,
)
from repro.crypto.hmac_prf import hmac_digest, p_hash
from repro.crypto.aes import AesCbc

__all__ = [
    "AesCbc",
    "CryptoError",
    "HashAlgorithm",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_prime",
    "generate_rsa_key",
    "get_hash",
    "hash_bytes",
    "hmac_digest",
    "is_probable_prime",
    "oaep_decrypt",
    "oaep_encrypt",
    "p_hash",
    "pkcs1v15_decrypt",
    "pkcs1v15_encrypt",
    "pkcs1v15_sign",
    "pkcs1v15_verify",
    "pss_sign",
    "pss_verify",
]
