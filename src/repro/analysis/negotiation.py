"""Advertised vs. negotiated security (§5.1 extension).

Advertising a ``(policy, mode)`` endpoint and actually *completing* a
secure channel at it are different observations: a server may list
Basic256Sha256 endpoints yet abort every handshake against an
untrusted client certificate.  This analysis compares the two using
the scanner's negotiated re-grab — for every server with a secure
endpoint, did the strongest advertised pair complete, and if not,
why not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scanner.ranking import most_secure_endpoint
from repro.scanner.records import HostRecord
from repro.secure.policies import policy_by_uri
from repro.uabin.enums import MessageSecurityMode


@dataclass
class NegotiationStatistics:
    """Outcome counts of the negotiated secure re-grab."""

    total_servers: int = 0
    #: servers advertising only None endpoints (nothing to negotiate)
    none_only: int = 0
    #: servers where the re-grab completed a secure channel
    negotiated: int = 0
    #: servers where negotiation failed (error recorded)
    failed: int = 0
    #: servers whose re-grab was not recorded at all (schema-old data)
    unattempted: int = 0
    #: negotiated == strongest advertised (policy, mode) pair
    matched_best_advertised: int = 0
    #: completed channels per policy short label (D1/D2/S1/S2/S3)
    by_policy: dict[str, int] = field(default_factory=dict)
    #: completed channels per mode short label (S / S&E)
    by_mode: dict[str, int] = field(default_factory=dict)
    #: negotiation failures per recorded error
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def attempted(self) -> int:
        """Servers whose re-grab ran (completed or failed)."""
        return self.negotiated + self.failed


def analyze_negotiated_security(
    records: list[HostRecord],
) -> NegotiationStatistics:
    stats = NegotiationStatistics()
    for record in records:
        stats.total_servers += 1
        best = most_secure_endpoint(record.endpoints)
        if best is None:
            stats.none_only += 1
            continue
        session = record.session
        if session is None:
            stats.unattempted += 1
            continue
        if session.negotiation_error is not None:
            stats.failed += 1
            stats.errors[session.negotiation_error] = (
                stats.errors.get(session.negotiation_error, 0) + 1
            )
            continue
        if session.negotiated_policy_uri is None:
            stats.unattempted += 1
            continue
        stats.negotiated += 1
        try:
            policy = policy_by_uri(session.negotiated_policy_uri)
            policy_label = policy.short_label
        except KeyError:
            policy = None
            policy_label = session.negotiated_policy_uri
        mode = MessageSecurityMode(session.negotiated_mode)
        stats.by_policy[policy_label] = stats.by_policy.get(policy_label, 0) + 1
        stats.by_mode[mode.short_label] = stats.by_mode.get(mode.short_label, 0) + 1
        endpoint, best_policy = best
        if policy is best_policy and mode == endpoint.mode:
            stats.matched_best_advertised += 1
    return stats
