"""``repro experiment`` / ``repro list``: paper artifacts one by one."""

from __future__ import annotations

from repro.cli.options import add_seed, study_result
from repro.core.experiments import EXPERIMENTS, run_experiment


def register(commands) -> None:
    experiment = commands.add_parser(
        "experiment", help="regenerate one table/figure"
    )
    experiment.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    add_seed(experiment)
    experiment.set_defaults(handler=cmd_experiment)

    lister = commands.add_parser("list", help="list known experiments")
    lister.set_defaults(handler=cmd_list)


def cmd_experiment(args) -> int:
    result = study_result(args)
    report = run_experiment(args.experiment_id, result)
    print(report.render())
    return 0


def cmd_list(args) -> int:
    for experiment_id, function in EXPERIMENTS.items():
        summary = (function.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:<12} {summary}")
    return 0
