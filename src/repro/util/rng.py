"""Deterministic, namespaced random streams.

Every stochastic decision in the simulation (population layout, key
generation, scan ordering, latency) draws from a stream derived from a
single study seed plus a textual namespace.  Two properties matter:

* reproducibility — the same seed yields byte-identical populations and
  scan results, which the experiment benchmarks rely on;
* isolation — adding draws in one namespace never perturbs another, so
  the population stays stable when unrelated code changes.
"""

from __future__ import annotations

import hashlib
import random


def _derive_seed(seed: int, namespace: str) -> int:
    material = f"{seed}:{namespace}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:16], "big")


class DeterministicRng(random.Random):
    """A :class:`random.Random` keyed by ``(seed, namespace)``.

    Sub-streams are created with :meth:`substream`, giving a tree of
    independent generators rooted at the study seed.
    """

    def __init__(self, seed: int, namespace: str = "root"):
        self._base_seed = seed
        self._namespace = namespace
        super().__init__(_derive_seed(seed, namespace))

    @property
    def namespace(self) -> str:
        return self._namespace

    def substream(self, label: str) -> "DeterministicRng":
        """Return an independent generator for ``label`` under this one."""
        return DeterministicRng(self._base_seed, f"{self._namespace}/{label}")

    def token_bytes(self, count: int) -> bytes:
        """Deterministic replacement for :func:`secrets.token_bytes`."""
        return self.getrandbits(count * 8).to_bytes(count, "big") if count else b""

    def shuffled(self, items) -> list:
        """Return a shuffled copy, leaving the input untouched."""
        out = list(items)
        self.shuffle(out)
        return out
