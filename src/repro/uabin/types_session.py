"""Session service set: CreateSession / ActivateSession / CloseSession
plus the four user identity token structures.

The identity tokens are the subject of the paper's Table 2: which
combinations of anonymous / username / certificate / issued-token
authentication servers advertise, and whether anonymous sessions are
actually accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCode
from repro.uabin.structs import RequestHeader, ResponseHeader, UaStruct
from repro.uabin.types_common import (
    ApplicationDescription,
    EndpointDescription,
    SignatureData,
    SignedSoftwareCertificate,
)


@dataclass
class CreateSessionRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    client_description: ApplicationDescription = field(
        default_factory=ApplicationDescription
    )
    server_uri: str | None = None
    endpoint_url: str | None = None
    session_name: str | None = None
    client_nonce: bytes | None = None
    client_certificate: bytes | None = None
    requested_session_timeout: float = 3_600_000.0
    max_response_message_size: int = 0

    _fields_ = [
        ("request_header", RequestHeader),
        ("client_description", ApplicationDescription),
        ("server_uri", "string"),
        ("endpoint_url", "string"),
        ("session_name", "string"),
        ("client_nonce", "bytestring"),
        ("client_certificate", "bytestring"),
        ("requested_session_timeout", "double"),
        ("max_response_message_size", "uint32"),
    ]


@dataclass
class CreateSessionResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    session_id: NodeId = field(default_factory=NodeId)
    authentication_token: NodeId = field(default_factory=NodeId)
    revised_session_timeout: float = 0.0
    server_nonce: bytes | None = None
    server_certificate: bytes | None = None
    server_endpoints: list[EndpointDescription] | None = None
    server_software_certificates: list[SignedSoftwareCertificate] | None = None
    server_signature: SignatureData = field(default_factory=SignatureData)
    max_request_message_size: int = 0

    _fields_ = [
        ("response_header", ResponseHeader),
        ("session_id", "nodeid"),
        ("authentication_token", "nodeid"),
        ("revised_session_timeout", "double"),
        ("server_nonce", "bytestring"),
        ("server_certificate", "bytestring"),
        ("server_endpoints", ("array", EndpointDescription)),
        ("server_software_certificates", ("array", SignedSoftwareCertificate)),
        ("server_signature", SignatureData),
        ("max_request_message_size", "uint32"),
    ]


@dataclass
class ActivateSessionRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    client_signature: SignatureData = field(default_factory=SignatureData)
    client_software_certificates: list[SignedSoftwareCertificate] | None = None
    locale_ids: list[str] | None = None
    user_identity_token: object = None  # ExtensionObject
    user_token_signature: SignatureData = field(default_factory=SignatureData)

    _fields_ = [
        ("request_header", RequestHeader),
        ("client_signature", SignatureData),
        ("client_software_certificates", ("array", SignedSoftwareCertificate)),
        ("locale_ids", ("array", "string")),
        ("user_identity_token", "extensionobject"),
        ("user_token_signature", SignatureData),
    ]


@dataclass
class ActivateSessionResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    server_nonce: bytes | None = None
    results: list[StatusCode] | None = None
    diagnostic_infos: list | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("server_nonce", "bytestring"),
        ("results", ("array", "statuscode")),
        ("diagnostic_infos", ("array", "diagnosticinfo")),
    ]


@dataclass
class CloseSessionRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    delete_subscriptions: bool = True

    _fields_ = [
        ("request_header", RequestHeader),
        ("delete_subscriptions", "boolean"),
    ]


@dataclass
class CloseSessionResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)

    _fields_ = [("response_header", ResponseHeader)]


# --- user identity tokens ---------------------------------------------------


@dataclass
class AnonymousIdentityToken(UaStruct):
    policy_id: str | None = None

    _fields_ = [("policy_id", "string")]


@dataclass
class UserNameIdentityToken(UaStruct):
    policy_id: str | None = None
    user_name: str | None = None
    password: bytes | None = None
    encryption_algorithm: str | None = None

    _fields_ = [
        ("policy_id", "string"),
        ("user_name", "string"),
        ("password", "bytestring"),
        ("encryption_algorithm", "string"),
    ]


@dataclass
class X509IdentityToken(UaStruct):
    policy_id: str | None = None
    certificate_data: bytes | None = None

    _fields_ = [
        ("policy_id", "string"),
        ("certificate_data", "bytestring"),
    ]


@dataclass
class IssuedIdentityToken(UaStruct):
    policy_id: str | None = None
    token_data: bytes | None = None
    encryption_algorithm: str | None = None

    _fields_ = [
        ("policy_id", "string"),
        ("token_data", "bytestring"),
        ("encryption_algorithm", "string"),
    ]
