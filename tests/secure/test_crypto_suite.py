"""Round-trip coverage of the crypto suite across ALL registered policies.

Every secure policy must sign/verify and encrypt/decrypt — both
asymmetrically (OPN protection, nonce proofs) and symmetrically (MSG
protection under both secure modes) — and the None policy must refuse
each operation loudly rather than silently no-op.
"""

from __future__ import annotations

import pytest

from repro.secure.crypto_suite import (
    SuiteError,
    asym_decrypt,
    asym_encrypt,
    asym_plaintext_block_size,
    asym_sign,
    asym_signature_length,
    asym_verify,
    sym_decrypt,
    sym_encrypt,
    sym_sign,
    sym_verify,
)
from repro.secure.keysets import derive_channel_keys
from repro.secure.policies import ALL_POLICIES, POLICY_NONE, SECURE_POLICIES
from repro.uabin.enums import MessageSecurityMode
from repro.util.rng import DeterministicRng

SECURE = [p for p in ALL_POLICIES if p is not POLICY_NONE]
SECURE_IDS = [p.short_label for p in SECURE]
SECURE_MODES = [MessageSecurityMode.SIGN, MessageSecurityMode.SIGN_AND_ENCRYPT]


@pytest.fixture(scope="module")
def suite_rng():
    return DeterministicRng(1717, "crypto-suite-tests")


def _nonces(policy, rng):
    sub = rng.substream(f"nonce-{policy.short_label}")
    return (
        sub.token_bytes(policy.nonce_length),
        sub.token_bytes(policy.nonce_length),
    )


class TestAsymmetric:
    @pytest.mark.parametrize("policy", SECURE, ids=SECURE_IDS)
    def test_sign_verify_round_trip(self, policy, rsa_1024, suite_rng):
        data = b"certificate-bytes" + b"nonce-bytes"
        signature = asym_sign(
            policy, rsa_1024.private, data, suite_rng.substream("s")
        )
        assert len(signature) == asym_signature_length(policy, rsa_1024.private)
        assert asym_verify(policy, rsa_1024.public, data, signature)

    @pytest.mark.parametrize("policy", SECURE, ids=SECURE_IDS)
    def test_tampered_data_fails_verification(
        self, policy, rsa_1024, suite_rng
    ):
        data = b"authentic"
        signature = asym_sign(
            policy, rsa_1024.private, data, suite_rng.substream("t")
        )
        assert not asym_verify(policy, rsa_1024.public, b"forged", signature)

    @pytest.mark.parametrize("policy", SECURE, ids=SECURE_IDS)
    def test_encrypt_decrypt_round_trip(self, policy, rsa_1024, suite_rng):
        block = asym_plaintext_block_size(policy, rsa_1024.public)
        # Span several RSA blocks to exercise the block-wise path.
        plaintext = bytes(range(256)) * ((3 * block) // 256 + 1)
        ciphertext = asym_encrypt(
            policy, rsa_1024.public, plaintext, suite_rng.substream("e")
        )
        assert ciphertext != plaintext
        assert asym_decrypt(policy, rsa_1024.private, ciphertext) == plaintext

    @pytest.mark.parametrize("policy", SECURE, ids=SECURE_IDS)
    def test_truncated_ciphertext_rejected(self, policy, rsa_1024, suite_rng):
        ciphertext = asym_encrypt(
            policy, rsa_1024.public, b"payload", suite_rng.substream("c")
        )
        with pytest.raises(SuiteError):
            asym_decrypt(policy, rsa_1024.private, ciphertext[:-1])

    def test_none_policy_refuses_every_operation(self, rsa_1024, suite_rng):
        with pytest.raises(SuiteError):
            asym_sign(POLICY_NONE, rsa_1024.private, b"x", suite_rng)
        with pytest.raises(SuiteError):
            asym_verify(POLICY_NONE, rsa_1024.public, b"x", b"sig")
        with pytest.raises(SuiteError):
            asym_encrypt(POLICY_NONE, rsa_1024.public, b"x", suite_rng)
        with pytest.raises(SuiteError):
            asym_decrypt(POLICY_NONE, rsa_1024.private, b"x")


class TestSymmetric:
    @pytest.mark.parametrize("policy", SECURE, ids=SECURE_IDS)
    @pytest.mark.parametrize("mode", SECURE_MODES, ids=lambda m: m.name)
    def test_round_trip_per_direction(self, policy, mode, suite_rng):
        """Both derived keysets round-trip under both secure modes
        (Sign always signs; SignAndEncrypt additionally encrypts)."""
        client_nonce, server_nonce = _nonces(policy, suite_rng)
        client_keys, server_keys = derive_channel_keys(
            policy, client_nonce, server_nonce
        )
        payload = b"MSG chunk payload " * 7
        for keys in (client_keys, server_keys):
            signature = sym_sign(policy, keys, payload)
            assert len(signature) == policy.signature_length
            assert sym_verify(policy, keys, payload, signature)
            assert not sym_verify(policy, keys, payload + b"!", signature)
            if mode == MessageSecurityMode.SIGN_AND_ENCRYPT:
                padded = payload + bytes(
                    -len(payload) % policy.sym_block_size
                )
                ciphertext = sym_encrypt(policy, keys, padded)
                assert ciphertext != padded
                assert sym_decrypt(policy, keys, ciphertext) == padded

    @pytest.mark.parametrize("policy", SECURE, ids=SECURE_IDS)
    def test_directions_do_not_cross_verify(self, policy, suite_rng):
        client_nonce, server_nonce = _nonces(policy, suite_rng)
        client_keys, server_keys = derive_channel_keys(
            policy, client_nonce, server_nonce
        )
        payload = b"direction-bound"
        signature = sym_sign(policy, client_keys, payload)
        assert not sym_verify(policy, server_keys, payload, signature)

    def test_none_policy_refuses_symmetric_operations(self):
        with pytest.raises(SuiteError):
            sym_sign(POLICY_NONE, None, b"x")
        with pytest.raises(SuiteError):
            sym_encrypt(POLICY_NONE, None, b"x")
        with pytest.raises(SuiteError):
            sym_decrypt(POLICY_NONE, None, b"x")


class TestKeysets:
    @pytest.mark.parametrize("policy", SECURE, ids=SECURE_IDS)
    def test_every_registered_policy_derives(self, policy, suite_rng):
        client_nonce, server_nonce = _nonces(policy, suite_rng)
        client_keys, server_keys = derive_channel_keys(
            policy, client_nonce, server_nonce
        )
        assert client_keys != server_keys
        for keys in (client_keys, server_keys):
            assert len(keys.signing_key) == policy.sym_signature_key_len
            assert len(keys.encryption_key) == policy.sym_encryption_key_len
            assert len(keys.initialization_vector) == policy.sym_block_size

    def test_secure_constant_is_all_minus_deprecated(self):
        assert set(SECURE_POLICIES) == {
            p for p in SECURE if not p.is_deprecated
        }
