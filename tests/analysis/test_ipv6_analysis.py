"""Unit tests for the IPv6 comparison analysis."""

from repro.analysis.ipv6 import Ipv6Comparison, compare_address_families
from tests.analysis.test_analysis_units import make_record


class TestIpv6Comparison:
    def test_not_more_secure_when_rates_match(self):
        comparison = Ipv6Comparison(
            ipv4_servers=1000,
            ipv4_deficient_fraction=0.92,
            ipv6_servers=200,
            ipv6_deficient_fraction=0.91,
            hitlist_size=250,
            hitlist_hits=200,
        )
        assert not comparison.configured_more_securely

    def test_more_secure_when_clearly_lower(self):
        comparison = Ipv6Comparison(
            ipv4_servers=1000,
            ipv4_deficient_fraction=0.92,
            ipv6_servers=200,
            ipv6_deficient_fraction=0.70,
            hitlist_size=250,
            hitlist_hits=200,
        )
        assert comparison.configured_more_securely

    def test_compare_uses_deficit_analysis(self):
        ipv4 = [make_record(ip=i) for i in range(4)]  # none-only = deficient
        ipv6 = [make_record(ip=100 + i) for i in range(2)]
        comparison = compare_address_families(ipv4, ipv6, hitlist_size=10)
        assert comparison.ipv4_servers == 4
        assert comparison.ipv6_servers == 2
        assert comparison.ipv4_deficient_fraction == 1.0
        assert comparison.ipv6_deficient_fraction == 1.0
        assert comparison.hitlist_size == 10
        assert not comparison.configured_more_securely
