"""Diff two stored studies: churn, policy deltas, deficit deltas.

The paper is a *longitudinal* measurement — its headline results come
from comparing OPC UA deployment security configurations across dated
sweeps (§5.5, Figure 2).  This module is that comparison as a library:
fold each study's snapshot stream into a compact
:class:`StudySummary` (streaming — million-record studies never fully
materialize), then :func:`diff_summaries` the two folds into a
canonical, digest-pinned :class:`StudyDiff`:

* deployments **appearing**, **disappearing**, or **changing**
  security configuration between the two studies' final sweeps;
* certificate **renewals** on stable endpoints, reusing the
  :class:`~repro.analysis.longitudinal.RenewalObservation` churn
  logic (hash upgrades/downgrades, coinciding software updates);
* per-**policy** and per-**deficit** deltas.

Everything here is a pure function of the snapshot bytes, so two
summaries folded on different executor backends — or different
machines — diff to byte-identical JSON, pinned by
:meth:`StudyDiff.digest`.

    >>> from repro.scanner.records import HostRecord, MeasurementSnapshot
    >>> def sweep(date, ips):
    ...     return MeasurementSnapshot(date=date, records=[
    ...         HostRecord(ip=ip, port=4840, asn=None, timestamp=date,
    ...                    tcp_open=True, is_opcua=True)
    ...         for ip in ips])
    >>> a = summarize_stream([sweep("2020-07-06", [1, 2])], label="a")
    >>> b = summarize_stream([sweep("2020-08-30", [2, 3])], label="b")
    >>> d = diff_summaries(a, b)
    >>> [s.endpoint for s in d.appeared], [s.endpoint for s in d.disappeared]
    (['0.0.0.3:4840'], ['0.0.0.1:4840'])
    >>> diff_summaries(a, a).is_empty()
    True
    >>> r = diff_summaries(b, a)
    >>> [s.endpoint for s in r.appeared] == [s.endpoint for s in d.disappeared]
    True
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.deficits import DEFICIT_CLASSES, analyze_deficits
from repro.analysis.longitudinal import RenewalObservation
from repro.analysis.policies import analyze_security_policies
from repro.scanner.records import HostRecord, MeasurementSnapshot
from repro.util.ipaddr import format_ipv4


@dataclass(frozen=True)
class HostState:
    """The security configuration of one deployment, compactly.

    Everything the diff compares — and nothing else, so a summary of a
    million-record study is a few dozen bytes per endpoint.  Fields
    mirror what the paper tracks across sweeps: announced policies and
    modes, the served certificate (thumbprint + signature hash), the
    applying deficit classes, and anonymous accessibility.
    """

    endpoint: str
    ip: int
    port: int
    policies: tuple[str, ...]
    modes: tuple[int, ...]
    certificate_thumbprint: str | None
    certificate_hash: str | None
    software_version: str | None
    deficits: tuple[str, ...]
    anonymous_accessible: bool

    @classmethod
    def from_record(
        cls, record: HostRecord, flags: Iterable[str]
    ) -> "HostState":
        certificate = record.certificate
        return cls(
            endpoint=f"{format_ipv4(record.ip)}:{record.port}",
            ip=record.ip,
            port=record.port,
            policies=tuple(sorted(record.security_policy_uris())),
            modes=tuple(sorted(e.security_mode for e in record.endpoints)),
            certificate_thumbprint=(
                certificate.thumbprint_hex if certificate else None
            ),
            certificate_hash=(
                certificate.signature_hash if certificate else None
            ),
            software_version=record.software_version,
            deficits=tuple(sorted(flags)),
            anonymous_accessible=record.anonymous_accessible(),
        )

    def changed_fields(self, other: "HostState") -> tuple[str, ...]:
        """Field names whose values differ, in canonical field order."""
        return tuple(
            name
            for name in _COMPARED_FIELDS
            if getattr(self, name) != getattr(other, name)
        )


#: HostState fields the diff compares (endpoint/ip/port identify the
#: deployment, so they are excluded by construction).
_COMPARED_FIELDS = (
    "policies",
    "modes",
    "certificate_thumbprint",
    "certificate_hash",
    "software_version",
    "deficits",
    "anonymous_accessible",
)


@dataclass(frozen=True)
class SweepStats:
    """Per-sweep aggregates, computed incrementally during the fold."""

    date: str
    total_reachable: int
    servers: int
    deficient: int
    policy_support: dict[str, int]
    deficit_counts: dict[str, int]


@dataclass
class StudySummary:
    """One study folded to its longitudinal essentials.

    Produced by :func:`summarize_stream` one snapshot at a time: the
    per-sweep aggregates accumulate, and ``final_hosts`` always holds
    the *latest* sweep's :class:`HostState` map — when the stream is
    exhausted it is, by construction, the final sweep's.  Peak memory
    is therefore bounded by one decoded snapshot plus the compact
    state map, never the whole study.
    """

    label: str = ""
    sweeps: list[SweepStats] = field(default_factory=list)
    final_hosts: dict[str, HostState] = field(default_factory=dict)
    records_total: int = 0

    @property
    def final_date(self) -> str:
        return self.sweeps[-1].date if self.sweeps else ""

    @property
    def final_stats(self) -> SweepStats | None:
        return self.sweeps[-1] if self.sweeps else None

    def fold(self, snapshot: MeasurementSnapshot) -> None:
        """Absorb one sweep; replaces the previous final-host map."""
        servers = snapshot.servers()
        deficits = analyze_deficits(servers)
        policies = analyze_security_policies(servers)
        self.sweeps.append(
            SweepStats(
                date=snapshot.date,
                total_reachable=len(snapshot.reachable()),
                servers=len(servers),
                deficient=deficits.deficient,
                policy_support=dict(policies.supported),
                deficit_counts={
                    name: getattr(deficits, name.replace("-", "_"))
                    for name in DEFICIT_CLASSES
                },
            )
        )
        self.final_hosts = {
            f"{record.ip}:{record.port}": HostState.from_record(record, flags)
            for record, flags in zip(servers, deficits.per_host_flags)
        }
        self.records_total += len(snapshot.records)


def summarize_stream(
    snapshots: Iterable[MeasurementSnapshot], *, label: str = ""
) -> StudySummary:
    """Fold a snapshot stream into a :class:`StudySummary`.

    Accepts any iterable — in particular the digest-validating
    streaming reader
    :meth:`repro.dataset.store.StudyStore.iter_validated` — and never
    holds more than one snapshot at a time.
    """
    summary = StudySummary(label=label)
    for snapshot in snapshots:
        summary.fold(snapshot)
    return summary


@dataclass(frozen=True)
class DeploymentChange:
    """One endpoint whose security configuration changed."""

    endpoint: str
    before: HostState
    after: HostState
    fields: tuple[str, ...]


@dataclass
class StudyDiff:
    """The canonical comparison of two studies' security configurations.

    ``appeared``/``disappeared``/``changed`` are sorted by
    ``(ip, port)``; the delta dicts map every label to ``b - a``
    (zeros included, so the JSON shape is independent of the data).
    :meth:`digest` pins the canonical JSON — the cross-backend
    equivalence check ``repro diff`` and the benchmarks assert.
    """

    label_a: str
    label_b: str
    date_a: str
    date_b: str
    servers_a: int
    servers_b: int
    appeared: list[HostState] = field(default_factory=list)
    disappeared: list[HostState] = field(default_factory=list)
    changed: list[DeploymentChange] = field(default_factory=list)
    renewals: list[RenewalObservation] = field(default_factory=list)
    policy_delta: dict[str, int] = field(default_factory=dict)
    deficit_delta: dict[str, int] = field(default_factory=dict)
    deficient_delta: int = 0

    def is_empty(self) -> bool:
        """True when the two studies are longitudinally identical."""
        return (
            not self.appeared
            and not self.disappeared
            and not self.changed
            and not any(self.policy_delta.values())
            and not any(self.deficit_delta.values())
            and self.deficient_delta == 0
        )

    def to_json_dict(self) -> dict:
        from repro.analysis.pipeline import jsonify

        return jsonify(self)

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — byte-identical for the
        same two studies on every executor backend."""
        from repro.core.golden import canonical_json

        material = canonical_json(self.to_json_dict())
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


def diff_summaries(a: StudySummary, b: StudySummary) -> StudyDiff:
    """Compare two folded studies; canonical and involutive.

    ``diff_summaries(a, b)`` is the exact inverse of
    ``diff_summaries(b, a)``: appeared/disappeared swap, every change
    swaps before/after, and every delta negates.  ``diff(a, a)``
    satisfies :meth:`StudyDiff.is_empty`.
    """
    stats_a, stats_b = a.final_stats, b.final_stats
    diff = StudyDiff(
        label_a=a.label,
        label_b=b.label,
        date_a=a.final_date,
        date_b=b.final_date,
        servers_a=stats_a.servers if stats_a else 0,
        servers_b=stats_b.servers if stats_b else 0,
    )
    keys_a, keys_b = set(a.final_hosts), set(b.final_hosts)

    def ordered(keys: set, hosts: dict) -> list[HostState]:
        states = [hosts[key] for key in keys]
        return sorted(states, key=lambda s: (s.ip, s.port))

    diff.appeared = ordered(keys_b - keys_a, b.final_hosts)
    diff.disappeared = ordered(keys_a - keys_b, a.final_hosts)
    for key in sorted(
        keys_a & keys_b, key=lambda k: (a.final_hosts[k].ip, a.final_hosts[k].port)
    ):
        before, after = a.final_hosts[key], b.final_hosts[key]
        fields_changed = before.changed_fields(after)
        if not fields_changed:
            continue
        diff.changed.append(
            DeploymentChange(
                endpoint=before.endpoint,
                before=before,
                after=after,
                fields=fields_changed,
            )
        )
        # The longitudinal churn rule (§5.5): a certificate change on
        # a stable endpoint is a renewal; record the hash transition
        # and whether a software update coincided.
        if (
            before.certificate_thumbprint is not None
            and after.certificate_thumbprint is not None
            and before.certificate_thumbprint != after.certificate_thumbprint
        ):
            diff.renewals.append(
                RenewalObservation(
                    ip=after.ip,
                    port=after.port,
                    sweep_date=b.final_date,
                    old_hash=before.certificate_hash,
                    new_hash=after.certificate_hash,
                    software_updated=(
                        before.software_version is not None
                        and after.software_version is not None
                        and before.software_version != after.software_version
                    ),
                )
            )

    def delta(field_name: str) -> dict[str, int]:
        counts_a = getattr(stats_a, field_name, None) or {}
        counts_b = getattr(stats_b, field_name, None) or {}
        return {
            label: counts_b.get(label, 0) - counts_a.get(label, 0)
            for label in sorted(set(counts_a) | set(counts_b))
        }

    diff.policy_delta = delta("policy_support")
    diff.deficit_delta = delta("deficit_counts")
    diff.deficient_delta = (stats_b.deficient if stats_b else 0) - (
        stats_a.deficient if stats_a else 0
    )
    return diff
