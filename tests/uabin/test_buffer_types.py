"""Round-trips over every buffer type the zero-copy reader accepts.

``BinaryReader`` (and with it every ``UaStruct.decode``) takes any
object exposing the buffer protocol — ``bytes``, ``bytearray``,
``memoryview`` — and must decode them all to identical values, because
the transport layer hands the frame reassembler's views straight to
the codec without copying.  ``read_bytes`` must still return real
``bytes`` (records hash them), while ``read_view`` is the explicit
zero-copy escape hatch.
"""

import string

import pytest
from hypothesis import given, strategies as st

from repro.transport.messages import HelloMessage
from repro.uabin.builtin import LocalizedText
from repro.uabin.enums import ApplicationType
from repro.uabin.types_common import ApplicationDescription
from repro.util.binary import BinaryReader, BinaryWriter, NotEnoughData

BUFFER_TYPES = (bytes, bytearray, memoryview)


def _buffer_variants(data: bytes):
    return [kind(data) for kind in BUFFER_TYPES]


class TestReaderBufferTypes:
    @given(st.binary(max_size=64), st.integers(0, 64))
    def test_read_bytes_identical_across_buffer_types(self, data, count):
        outputs = []
        for buffer in _buffer_variants(data):
            reader = BinaryReader(buffer)
            if count > len(data):
                with pytest.raises(NotEnoughData):
                    reader.read_bytes(count)
                return
            outputs.append(reader.read_bytes(count))
        assert outputs[0] == outputs[1] == outputs[2]
        assert all(type(out) is bytes for out in outputs)

    @given(st.binary(min_size=1, max_size=64))
    def test_read_view_is_zero_copy_but_equal(self, data):
        for buffer in _buffer_variants(data):
            reader = BinaryReader(buffer)
            view = reader.read_view(len(data))
            assert bytes(view) == data
            assert reader.remaining == 0

    def test_read_view_error_matches_read_bytes(self):
        for buffer in _buffer_variants(b"ab"):
            with pytest.raises(NotEnoughData) as view_err:
                BinaryReader(buffer).read_view(5)
            with pytest.raises(NotEnoughData) as bytes_err:
                BinaryReader(buffer).read_bytes(5)
            assert str(view_err.value) == str(bytes_err.value)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**16 - 1))
    def test_scalars_identical_across_buffer_types(self, u32, u16):
        writer = BinaryWriter()
        writer.write_uint32(u32)
        writer.write_uint16(u16)
        data = writer.to_bytes()
        for buffer in _buffer_variants(data):
            reader = BinaryReader(buffer)
            assert reader.read_uint32() == u32
            assert reader.read_uint16() == u16


class TestStructDecodeBufferTypes:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    def test_hello_roundtrip_from_any_buffer(self, receive, send, maximum):
        message = HelloMessage(
            protocol_version=0,
            receive_buffer_size=receive,
            send_buffer_size=send,
            max_message_size=maximum,
            max_chunk_count=1,
            endpoint_url="opc.tcp://example:4840",
        )
        encoded = message.encode_body()
        for buffer in _buffer_variants(encoded):
            assert HelloMessage.decode_body(buffer) == message

    @given(
        st.text(alphabet=string.printable, max_size=40),
        st.sampled_from(list(ApplicationType)),
    )
    def test_nested_struct_roundtrip_from_any_buffer(self, name, app_type):
        description = ApplicationDescription(
            application_uri="urn:test:buffers",
            product_uri=None,
            application_name=LocalizedText("en", name),
            application_type=app_type,
            discovery_urls=["opc.tcp://example"],
        )
        encoded = description.to_bytes()
        decoded = [
            ApplicationDescription.from_bytes(buffer)
            for buffer in _buffer_variants(encoded)
        ]
        assert decoded[0] == decoded[1] == decoded[2] == description
