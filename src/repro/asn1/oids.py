"""Object identifier registry for the certificate subset we handle.

The study's certificate analysis (paper §5.2) needs to recognize the
signature algorithm (MD5/SHA-1/SHA-256 with RSA) and the usual
distinguished-name attributes; everything else is carried opaquely.
"""

from __future__ import annotations

# Signature and key algorithms (PKCS#1, RFC 8017 / RFC 5280).
RSA_ENCRYPTION = "1.2.840.113549.1.1.1"
MD5_WITH_RSA = "1.2.840.113549.1.1.4"
SHA1_WITH_RSA = "1.2.840.113549.1.1.5"
SHA256_WITH_RSA = "1.2.840.113549.1.1.11"

# Distinguished-name attribute types (X.520).
COMMON_NAME = "2.5.4.3"
COUNTRY = "2.5.4.6"
LOCALITY = "2.5.4.7"
STATE = "2.5.4.8"
ORGANIZATION = "2.5.4.10"
ORG_UNIT = "2.5.4.11"

# X.509 v3 extensions.
SUBJECT_ALT_NAME = "2.5.29.17"
BASIC_CONSTRAINTS = "2.5.29.19"
KEY_USAGE = "2.5.29.15"
EXT_KEY_USAGE = "2.5.29.37"
SUBJECT_KEY_ID = "2.5.29.14"
AUTHORITY_KEY_ID = "2.5.29.35"

# Extended key usage purposes.
SERVER_AUTH = "1.3.6.1.5.5.7.3.1"
CLIENT_AUTH = "1.3.6.1.5.5.7.3.2"

OID_NAMES: dict[str, str] = {
    RSA_ENCRYPTION: "rsaEncryption",
    MD5_WITH_RSA: "md5WithRSAEncryption",
    SHA1_WITH_RSA: "sha1WithRSAEncryption",
    SHA256_WITH_RSA: "sha256WithRSAEncryption",
    COMMON_NAME: "commonName",
    COUNTRY: "countryName",
    LOCALITY: "localityName",
    STATE: "stateOrProvinceName",
    ORGANIZATION: "organizationName",
    ORG_UNIT: "organizationalUnitName",
    SUBJECT_ALT_NAME: "subjectAltName",
    BASIC_CONSTRAINTS: "basicConstraints",
    KEY_USAGE: "keyUsage",
    EXT_KEY_USAGE: "extendedKeyUsage",
    SUBJECT_KEY_ID: "subjectKeyIdentifier",
    AUTHORITY_KEY_ID: "authorityKeyIdentifier",
    SERVER_AUTH: "serverAuth",
    CLIENT_AUTH: "clientAuth",
}

OID_VALUES: dict[str, str] = {name: oid for oid, name in OID_NAMES.items()}

# Map signature OIDs to the hash function they embed; this is exactly
# the lookup the paper's Figure 4 relies on.
SIGNATURE_HASHES: dict[str, str] = {
    MD5_WITH_RSA: "md5",
    SHA1_WITH_RSA: "sha1",
    SHA256_WITH_RSA: "sha256",
}

HASH_SIGNATURE_OIDS: dict[str, str] = {h: oid for oid, h in SIGNATURE_HASHES.items()}


def oid_name(dotted: str) -> str:
    """Return the friendly name for an OID, or the dotted form itself."""
    return OID_NAMES.get(dotted, dotted)
