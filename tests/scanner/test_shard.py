"""Sharded campaigns: partition laws, merge determinism, checkpoints.

The contract under test is the tentpole guarantee: a study cut into N
shards — any N, any executor backend, shards run in any order — merges
into snapshots byte-identical to the unsharded golden run.  The merge
unit tests drive :func:`merge_sweep` with synthetic snapshots so the
failure modes (non-partitioning inputs, diverging referenced records,
mixed dates) are pinned independently of the simulator.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.golden import (
    canonical_json,
    study_digests,
    study_digest,
    tiny_spec,
    tiny_study_config,
)
from repro.core.study import Study, StudyResult
from repro.dataset.store import StudyStore
from repro.netsim.tcpscan import candidate_stream
from repro.scanner.records import HostRecord, MeasurementSnapshot
from repro.scanner.shard import (
    ShardMergeError,
    ShardSpec,
    build_merge_manifest,
    merge_snapshots,
    merge_study_shards,
    merge_sweep,
    run_sharded_study,
    run_study_shard,
)

SHARDS = 3
DIGEST_PATH = (
    Path(__file__).resolve().parents[1] / "golden" / "tiny_study.digest.json"
)


@pytest.fixture(scope="session")
def shard_parts():
    """The tiny study scanned as three independent serial shards."""
    config = tiny_study_config()
    spec = tiny_spec()
    return [
        run_study_shard(config, ShardSpec(index, SHARDS), spec=spec)
        for index in range(SHARDS)
    ]


class TestShardSpec:
    def test_select_is_index_mod(self):
        items = list(range(10))
        assert ShardSpec(0, 3).select(items) == [0, 3, 6, 9]
        assert ShardSpec(1, 3).select(items) == [1, 4, 7]
        assert ShardSpec(2, 3).select(items) == [2, 5, 8]
        assert ShardSpec(0, 1).select(items) == items

    @pytest.mark.parametrize(
        "index, count", [(0, 0), (-1, 2), (2, 2), (5, 3)]
    )
    def test_invalid_specs_rejected(self, index, count):
        with pytest.raises(ValueError):
            ShardSpec(index, count)

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 7, 11])
    def test_shards_partition_any_stream(self, count):
        """Every position lands in exactly one shard, order preserved —
        for any shard count, including counts exceeding the stream."""
        items = [f"c{i}" for i in range(23)]
        slices = [
            ShardSpec(index, count).select(items) for index in range(count)
        ]
        assert sum(len(s) for s in slices) == len(items)
        assert sorted(x for s in slices for x in s) == sorted(items)
        # Round-robin interleave reconstructs the original order.
        rebuilt = []
        for position in range(max(len(s) for s in slices)):
            for s in slices:
                if position < len(s):
                    rebuilt.append(s[position])
        assert rebuilt == items

    def test_partition_of_the_real_candidate_stream(self, serial_tiny_result):
        """The property holds on the actual sweep permutation, which is
        what makes the merged counters sum exactly."""
        network = serial_tiny_result.timeline.network_for_sweep(0)
        study = Study(serial_tiny_result.config)
        stream = candidate_stream(
            network,
            4840,
            study._rng.substream("partition-check"),
            extra_candidates=48,
        )
        assert stream  # the property must be tested against something
        for count in (2, 4):
            slices = [
                ShardSpec(index, count).select(stream)
                for index in range(count)
            ]
            assert sorted(x for s in slices for x in s) == sorted(stream)
            assert sum(len(s) for s in slices) == len(stream)


class TestShardedStudyMatchesGolden:
    """The acceptance bar: merged shards == committed golden digests."""

    def test_merged_shards_match_unsharded_run(
        self, shard_parts, serial_tiny_result
    ):
        merged = merge_snapshots(shard_parts)
        assert study_digests(
            StudyResult(
                config=serial_tiny_result.config,
                spec=serial_tiny_result.spec,
                snapshots=merged,
            )
        ) == study_digests(serial_tiny_result)

    def test_merged_shards_match_committed_digests(self, shard_parts):
        """Pinned against the committed file, not just the in-session
        serial run: sharding must reproduce the *historical* bytes."""
        committed = json.loads(DIGEST_PATH.read_text())
        merged = merge_snapshots(shard_parts)
        result = StudyResult(
            config=tiny_study_config(), spec=tiny_spec(), snapshots=merged
        )
        assert study_digests(result) == committed["per_sweep"]
        assert study_digest(result) == committed["digest"]

    def test_merge_is_shard_order_invariant(self, shard_parts):
        reference = merge_snapshots(shard_parts)
        reversed_merge = merge_snapshots(list(reversed(shard_parts)))
        rotated_merge = merge_snapshots(shard_parts[1:] + shard_parts[:1])
        for variant in (reversed_merge, rotated_merge):
            assert [
                canonical_json(s.to_json_dict()) for s in variant
            ] == [canonical_json(s.to_json_dict()) for s in reference]


def _record(ip, port=4840, via_reference=False, error=None):
    return HostRecord(
        ip=ip,
        port=port,
        asn=None,
        timestamp="2020-08-30T00:00:00+00:00",
        tcp_open=True,
        via_reference=via_reference,
        error=error,
    )


def _snapshot(records, probed=0, port_open=0, excluded=0, date="2020-08-30"):
    snapshot = MeasurementSnapshot(
        date=date, probed=probed, port_open=port_open, excluded=excluded
    )
    snapshot.records.extend(records)
    return snapshot


class TestMergeSweep:
    def test_counters_sum_and_records_sort(self):
        merged = merge_sweep(
            [
                _snapshot([_record(5), _record(1)], probed=4, port_open=2),
                _snapshot([_record(3)], probed=3, port_open=1, excluded=1),
            ]
        )
        assert (merged.probed, merged.port_open, merged.excluded) == (7, 3, 1)
        assert [r.ip for r in merged.records] == [1, 3, 5]

    def test_empty_input_rejected(self):
        with pytest.raises(ShardMergeError, match="nothing to merge"):
            merge_sweep([])

    def test_mixed_dates_rejected(self):
        with pytest.raises(ShardMergeError, match="disagree on sweep date"):
            merge_sweep(
                [
                    _snapshot([], date="2020-08-30"),
                    _snapshot([], date="2020-02-09"),
                ]
            )

    def test_duplicate_first_wave_key_rejected(self):
        """Two shards claiming the same first-wave endpoint means the
        inputs never partitioned one candidate stream — merging would
        silently double-count, so it must refuse."""
        with pytest.raises(ShardMergeError, match="do not partition"):
            merge_sweep(
                [_snapshot([_record(7)]), _snapshot([_record(7)])]
            )

    def test_referenced_duplicates_dedup_when_byte_identical(self):
        merged = merge_sweep(
            [
                _snapshot([_record(9, via_reference=True)]),
                _snapshot([_record(9, via_reference=True)]),
            ]
        )
        assert [r.ip for r in merged.records] == [9]
        assert merged.records[0].via_reference

    def test_diverging_referenced_records_rejected(self):
        with pytest.raises(ShardMergeError, match="different referenced"):
            merge_sweep(
                [
                    _snapshot([_record(9, via_reference=True)]),
                    _snapshot(
                        [_record(9, via_reference=True, error="timeout")]
                    ),
                ]
            )

    def test_first_wave_beats_referenced_across_shards(self):
        """Shard A reached 9 via a reference; shard B probed 9 in its
        own slice.  Globally, 9 is first-wave — exactly what an
        unsharded campaign would have recorded."""
        merged = merge_sweep(
            [
                _snapshot([_record(9, via_reference=True)]),
                _snapshot([_record(9), _record(2)]),
            ]
        )
        assert [(r.ip, r.via_reference) for r in merged.records] == [
            (2, False),
            (9, False),
        ]

    def test_sweep_count_mismatch_rejected(self):
        with pytest.raises(ShardMergeError, match="different sweep counts"):
            merge_snapshots([[_snapshot([])], [_snapshot([]), _snapshot([])]])


class TestCheckpointsAndManifest:
    def test_checkpoint_roundtrip(self, tmp_path, shard_parts):
        store = StudyStore(tmp_path)
        config, spec = tiny_study_config(), tiny_spec()
        store.save_shard(config, spec, 1, SHARDS, shard_parts[1])
        loaded = store.load_shard(config, spec, 1, SHARDS)
        assert [canonical_json(s.to_json_dict()) for s in loaded] == [
            canonical_json(s.to_json_dict()) for s in shard_parts[1]
        ]
        # The sibling shard has no checkpoint: None, not an error.
        assert store.load_shard(config, spec, 0, SHARDS) is None

    def test_merge_refuses_missing_checkpoints(self, tmp_path, shard_parts):
        store = StudyStore(tmp_path)
        config, spec = tiny_study_config(), tiny_spec()
        store.save_shard(config, spec, 0, SHARDS, shard_parts[0])
        with pytest.raises(ShardMergeError, match=r"shards \[1, 2\]"):
            merge_study_shards(store, config, SHARDS, spec=spec)

    def test_merge_publishes_entry_and_manifest(self, tmp_path, shard_parts):
        import hashlib

        store = StudyStore(tmp_path)
        config, spec = tiny_study_config(), tiny_spec()
        for index, snapshots in enumerate(shard_parts):
            store.save_shard(config, spec, index, SHARDS, snapshots)
        key = merge_study_shards(store, config, SHARDS, spec=spec)

        # The merged entry is an ordinary store entry: analyses load it
        # with no sharding awareness.
        stored = store.load(config, spec)
        committed = json.loads(DIGEST_PATH.read_text())
        result = StudyResult(config=config, spec=spec, snapshots=stored)
        assert study_digests(result) == committed["per_sweep"]

        manifest = store.read_merge_manifest(key)
        assert manifest["shard_count"] == SHARDS
        assert len(manifest["shards"]) == SHARDS
        assert manifest["merged_digest"] == committed["digest"]
        # The manifest seals itself: re-hashing its canonical JSON
        # (sans the seal) must reproduce the recorded digest.
        unsealed = {
            k: v for k, v in manifest.items() if k != "manifest_digest"
        }
        assert manifest["manifest_digest"] == hashlib.sha256(
            canonical_json(unsealed).encode("utf-8")
        ).hexdigest()

    def test_manifest_digest_covers_every_shard(self, shard_parts):
        merged = merge_snapshots(shard_parts)
        manifest = build_merge_manifest("k", shard_parts, merged)
        per_shard = [entry["digest"] for entry in manifest["shards"]]
        assert len(set(per_shard)) == SHARDS  # shards differ, all recorded
        tampered = build_merge_manifest(
            "k", list(reversed(shard_parts)), merged
        )
        assert tampered["manifest_digest"] != manifest["manifest_digest"]

    def test_resume_skips_valid_checkpoint(
        self, tmp_path, shard_parts, monkeypatch
    ):
        """A validating checkpoint short-circuits before any host is
        built — resume must be near-free for completed shards."""
        store = StudyStore(tmp_path)
        config, spec = tiny_study_config(), tiny_spec()
        store.save_shard(config, spec, 2, SHARDS, shard_parts[2])

        def explode(*args, **kwargs):
            raise AssertionError("resume rebuilt the environment")

        monkeypatch.setattr(Study, "build_environment", explode)
        loaded = run_study_shard(
            config, ShardSpec(2, SHARDS), spec=spec, store=store, resume=True
        )
        assert [canonical_json(s.to_json_dict()) for s in loaded] == [
            canonical_json(s.to_json_dict()) for s in shard_parts[2]
        ]

    def test_resume_rescans_corrupt_checkpoint(self, tmp_path, shard_parts):
        """A half-written checkpoint (the crash this PR recovers from)
        is rescanned, not fatal — and the rescan matches the bytes the
        intact checkpoint would have held."""
        store = StudyStore(tmp_path)
        config, spec = tiny_study_config(), tiny_spec()
        store.save_shard(config, spec, 0, SHARDS, shard_parts[0])
        from repro.dataset.store import study_key

        shard_dir = store.shard_dir(study_key(config, spec), 0, SHARDS)
        snapshot_file = next(shard_dir.glob("snapshots.jsonl*"))
        snapshot_file.write_bytes(b"\x00 not a snapshot stream")
        rescanned = run_study_shard(
            config, ShardSpec(0, SHARDS), spec=spec, store=store, resume=True
        )
        assert [canonical_json(s.to_json_dict()) for s in rescanned] == [
            canonical_json(s.to_json_dict()) for s in shard_parts[0]
        ]

    def test_run_sharded_study_end_to_end(self, tmp_path):
        """Driver loop: scan all shards, merge, publish, and a second
        --resume invocation returns the stored entry untouched."""
        store = StudyStore(tmp_path)
        config, spec = tiny_study_config(), tiny_spec()
        result = run_sharded_study(
            config, 2, spec=spec, store=store, resume=False
        )
        committed = json.loads(DIGEST_PATH.read_text())
        assert study_digests(result) == committed["per_sweep"]

        resumed = run_sharded_study(
            config, 2, spec=spec, store=store, resume=True
        )
        assert study_digests(resumed) == committed["per_sweep"]
