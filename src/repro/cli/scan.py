"""``repro scan``: live lab scans, capture recording, and replay.

The live lane sends real packets and therefore sits behind hard
ethics gates (explicit ``--live``, explicit target list, mandatory
contact); the replay lane re-runs a recorded corpus with no sockets
at all.  Both share the scanner-identity construction so a corpus
recorded here replays byte-identically anywhere.
"""

from __future__ import annotations

from repro.cli.options import add_store, resolve_store
from repro.scanner.executor import EXECUTOR_NAMES


def register(commands) -> None:
    scan = commands.add_parser(
        "scan",
        help=(
            "live scan of an explicit target list (authorized lab "
            "networks only; hard ethics gates, off by default), "
            "optionally recorded to — or replayed from — a capture "
            "corpus"
        ),
    )
    scan.add_argument(
        "--live",
        action="store_true",
        help=(
            "confirm that real packets should leave this machine; "
            "without it the command refuses to run"
        ),
    )
    scan.add_argument(
        "--targets",
        metavar="FILE",
        help=(
            "explicit target list, one IPv4[:port] per line "
            "(# comments allowed; hostnames rejected — no address "
            "generation or resolution of any kind); required unless "
            "--replay is given"
        ),
    )
    scan.add_argument(
        "--record",
        metavar="CORPUS",
        help=(
            "record every transport operation of this live scan into "
            "a replayable capture corpus at CORPUS (.gz → canonical "
            "gzip); the recording lane still runs behind the full "
            "ethics gate"
        ),
    )
    scan.add_argument(
        "--replay",
        metavar="CORPUS",
        help=(
            "replay a previously recorded corpus instead of scanning "
            "— no packets leave the machine, so neither --live nor "
            "--targets is needed; the scanner identity is rebuilt "
            "from the corpus metadata and every request is verified "
            "against the recording"
        ),
    )
    scan.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help=(
            "replay fan-out backend (replay records are identical on "
            "every backend; live scans always use async)"
        ),
    )
    scan.add_argument(
        "--profile",
        action="store_true",
        help=(
            "emit per-stage timing/allocation stats after the scan "
            "(cProfile top functions, per-stage task counters, and "
            "crypto-cache hit rates); records are unaffected"
        ),
    )
    scan.add_argument(
        "--contact",
        metavar="EMAIL",
        help=(
            "mandatory contact e-mail, embedded in the scanner "
            "certificate and application name so operators can reach "
            "you (paper Appendix A.1)"
        ),
    )
    scan.add_argument(
        "--contact-url",
        metavar="URL",
        default="https://scan-research.example.org",
        help="opt-out URL advertised in the scanner identity",
    )
    scan.add_argument(
        "--port", type=int, default=4840,
        help="default port for targets listed without one",
    )
    scan.add_argument(
        "--blocklist",
        metavar="FILE",
        help="opt-out CIDR blocklist, one block per line",
    )
    scan.add_argument(
        "--out",
        metavar="PATH",
        help="write the snapshot as JSONL (dataset schema)",
    )
    scan.add_argument(
        "--workers", type=int, default=8,
        help="in-flight connection bound (async executor semaphore)",
    )
    scan.add_argument(
        "--rate", type=float, default=10.0,
        help="global connection rate limit (connections/second)",
    )
    scan.add_argument(
        "--per-host-interval", type=float, default=1.0,
        help="minimum seconds between connections to one host",
    )
    scan.add_argument(
        "--connect-timeout", type=float, default=5.0,
        help="TCP connect timeout in seconds",
    )
    scan.add_argument(
        "--read-timeout", type=float, default=5.0,
        help="per-read timeout in seconds",
    )
    scan.add_argument(
        "--deadline", type=float, default=60.0,
        help="hard per-connection lifetime ceiling in seconds",
    )
    scan.add_argument(
        "--max-targets", type=int, default=None,
        help="refuse target lists larger than this (default 4096)",
    )
    scan.add_argument(
        "--traverse",
        action="store_true",
        help=(
            "walk accessible address spaces (budgeted, read-only); "
            "off by default for live runs"
        ),
    )
    scan.add_argument(
        "--key-bits",
        type=int,
        default=2048,
        choices=(512, 1024, 2048),
        help=(
            "scanner RSA key size (2048 for real runs; smaller only "
            "for loopback tests, where key generation speed matters)"
        ),
    )
    scan.add_argument(
        "--seed", type=int, default=20200830,
        help="seed for the scanner's deterministic nonce streams",
    )
    add_store(scan)
    scan.set_defaults(handler=cmd_scan)


def _scanner_identity(
    seed: int,
    contact: str,
    contact_url: str,
    key_bits: int,
    not_before=None,
):
    """Build the scanner identity used by the live and replay lanes.

    Everything about it is deterministic given the arguments —
    including ``not_before``, which defaults to *today* for live scans
    and is recorded in a capture corpus so replay reconstructs the
    byte-identical certificate on any later day.
    """
    import os
    from datetime import datetime, timezone
    from pathlib import Path

    from repro.client import ClientIdentity
    from repro.deployments.keyfactory import KeyFactory
    from repro.scanner.campaign import ScannerIdentity
    from repro.util.rng import DeterministicRng
    from repro.x509.builder import make_self_signed

    contact = (contact or "").strip()
    if "@" not in contact:
        raise SystemExit(
            "repro: error: --contact EMAIL is mandatory for live scans "
            "(it is embedded in the scanner certificate so operators "
            "can reach you)"
        )
    if not_before is None:
        not_before = datetime.now(timezone.utc).replace(
            hour=0, minute=0, second=0, microsecond=0
        )
    cache = os.environ.get("REPRO_KEYCACHE")
    factory = KeyFactory(seed, cache_dir=Path(cache) if cache else None)
    keys = factory.key_for(f"live-scanner-{key_bits}", key_bits)
    rng = DeterministicRng(seed, "live-scanner")
    certificate = make_self_signed(
        keys,
        common_name="research-scanner",
        application_uri="urn:repro:live-scanner",
        not_before=not_before,
        hash_name="sha256",
        rng=rng.substream("cert"),
        organization=f"Research scanner (contact: {contact})",
    )
    client = ClientIdentity(
        application_uri="urn:repro:live-scanner",
        application_name=(
            f"Research scanner (contact: {contact}; "
            f"opt out: {contact_url})"
        ),
        certificate=certificate,
        private_key=keys.private,
    )
    return ScannerIdentity(client, contact_url=contact_url), not_before


def _print_scan_summary(snapshot) -> None:
    from repro.util.ipaddr import format_ipv4

    opcua = sum(1 for r in snapshot.records if r.is_opcua)
    accessible = sum(
        1 for r in snapshot.records if r.anonymous_accessible()
    )
    print(
        f"{snapshot.probed} scanned / {snapshot.excluded} blocklisted / "
        f"{snapshot.port_open} tcp open / {opcua} OPC UA / "
        f"{accessible} anonymously accessible"
    )
    for record in snapshot.records:
        if record.tcp_open and record.is_opcua:
            status = "opc-ua"
            if record.anonymous_accessible():
                status += " anonymous-access"
        elif record.tcp_open:
            status = record.error or "open"
        else:
            status = record.error or "closed"
        if record.error_category:
            status += f" [{record.error_category}]"
        print(f"  {format_ipv4(record.ip)}:{record.port}  {status}")


def _write_snapshot_out(args, snapshot) -> None:
    if args.out:
        from repro.dataset.io import write_snapshots

        write_snapshots(args.out, [snapshot])
        print(f"wrote {args.out}")


def _profile_scan(args):
    """``--profile`` plumbing shared by the live and replay lanes.

    Returns ``(wrap_executor, session, emit)``: ``wrap_executor``
    decorates the lane's executor with per-stage counters,
    ``session`` is the :class:`~repro.util.profiling.ProfileSession`
    context manager around the campaign (or ``None`` when profiling is
    off), and ``emit`` prints the report after the summary.
    """
    import contextlib

    if not getattr(args, "profile", False):
        return (lambda executor: executor), contextlib.nullcontext(), None

    from repro.crypto.cache import cache_stats
    from repro.scanner.executor import ProfiledScanExecutor
    from repro.util.profiling import ProfileSession, StageStats

    stats = StageStats()
    session = ProfileSession()

    def emit() -> None:
        print()
        print("--- profile: per-stage counters ---")
        print(stats.render())
        print()
        print("--- profile: crypto caches ---")
        for entry in cache_stats():
            print(
                f"{entry['name']:<18} size={entry['size']:<5} "
                f"hits={entry['hits']:<7} misses={entry['misses']:<7} "
                f"hit_rate={entry['hit_rate']:.2%}"
            )
        print()
        print("--- profile: secure-channel crypto ops ---")
        from repro.secure.crypto_suite import OP_STATS

        print(OP_STATS.render())
        print()
        print("--- profile: hot functions (cProfile) ---")
        print(session.stats_text())

    return (
        lambda executor: ProfiledScanExecutor(executor, stats),
        session,
        emit,
    )


def cmd_replay(args) -> int:
    """Replay lane: recorded corpus in, byte-identical records out."""
    from pathlib import Path

    from repro.dataset.store import StoreIntegrityError
    from repro.scanner.campaign import ReplayScanCampaign
    from repro.transport.capture import CaptureFormatError, read_corpus
    from repro.transport.replay import ReplayError
    from repro.util.rng import DeterministicRng
    from repro.util.simtime import parse_utc

    source = Path(args.replay)
    try:
        if source.exists():
            corpus = read_corpus(source)
        else:
            store = resolve_store(args)
            if store is None:
                raise SystemExit(
                    f"repro: error: no corpus file at {source} "
                    "(pass --store DIR to replay a stored corpus key)"
                )
            try:
                corpus = store.load_corpus(args.replay)
            except KeyError as exc:
                raise SystemExit(f"repro: error: {exc.args[0]}")
    except (CaptureFormatError, StoreIntegrityError) as exc:
        raise SystemExit(f"repro: error: corpus: {exc}")

    meta = corpus.meta
    seed = meta.get("seed", args.seed)
    contact = meta.get("contact") or args.contact
    if not contact or "@" not in contact:
        raise SystemExit(
            "repro: error: this corpus does not carry the scanner "
            "contact it was recorded with (it was recorded through "
            "the library API, not `scan --record`); pass --contact "
            "with the recording's contact e-mail so the identity — "
            "and with it every request byte — can be rebuilt for "
            "strict replay verification"
        )
    not_before = meta.get("not_before")
    identity, _ = _scanner_identity(
        seed,
        contact,
        meta.get("contact_url", args.contact_url),
        meta.get("key_bits", args.key_bits),
        not_before=parse_utc(not_before) if not_before else None,
    )
    from repro.scanner.executor import build_executor

    # Replay grabs are pure computation, so serial is the sensible
    # default; any backend produces identical records.
    name = args.executor or "serial"
    wrap_executor, session, emit_profile = _profile_scan(args)
    campaign = ReplayScanCampaign(
        corpus,
        identity,
        DeterministicRng(seed, meta.get("rng_namespace", "live-scan")),
        executor=wrap_executor(
            build_executor(
                name, 1 if name == "serial" else max(args.workers, 1)
            )
        ),
    )
    from repro.scanner.executor import ScanExecutorError

    try:
        with session:
            snapshot = campaign.run()
    except ReplayError as exc:
        raise SystemExit(f"repro: replay: {exc}")
    except ScanExecutorError as exc:
        # Pooled backends wrap worker failures; a replay divergence
        # inside a worker must still surface as the friendly replay
        # message, not a traceback.
        if isinstance(exc.cause, ReplayError):
            raise SystemExit(f"repro: replay: {exc.cause}")
        raise
    print(f"replayed {len(corpus.targets)} captured targets "
          f"from {args.replay}")
    _print_scan_summary(snapshot)
    if emit_profile is not None:
        emit_profile()
    _write_snapshot_out(args, snapshot)
    return 0


def cmd_scan(args) -> int:
    """Live lane: explicit targets, hard ethics gates, real sockets."""
    from repro.netsim.blocklist import Blocklist
    from repro.scanner.campaign import (
        LiveScanCampaign,
        LiveScanConfig,
        load_targets,
    )
    from repro.scanner.ethics import (
        DEFAULT_MAX_LIVE_TARGETS,
        EthicsViolation,
        LiveScanGate,
    )
    from repro.scanner.limits import ScanRateLimiter
    from repro.util.rng import DeterministicRng
    from repro.util.simtime import format_utc

    if args.replay:
        if args.live or args.record or args.targets:
            raise SystemExit(
                "repro: error: --replay re-runs recorded traffic (the "
                "corpus is the target list) and cannot be combined "
                "with --live, --record, or --targets"
            )
        return cmd_replay(args)
    if not args.live:
        raise SystemExit(
            "repro: error: `repro scan` sends real packets and only "
            "runs with an explicit --live flag (the simulated study "
            "is `repro study`; a recorded corpus replays with "
            "--replay CORPUS)"
        )
    if not args.targets:
        raise SystemExit(
            "repro: error: --targets FILE is required for live scans"
        )
    try:
        targets = load_targets(args.targets, default_port=args.port)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: error: {exc}")
    blocklist = Blocklist()
    if args.blocklist:
        try:
            with open(args.blocklist) as handle:
                for line in handle:
                    block = line.split("#", 1)[0].strip()
                    if block:
                        blocklist.add(block)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro: error: blocklist: {exc}")

    identity, not_before = _scanner_identity(
        args.seed, args.contact, args.contact_url, args.key_bits
    )
    gate = LiveScanGate(
        blocklist=blocklist,
        max_targets=(
            DEFAULT_MAX_LIVE_TARGETS
            if args.max_targets is None
            else args.max_targets
        ),
    )
    config = LiveScanConfig(
        workers=args.workers,
        connect_timeout_s=args.connect_timeout,
        read_timeout_s=args.read_timeout,
        connection_deadline_s=args.deadline,
        traverse=args.traverse,
    )
    try:
        limiter = ScanRateLimiter(args.rate, args.per_host_interval)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    recorder = None
    if args.record:
        from repro.transport.capture import CaptureRecorder

        # Everything replay needs to rebuild this exact scanner:
        # the corpus is self-describing, so `repro scan --replay`
        # works on any machine, any day.
        recorder = CaptureRecorder(
            {
                "seed": args.seed,
                "rng_namespace": "live-scan",
                "contact": (args.contact or "").strip(),
                "contact_url": args.contact_url,
                "key_bits": args.key_bits,
                "not_before": format_utc(not_before),
            }
        )
    wrap_executor, session, emit_profile = _profile_scan(args)
    executor = None
    if args.profile:
        # Build the live lane's default backend explicitly so the
        # profiling wrapper can decorate it.
        from repro.scanner.executor import build_executor

        executor = wrap_executor(
            build_executor("async", max(config.workers, 1))
        )
    try:
        campaign = LiveScanCampaign(
            identity,
            DeterministicRng(args.seed, "live-scan"),
            gate=gate,
            config=config,
            limiter=limiter,
            recorder=recorder,
            executor=executor,
        )
        with session:
            snapshot = campaign.run(targets)
    except EthicsViolation as exc:
        raise SystemExit(f"repro: ethics gate: {exc}")

    _print_scan_summary(snapshot)
    if emit_profile is not None:
        emit_profile()
    if recorder is not None:
        from repro.transport.capture import write_corpus

        corpus = recorder.corpus()
        write_corpus(args.record, corpus)
        print(f"recorded {len(corpus.targets)} targets to {args.record}")
        store = resolve_store(args)
        if store is not None:
            key = store.save_corpus(corpus)
            print(f"stored corpus {key} under {store.root}")
    _write_snapshot_out(args, snapshot)
    return 0
