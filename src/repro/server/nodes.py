"""Node classes populating a server's address space."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.access import Permissions, Role
from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.enums import AccessLevel, NodeClass
from repro.uabin.nodeid import NodeId
from repro.uabin.variant import Variant


@dataclass
class Reference:
    """A directed, typed edge between two nodes."""

    reference_type: NodeId
    target: NodeId
    is_forward: bool = True


@dataclass
class Node:
    """Common node attributes (OPC 10000-3 §5.2)."""

    node_id: NodeId
    browse_name: QualifiedName
    display_name: LocalizedText
    node_class: NodeClass = NodeClass.OBJECT
    description: LocalizedText = field(default_factory=LocalizedText)
    references: list[Reference] = field(default_factory=list)
    type_definition: NodeId = field(default_factory=lambda: NodeId(0, 58))

    def add_reference(
        self, reference_type: NodeId, target: NodeId, is_forward: bool = True
    ) -> None:
        self.references.append(Reference(reference_type, target, is_forward))


@dataclass
class ObjectNode(Node):
    """A structural object (folder, device, subsystem)."""

    def __post_init__(self):
        self.node_class = NodeClass.OBJECT


@dataclass
class VariableNode(Node):
    """A value-bearing node; the study's read/write analysis target."""

    value: Variant = field(default_factory=Variant)
    permissions: Permissions = field(default_factory=Permissions)

    def __post_init__(self):
        self.node_class = NodeClass.VARIABLE
        if self.type_definition == NodeId(0, 58):
            self.type_definition = NodeId(0, 63)  # BaseDataVariableType

    def access_level(self) -> int:
        """The AccessLevel attribute (capabilities of the node itself)."""
        level = AccessLevel.NONE
        if self.permissions.read:
            level |= AccessLevel.CURRENT_READ
        if self.permissions.write:
            level |= AccessLevel.CURRENT_WRITE
        return int(level)

    def user_access_level(self, role: Role) -> int:
        """The UserAccessLevel attribute for a specific principal."""
        level = AccessLevel.NONE
        if self.permissions.allows_read(role):
            level |= AccessLevel.CURRENT_READ
        if self.permissions.allows_write(role):
            level |= AccessLevel.CURRENT_WRITE
        return int(level)


@dataclass
class MethodNode(Node):
    """A callable node; the study's execute analysis target."""

    permissions: Permissions = field(default_factory=Permissions)
    handler: object = None  # callable(session, input_args) -> list[Variant]

    def __post_init__(self):
        self.node_class = NodeClass.METHOD

    def executable(self) -> bool:
        return bool(self.permissions.execute)

    def user_executable(self, role: Role) -> bool:
        return self.permissions.allows_execute(role)
