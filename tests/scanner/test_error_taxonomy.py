"""Taxonomy completeness: every legal error category is reachable.

``repro.client.errors.ERROR_CATEGORIES`` names the scanner's entire
failure vocabulary.  This suite proves the taxonomy is *exact*: each
category is produced by a dedicated device-zoo personality (or dark
address space, for the two connect-level ones), and a full zoo sweep
observes nothing outside the declared set.  A new category added to
the code without a personality that reaches it — or a personality
whose failure is mislabeled — fails here.
"""

from __future__ import annotations

import pytest

from repro.client import ClientIdentity
from repro.client.errors import (
    CONNECTION_FAILURE_CATEGORIES,
    ERROR_CATEGORIES,
    ConnectionClosedError,
    ServiceFaultError,
    TransportRejectedError,
    UaClientError,
    categorize_error,
)
from repro.deployments.personalities import PERSONALITIES, personality
from repro.netsim.net import ConnectionRefused, HostDown, SimHost, SimNetwork
from repro.scanner.grabber import grab_host
from repro.server import ServerBehavior
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc
from repro.x509.builder import make_self_signed

from tests.server.helpers import build_server

#: personality name -> the zoo address its connection listens on.
ZOO_ADDRESSES = {
    "junk-banner": "10.1.0.1",
    "truncated-frame": "10.1.0.2",
    "slow-loris": "10.1.0.3",
    "mid-handshake-drop": "10.1.0.4",
    "hello-rejecter": "10.1.0.5",
    "confused-stack": "10.1.0.6",
    "honeypot": "10.1.0.7",
}

#: A host that is up but has no listener on 4840 (-> refused) ...
CLOSED_PORT_ADDRESS = "10.1.0.50"
#: ... and an address with no host at all (-> unreachable).
DARK_ADDRESS = "10.1.0.51"


@pytest.fixture(scope="module")
def zoo_rng():
    return DeterministicRng(42424, "taxonomy-tests")


@pytest.fixture(scope="module")
def scanner_identity(zoo_rng, rsa_1024):
    certificate = make_self_signed(
        rsa_1024,
        common_name="research-scanner",
        application_uri="urn:repro:scanner",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=zoo_rng.substream("scanner-cert"),
    )
    return ClientIdentity(
        application_uri="urn:repro:scanner",
        application_name="Research Scanner (contact: research@example.org)",
        certificate=certificate,
        private_key=rsa_1024.private,
    )


@pytest.fixture(scope="module")
def zoo_network(zoo_rng, rsa_2048):
    """One host per transport/engine personality, plus dark space."""
    net = SimNetwork(SimClock(parse_utc("2020-08-30")))
    for name, ip_text in ZOO_ADDRESSES.items():
        spec = personality(name)
        if spec.fault_data_services:
            server = build_server(
                zoo_rng.substream(name),
                rsa_2048,
                behavior=ServerBehavior(fault_data_services=True),
            )
            factory = server.new_connection
        else:
            server = build_server(zoo_rng.substream(name), rsa_2048)
            factory = spec.wrap_connection(server.new_connection)
        host = SimHost(address=parse_ipv4(ip_text), asn=64500)
        host.listen(4840, factory)
        net.add_host(host)
    net.add_host(
        SimHost(address=parse_ipv4(CLOSED_PORT_ADDRESS), asn=64500)
    )
    return net


def _grab(network, identity, ip_text, rng_label):
    rng = DeterministicRng(42424, "taxonomy-tests").substream(rng_label)
    return grab_host(network, parse_ipv4(ip_text), 4840, identity, rng)


@pytest.fixture(scope="module")
def zoo_records(zoo_network, scanner_identity):
    """One grab per zoo host (keyed by personality) plus dark space."""
    records = {
        name: _grab(zoo_network, scanner_identity, ip_text, f"grab-{name}")
        for name, ip_text in ZOO_ADDRESSES.items()
    }
    records["closed-port"] = _grab(
        zoo_network, scanner_identity, CLOSED_PORT_ADDRESS, "grab-refused"
    )
    records["dark"] = _grab(
        zoo_network, scanner_identity, DARK_ADDRESS, "grab-unreachable"
    )
    return records


def _observed_categories(records) -> set[str]:
    observed = set()
    for record in records.values():
        if record.error_category is not None:
            observed.add(record.error_category)
        session = record.session
        if session is not None:
            if session.error_category is not None:
                observed.add(session.error_category)
            if session.details_error is not None:
                observed.add(session.details_error.split(":", 1)[0])
    return observed


class TestTaxonomyCompleteness:
    def test_every_category_reachable(self, zoo_records):
        """The zoo produces the whole declared taxonomy — no category
        exists only on paper."""
        assert _observed_categories(zoo_records) == set(ERROR_CATEGORIES)

    def test_no_undeclared_categories(self, zoo_records):
        """Nothing outside the declared set ever reaches a record."""
        assert _observed_categories(zoo_records) <= set(ERROR_CATEGORIES)

    def test_declared_set_is_connection_plus_service(self):
        assert CONNECTION_FAILURE_CATEGORIES < ERROR_CATEGORIES
        assert ERROR_CATEGORIES - CONNECTION_FAILURE_CATEGORIES == {
            "service-fault",
            "protocol",
        }

    def test_personality_ground_truth_declared_in_taxonomy(self):
        """A personality cannot promise a category the taxonomy lacks."""
        for spec in PERSONALITIES.values():
            for expected in (
                spec.expected_host_error_category,
                spec.expected_session_error_category,
                spec.expected_details_prefix,
            ):
                if expected is not None:
                    assert expected in ERROR_CATEGORIES, spec.name


class TestPersonalityCategories:
    """Each personality lands in exactly its declared category."""

    def test_junk_banner_is_protocol_outcome_without_category(
        self, zoo_records
    ):
        record = zoo_records["junk-banner"]
        assert record.tcp_open
        assert not record.is_opcua
        assert record.error.startswith("not OPC UA")
        # Answering with a non-OPC-UA payload is a protocol outcome,
        # not a connection failure — the category stays unset.
        assert record.error_category is None

    def test_truncated_frame_closed(self, zoo_records):
        record = zoo_records["truncated-frame"]
        assert record.tcp_open
        assert not record.is_opcua
        assert record.error_category == "closed"

    def test_mid_handshake_drop_closed(self, zoo_records):
        record = zoo_records["mid-handshake-drop"]
        assert record.tcp_open
        assert not record.is_opcua
        assert record.error_category == "closed"

    def test_slow_loris_times_out(self, zoo_records):
        """Satellite regression: a stalled writer must hit the stall
        deadline and be recorded as ``timeout``, not hang the sweep."""
        record = zoo_records["slow-loris"]
        assert record.tcp_open
        assert not record.is_opcua
        assert record.error_category == "timeout"
        assert "stalled" in record.error

    def test_slow_loris_clock_advance_bounded(
        self, zoo_rng, scanner_identity, rsa_2048
    ):
        """The stall deadline bounds how much simulated time one
        slow-loris host can burn."""
        from repro.netsim.net import DEFAULT_STALL_TIMEOUT_S

        net = SimNetwork(SimClock(parse_utc("2020-08-30")))
        factory = personality("slow-loris").wrap_connection(None)
        host = SimHost(address=parse_ipv4("10.2.0.1"), asn=64500)
        host.listen(4840, factory)
        net.add_host(host)
        start = net.clock.now()
        record = _grab(net, scanner_identity, "10.2.0.1", "loris-bound")
        assert record.error_category == "timeout"
        elapsed = (net.clock.now() - start).total_seconds()
        assert elapsed <= 2 * DEFAULT_STALL_TIMEOUT_S

    def test_hello_rejecter_transport_rejected(self, zoo_records):
        record = zoo_records["hello-rejecter"]
        assert record.tcp_open
        assert not record.is_opcua
        assert record.error_category == "transport-rejected"
        assert "BadTcpServerTooBusy" in record.error

    def test_confused_stack_session_protocol(self, zoo_records):
        record = zoo_records["confused-stack"]
        assert record.is_opcua
        assert record.session is not None
        assert not record.session.success
        assert record.session.error_category == "protocol"

    def test_honeypot_service_fault_details(self, zoo_records):
        record = zoo_records["honeypot"]
        assert record.is_opcua
        assert record.session.success
        assert record.session.details_error is not None
        assert record.session.details_error.startswith("service-fault")
        assert not record.namespaces

    def test_closed_port_refused(self, zoo_records):
        record = zoo_records["closed-port"]
        assert not record.tcp_open
        assert record.error_category == "refused"

    def test_dark_address_unreachable(self, zoo_records):
        record = zoo_records["dark"]
        assert not record.tcp_open
        assert record.error_category == "unreachable"


class TestCategorizeError:
    """The classifier itself never leaves the declared set."""

    @pytest.mark.parametrize(
        "exc,expected",
        [
            (UaClientError("boom"), "protocol"),
            (ConnectionClosedError("gone"), "closed"),
            (
                TransportRejectedError(
                    StatusCode(StatusCodes.BadTcpServerTooBusy.value), "busy"
                ),
                "transport-rejected",
            ),
            (
                ServiceFaultError(
                    StatusCode(StatusCodes.BadResourceUnavailable.value)
                ),
                "service-fault",
            ),
            (ConnectionRefused("no listener"), "refused"),
            (HostDown("dark"), "unreachable"),
            (TimeoutError("slow"), "timeout"),
            (ConnectionRefusedError("os-level"), "refused"),
            (OSError("network down"), "unreachable"),
            (ValueError("garbage"), "protocol"),
        ],
    )
    def test_classification(self, exc, expected):
        category = categorize_error(exc)
        assert category == expected
        assert category in ERROR_CATEGORIES
