#!/usr/bin/env python3
"""Reproduce the full IMC 2020 study end to end.

Builds the ~1900-host simulated Internet, runs all eight weekly scan
sweeps (February–August 2020), and regenerates every table and figure
of the paper, printing paper-vs-measured comparisons.

The first run generates ~700 RSA keys into ``.keycache/`` (several
minutes); subsequent runs start instantly.

Run:  python examples/full_study.py
"""

import time

from repro import EXPERIMENTS, Study, StudyConfig, run_experiment


def main() -> None:
    start = time.time()
    print("building population and running 8 weekly sweeps...")
    result = Study(StudyConfig()).run()
    print(f"study complete in {time.time() - start:.0f}s\n")

    exact_total = 0
    comparison_total = 0
    for experiment_id in EXPERIMENTS:
        report = run_experiment(experiment_id, result)
        print(report.render())
        print()
        exact_total += report.exact_matches()
        comparison_total += len(report.comparisons)

    print(
        f"reproduction summary: {exact_total}/{comparison_total} "
        "metrics match the paper exactly"
    )


if __name__ == "__main__":
    main()
