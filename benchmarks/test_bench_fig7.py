"""Regenerates Figure 7 (anonymous access-rights CDFs)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_fig7_access_rights(benchmark, study_result):
    report = benchmark(run_experiment, "fig7", study_result)
    print_report(report)
    # The CDF claims are shape metrics; all must hold.
    assert report.exact_matches() >= len(report.comparisons) - 2
