"""Content-addressed, versioned on-disk store for study results.

Running the full eight-sweep study costs minutes; every one of the
paper's analyses consumes nothing but the resulting snapshot sequence.
The store decouples the two: ``Study.run(store=...)`` writes the
snapshots once, and any later invocation — another experiment, the
benchmark suite, ``repro analyze``, a CI job — loads them instead of
re-scanning.

Entries are *content-addressed*: the key is a SHA-256 digest over

* the result-affecting :class:`~repro.core.config.StudyConfig` fields
  (``executor``/``workers``/``probe_batch_size`` are excluded — they
  change wall-clock time, never snapshot bytes, so a study scanned
  with the process backend serves serial callers and vice versa);
* every row of the :class:`~repro.deployments.spec.PopulationSpec`;
* :data:`SCHEMA_VERSION`, bumped whenever the record schema or the
  scan semantics change — old entries then simply stop matching
  instead of being misread.

Each entry persists its golden digests (per-sweep and whole-study,
the same SHA-256s ``tests/golden`` pins) in ``meta.json``, and
:meth:`StudyStore.load` recomputes them from the decoded snapshots —
a corrupted, hand-edited, or stale entry can never silently poison an
analysis; it raises :class:`StoreIntegrityError` instead.

Layout::

    <root>/<key>/meta.json           # config, spec summary, digests
    <root>/<key>/snapshots.jsonl.gz  # dataset/io.py JSONL, gzipped

The store also holds **capture corpora** (recorded live scans — see
:mod:`repro.transport.capture`), content-addressed by the SHA-256 of
their canonical corpus bytes::

    <root>/corpora/<key>/corpus.jsonl.gz
    <root>/corpora/<key>/meta.json

Corpus keys never collide with study keys: corpora live under their
own subdirectory, which carries no top-level ``meta.json`` and is
therefore invisible to :meth:`StudyStore.keys`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Iterator

from repro.core.config import StudyConfig
from repro.core.golden import (
    canonical_json,
    combined_digest,
    snapshot_digest,
    sweep_digests,
)
from repro.dataset.io import iter_snapshots, write_snapshots
from repro.deployments.spec import PopulationSpec
from repro.scanner.records import MeasurementSnapshot

#: Version of the stored byte format *and* of the scan semantics that
#: produced it.  Bump on any change to the record schema, the snapshot
#: digest definition, or the scan pipeline's output — every existing
#: key then stops matching and studies are transparently re-run.
SCHEMA_VERSION = 1

#: Environment variable naming the default store directory.  Used by
#: :func:`default_store` so CI and benchmarks opt whole process trees
#: into the store without threading a path through every call site.
STORE_ENV = "REPRO_STUDY_STORE"

SNAPSHOT_FILE = "snapshots.jsonl.gz"
META_FILE = "meta.json"
CORPUS_DIR = "corpora"
CORPUS_FILE = "corpus.jsonl.gz"

#: StudyConfig fields that never change snapshot bytes (executor
#: choice and task granularity) — excluded from the content key.
_NON_RESULT_FIELDS = frozenset({"executor", "workers", "probe_batch_size"})


class StoreIntegrityError(RuntimeError):
    """A store entry exists but fails digest/shape validation."""


def config_key_fields(config: StudyConfig) -> dict:
    """The config as a dict of result-affecting fields only."""
    return {
        field.name: getattr(config, field.name)
        for field in dataclasses.fields(config)
        if field.name not in _NON_RESULT_FIELDS
    }


def spec_fingerprint(spec: PopulationSpec) -> list[dict]:
    """Every spec row as plain JSON (enums are ints, tuples lists)."""
    return [dataclasses.asdict(row) for row in spec.rows]


def study_key(config: StudyConfig, spec: PopulationSpec) -> str:
    """Content digest identifying one study's inputs."""
    material = canonical_json(
        {
            "schema": SCHEMA_VERSION,
            "config": config_key_fields(config),
            "spec": spec_fingerprint(spec),
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def default_store(path: str | Path | None = None) -> "StudyStore | None":
    """Resolve the ambient store: explicit path, else :data:`STORE_ENV`.

    Returns ``None`` when neither names a directory — callers then run
    without persistence, exactly as before the store existed.
    """
    if path is None:
        path = os.environ.get(STORE_ENV) or None
    if path is None:
        return None
    return StudyStore(path)


class StudyStore:
    """A directory of content-addressed study entries.

    A fresh store is empty::

        >>> import tempfile
        >>> store = StudyStore(tempfile.mkdtemp())
        >>> store.keys()
        []
        >>> store.corpus_keys()
        []
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # --- key plumbing ------------------------------------------------------

    def entry_dir(self, key: str) -> Path:
        return self.root / key

    def contains(self, config: StudyConfig, spec: PopulationSpec) -> bool:
        key = study_key(config, spec)
        return (self.entry_dir(key) / META_FILE).exists()

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / META_FILE).exists()
        )

    def read_meta(self, key: str) -> dict:
        path = self.entry_dir(key) / META_FILE
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"store entry {key}: meta.json is not valid JSON "
                f"({exc}) — delete {path.parent} and re-run the study"
            ) from None

    # --- writing -----------------------------------------------------------

    def save(
        self,
        config: StudyConfig,
        spec: PopulationSpec,
        snapshots: list[MeasurementSnapshot],
    ) -> str:
        """Persist one finished study; returns the entry key.

        The snapshot file is written first and ``meta.json`` last, so
        a crashed write never leaves an entry that looks complete —
        ``contains``/``load`` key off the meta file.
        """
        key = study_key(config, spec)
        entry = self.entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        write_snapshots(entry / SNAPSHOT_FILE, snapshots)
        per_sweep = sweep_digests(snapshots)
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "config": {
                field.name: getattr(config, field.name)
                for field in dataclasses.fields(config)
            },
            "spec_rows": len(spec.rows),
            "spec_servers": spec.total_servers,
            "sweeps": len(snapshots),
            "records": sum(len(s.records) for s in snapshots),
            "digest": combined_digest(per_sweep),
            "per_sweep": per_sweep,
        }
        # Atomic publish: meta.json appearing is what marks the entry
        # complete, so it must never exist half-written.
        temp = entry / (META_FILE + ".tmp")
        temp.write_text(json.dumps(meta, indent=2) + "\n")
        os.replace(temp, entry / META_FILE)
        return key

    # --- reading -----------------------------------------------------------

    def load(
        self, config: StudyConfig, spec: PopulationSpec
    ) -> list[MeasurementSnapshot] | None:
        """Load and validate the entry for ``(config, spec)``.

        ``None`` means "not stored" (including a schema-version
        mismatch, which by construction cannot produce this key).
        Every decoded snapshot is re-hashed against the digests
        recorded at save time; any drift — truncated file, stale
        entry, hand edit, schema skew — raises
        :class:`StoreIntegrityError`.
        """
        key = study_key(config, spec)
        if not (self.entry_dir(key) / META_FILE).exists():
            return None
        return list(self.iter_validated(key))

    def iter_validated(self, key: str) -> Iterator[MeasurementSnapshot]:
        """Stream one entry's snapshots, validating digests as they go.

        The streaming shape means a consumer that only needs the first
        sweeps (or processes sweeps one at a time) pays for exactly
        what it reads — the final whole-study digest check happens on
        exhaustion, when every per-sweep digest has already matched.
        """
        meta = self.read_meta(key)
        if meta.get("schema") != SCHEMA_VERSION:
            raise StoreIntegrityError(
                f"store entry {key} has schema {meta.get('schema')!r}, "
                f"this code expects {SCHEMA_VERSION}"
            )
        expected: dict[str, str] = meta.get("per_sweep", {})
        expected_dates = list(expected)
        seen: dict[str, str] = {}
        path = self.entry_dir(key) / SNAPSHOT_FILE
        for snapshot in iter_snapshots(path):
            position = len(seen)
            if (
                position >= len(expected_dates)
                or snapshot.date != expected_dates[position]
            ):
                raise StoreIntegrityError(
                    f"store entry {key}: unexpected sweep "
                    f"{snapshot.date!r} at position {position} "
                    f"(expected {expected_dates[position:position + 1]})"
                )
            digest = snapshot_digest(snapshot)
            if digest != expected[snapshot.date]:
                raise StoreIntegrityError(
                    f"store entry {key}: sweep {snapshot.date} digest "
                    f"mismatch (stored {expected[snapshot.date][:12]}…, "
                    f"recomputed {digest[:12]}…) — the entry is stale "
                    "or corrupted; delete it and re-run the study"
                )
            seen[snapshot.date] = digest
            yield snapshot
        if len(seen) != len(expected_dates):
            raise StoreIntegrityError(
                f"store entry {key}: file holds {len(seen)} sweeps, "
                f"meta.json declares {len(expected_dates)}"
            )
        if combined_digest(seen) != meta.get("digest"):
            raise StoreIntegrityError(
                f"store entry {key}: whole-study digest mismatch"
            )

    # --- capture corpora ---------------------------------------------------

    def corpus_dir(self, key: str) -> Path:
        return self.root / CORPUS_DIR / key

    def corpus_keys(self) -> list[str]:
        corpora = self.root / CORPUS_DIR
        if not corpora.is_dir():
            return []
        return sorted(
            entry.name
            for entry in corpora.iterdir()
            if (entry / META_FILE).exists()
        )

    def corpus_path(self, key: str) -> Path:
        return self.corpus_dir(key) / CORPUS_FILE

    def save_corpus(self, corpus) -> str:
        """Persist a capture corpus; returns its content key.

        The key is the corpus digest (SHA-256 over the canonical JSONL
        lines — see
        :meth:`repro.transport.capture.CaptureCorpus.digest`), so
        saving the same recording twice lands on the same entry, and a
        tampered entry can never pass :meth:`load_corpus`.
        """
        from repro.transport.capture import write_corpus

        key = corpus.digest()
        entry = self.corpus_dir(key)
        if (entry / META_FILE).exists():
            # Content-addressed: an existing entry holds these exact
            # bytes already.  Returning early keeps a re-save from
            # rewriting a good recording in place (a crash mid-write
            # would corrupt an entry whose meta marks it complete —
            # and a live recording can never be reproduced).
            return key
        entry.mkdir(parents=True, exist_ok=True)
        write_corpus(entry / CORPUS_FILE, corpus)
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "targets": len(corpus.targets),
            "label": corpus.meta.get("label"),
        }
        temp = entry / (META_FILE + ".tmp")
        temp.write_text(json.dumps(meta, indent=2) + "\n")
        os.replace(temp, entry / META_FILE)
        return key

    def load_corpus(self, key: str):
        """Load one corpus, re-verifying its content digest.

        Raises :class:`StoreIntegrityError` on digest drift (a stale,
        truncated, or hand-edited entry) and :class:`KeyError` for an
        unknown key.
        """
        from repro.transport.capture import read_corpus

        path = self.corpus_path(key)
        if not path.exists():
            raise KeyError(f"no capture corpus {key!r} under {self.root}")
        corpus = read_corpus(path)
        digest = corpus.digest()
        if digest != key:
            raise StoreIntegrityError(
                f"capture corpus {key}: content digest mismatch "
                f"(recomputed {digest[:12]}…) — the entry is corrupted; "
                "delete it and re-record"
            )
        return corpus
