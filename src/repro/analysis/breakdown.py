"""Appendix B.1 — deficit classes by manufacturer and AS (Figure 8).

For each of the five deficit classes, the distribution of affected
hosts over device manufacturers (via the ApplicationURI clustering)
and over the autonomous systems announcing their addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.deficits import analyze_deficits
from repro.deployments.manufacturers import classify_application_uri
from repro.scanner.records import HostRecord

DEFICIT_CLASSES = (
    "none-only",
    "deprecated-best",
    "weak-certificate",
    "certificate-reuse",
    "anonymous-access",
)


@dataclass
class DeficitBreakdown:
    # class -> manufacturer -> count
    by_manufacturer: dict[str, dict[str, int]] = field(default_factory=dict)
    # class -> asn -> count
    by_asn: dict[str, dict[int, int]] = field(default_factory=dict)

    def class_total(self, deficit_class: str) -> int:
        return sum(self.by_manufacturer.get(deficit_class, {}).values())

    def dominant_manufacturer(self, deficit_class: str) -> tuple[str, int]:
        counts = self.by_manufacturer.get(deficit_class, {})
        if not counts:
            return ("", 0)
        name = max(counts, key=counts.get)
        return name, counts[name]

    def dominant_asn(self, deficit_class: str) -> tuple[int, int]:
        counts = self.by_asn.get(deficit_class, {})
        if not counts:
            return (0, 0)
        asn = max(counts, key=counts.get)
        return asn, counts[asn]


def analyze_deficit_breakdown(records: list[HostRecord]) -> DeficitBreakdown:
    deficits = analyze_deficits(records)
    breakdown = DeficitBreakdown(
        by_manufacturer={cls: {} for cls in DEFICIT_CLASSES},
        by_asn={cls: {} for cls in DEFICIT_CLASSES},
    )
    for record, flags in zip(records, deficits.per_host_flags):
        manufacturer = classify_application_uri(record.application_uri)
        for deficit_class in flags:
            mf = breakdown.by_manufacturer[deficit_class]
            mf[manufacturer] = mf.get(manufacturer, 0) + 1
            if record.asn is not None:
                asns = breakdown.by_asn[deficit_class]
                asns[record.asn] = asns.get(record.asn, 0) + 1
    return breakdown
