import pytest

from repro.netsim.asn import AsRegistry, AutonomousSystem
from repro.netsim.blocklist import Blocklist
from repro.netsim.latency import LatencyModel, ZeroLatency
from repro.netsim.net import ConnectionRefused, HostDown, SimHost, SimNetwork
from repro.netsim.tcpscan import sweep_port
from repro.util.ipaddr import CidrBlock, parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc


class EchoConnection:
    closed = False

    def receive(self, data: bytes) -> bytes:
        return data


def make_network():
    network = SimNetwork(SimClock(parse_utc("2020-02-09")))
    host = SimHost(address=parse_ipv4("10.0.0.1"), asn=64500)
    host.listen(4840, EchoConnection)
    network.add_host(host)
    return network


class TestSimNetwork:
    def test_connect_and_echo(self):
        network = make_network()
        socket = network.connect(parse_ipv4("10.0.0.1"), 4840)
        socket.write(b"ping")
        assert socket.read() == b"ping"

    def test_read_drains(self):
        network = make_network()
        socket = network.connect(parse_ipv4("10.0.0.1"), 4840)
        socket.write(b"x")
        assert socket.read() == b"x"
        assert socket.read() == b""

    def test_byte_accounting(self):
        network = make_network()
        socket = network.connect(parse_ipv4("10.0.0.1"), 4840)
        socket.write(b"12345")
        assert socket.bytes_sent == 5
        assert socket.bytes_received == 5

    def test_connection_refused(self):
        network = make_network()
        with pytest.raises(ConnectionRefused):
            network.connect(parse_ipv4("10.0.0.1"), 80)

    def test_host_down(self):
        network = make_network()
        with pytest.raises(HostDown):
            network.connect(parse_ipv4("10.0.0.2"), 4840)

    def test_syn(self):
        network = make_network()
        assert network.syn(parse_ipv4("10.0.0.1"), 4840)
        assert not network.syn(parse_ipv4("10.0.0.1"), 80)
        assert not network.syn(parse_ipv4("10.9.9.9"), 4840)

    def test_duplicate_host_rejected(self):
        network = make_network()
        with pytest.raises(ValueError):
            network.add_host(SimHost(address=parse_ipv4("10.0.0.1")))

    def test_duplicate_port_rejected(self):
        host = SimHost(address=1)
        host.listen(4840, EchoConnection)
        with pytest.raises(ValueError):
            host.listen(4840, EchoConnection)

    def test_latency_advances_clock(self):
        clock = SimClock(parse_utc("2020-02-09"))
        latency = LatencyModel(DeterministicRng(1, "lat"), default_rtt_s=0.1)
        network = SimNetwork(clock, latency)
        host = SimHost(address=1, asn=64500)
        host.listen(4840, EchoConnection)
        network.add_host(host)
        socket = network.connect(1, 4840)
        before = clock.now()
        socket.write(b"x")
        assert (clock.now() - before).total_seconds() > 0

    def test_zero_latency_does_not_advance(self):
        network = make_network()
        before = network.clock.now()
        socket = network.connect(parse_ipv4("10.0.0.1"), 4840)
        socket.write(b"x")
        assert network.clock.now() == before


class TestNetworkView:
    def test_view_clock_is_isolated(self):
        clock = SimClock(parse_utc("2020-02-09"))
        latency = LatencyModel(DeterministicRng(1, "lat"), default_rtt_s=0.1)
        network = SimNetwork(clock, latency)
        host = SimHost(address=1, asn=64500)
        host.listen(4840, EchoConnection)
        network.add_host(host)

        view = network.task_view("task-1-4840")
        before = network.clock.now()
        socket = view.connect(1, 4840)
        socket.write(b"x")
        # The view's clock moved; the shared sweep clock did not.
        assert view.clock.now() > before
        assert network.clock.now() == before

    def test_view_sees_shared_hosts(self):
        network = make_network()
        view = network.task_view("t")
        assert view.syn(parse_ipv4("10.0.0.1"), 4840)
        assert view.host(parse_ipv4("10.0.0.1")) is not None
        assert len(view.hosts()) == 1
        with pytest.raises(HostDown):
            view.connect(parse_ipv4("10.9.9.9"), 4840)
        with pytest.raises(ConnectionRefused):
            view.connect(parse_ipv4("10.0.0.1"), 80)

    def test_latency_fork_is_deterministic_per_label(self):
        base = LatencyModel(DeterministicRng(1, "lat"), default_rtt_s=0.1)
        fork_a = base.fork("task-a")
        first = [fork_a.rtt(64500) for _ in range(3)]
        base.rtt(64500)  # drain the parent: forks must not care
        fork_a_again = base.fork("task-a")
        second = [fork_a_again.rtt(64500) for _ in range(3)]
        fork_b = base.fork("task-b")
        other = [fork_b.rtt(64500) for _ in range(3)]
        # Same label -> same jitter stream regardless of draw order on
        # the parent; different labels -> independent streams.
        assert first == second
        assert first != other

    def test_zero_latency_fork_shares_instance(self):
        latency = ZeroLatency()
        assert latency.fork("anything") is latency

    def test_fork_with_plain_random_never_shares_the_parent(self):
        import random

        base = LatencyModel(random.Random(1), default_rtt_s=0.1)
        fork = base.fork("task-a")
        assert fork.rng is not base.rng
        # Deterministic per (parent state, label): repeating the fork
        # before the parent draws again replays the same stream.
        replay = base.fork("task-a")
        assert [fork.rtt(1) for _ in range(3)] == [
            replay.rtt(1) for _ in range(3)
        ]
        assert base.fork("task-a").rtt(1) != base.fork("task-b").rtt(1)


class TestAsRegistry:
    def make_registry(self):
        registry = AsRegistry()
        registry.register(
            AutonomousSystem(
                64500, "IIoT ISP", [CidrBlock.parse("10.1.0.0/16")]
            )
        )
        registry.register(
            AutonomousSystem(
                64501, "Regional ISP", [CidrBlock.parse("10.2.0.0/16")]
            )
        )
        return registry

    def test_lookup(self):
        registry = self.make_registry()
        assert registry.lookup(parse_ipv4("10.1.2.3")).asn == 64500
        assert registry.lookup(parse_ipv4("10.2.2.3")).asn == 64501
        assert registry.lookup(parse_ipv4("192.168.0.1")) is None

    def test_duplicate_asn_rejected(self):
        registry = self.make_registry()
        with pytest.raises(ValueError):
            registry.register(AutonomousSystem(64500, "dup", []))

    def test_overlapping_blocks_rejected(self):
        registry = self.make_registry()
        with pytest.raises(ValueError):
            registry.register(
                AutonomousSystem(
                    64502, "overlap", [CidrBlock.parse("10.1.128.0/17")]
                )
            )

    def test_allocation_unique_and_inside_as(self):
        registry = self.make_registry()
        rng = DeterministicRng(7, "alloc")
        addresses = [registry.allocate_address(64500, rng) for _ in range(500)]
        assert len(set(addresses)) == 500
        system = registry.get(64500)
        assert all(system.contains(a) for a in addresses)

    def test_allocation_deterministic(self):
        a = self.make_registry()
        b = self.make_registry()
        rng_a = DeterministicRng(7, "alloc")
        rng_b = DeterministicRng(7, "alloc")
        assert [a.allocate_address(64500, rng_a) for _ in range(10)] == [
            b.allocate_address(64500, rng_b) for _ in range(10)
        ]

    def test_describe(self):
        registry = self.make_registry()
        text = registry.describe(parse_ipv4("10.1.0.5"))
        assert "AS64500" in text


class TestBlocklist:
    def test_membership(self):
        blocklist = Blocklist()
        blocklist.add("10.5.0.0/16")
        assert parse_ipv4("10.5.1.1") in blocklist
        assert parse_ipv4("10.6.1.1") not in blocklist

    def test_excluded_count(self):
        blocklist = Blocklist()
        blocklist.add("10.5.0.0/16")
        blocklist.add("10.6.0.0/24")
        assert blocklist.excluded_address_count == 65536 + 256


class TestSweep:
    def test_finds_open_hosts(self):
        network = make_network()
        result = sweep_port(network, 4840, DeterministicRng(1, "s"))
        assert result.open_addresses == [parse_ipv4("10.0.0.1")]

    def test_respects_blocklist(self):
        network = make_network()
        blocklist = Blocklist()
        blocklist.add("10.0.0.0/24")
        result = sweep_port(network, 4840, DeterministicRng(1, "s"), blocklist)
        assert result.open_addresses == []
        assert result.excluded == 1

    def test_counts_noise_probes(self):
        network = make_network()
        result = sweep_port(
            network, 4840, DeterministicRng(1, "s"), extra_candidates=100
        )
        assert result.probed > 90
        assert result.open_count == 1

    def test_wrong_port_finds_nothing(self):
        network = make_network()
        result = sweep_port(network, 80, DeterministicRng(1, "s"))
        assert result.open_count == 0
