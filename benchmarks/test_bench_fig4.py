"""Regenerates Figure 4 (certificates vs. announced policies)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_fig4_certificate_conformance(benchmark, study_result):
    report = benchmark(run_experiment, "fig4", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
