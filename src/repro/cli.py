"""Command-line interface.

Usage::

    python -m repro.cli study                 # run all sweeps + experiments
    python -m repro.cli experiment fig3       # one experiment
    python -m repro.cli list                  # known experiments
    python -m repro.cli dataset out.jsonl     # anonymized dataset release
    python -m repro.cli policies              # print Table 1

The full study builds ~1900 hosts and scans them eight times; the
first invocation also generates the RSA key cache (several minutes).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.study import Study, StudyConfig, default_study_result
from repro.scanner.executor import EXECUTOR_NAMES, resolve_executor


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=20200830,
        help="study seed (default: 20200830, the paper's last sweep date)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "scan workers per sweep (default: 1 for --executor serial, "
            "all CPUs for thread/process, 32 in-flight coroutines for "
            "async; >1 alone implies --executor process)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help=(
            "scan backend: serial (default), thread, process, or async "
            "(results are identical; only wall-clock time changes)"
        ),
    )


def _study_result(args):
    try:
        executor, workers = resolve_executor(args.executor, args.workers)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    return default_study_result(args.seed, executor, workers)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Easing the Conscience with OPC UA' (IMC 2020)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the full study")
    _add_seed(study)

    experiment = commands.add_parser(
        "experiment", help="regenerate one table/figure"
    )
    experiment.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_seed(experiment)

    commands.add_parser("list", help="list known experiments")

    dataset = commands.add_parser(
        "dataset", help="write the anonymized dataset release"
    )
    dataset.add_argument("path", help="output JSONL path")
    _add_seed(dataset)

    commands.add_parser("policies", help="print the Table 1 policy catalogue")
    return parser


def cmd_study(args) -> int:
    result = _study_result(args)
    exact = total = 0
    for experiment_id in EXPERIMENTS:
        report = run_experiment(experiment_id, result)
        print(report.render())
        print()
        exact += report.exact_matches()
        total += len(report.comparisons)
    print(f"reproduction summary: {exact}/{total} metrics match the paper")
    return 0


def cmd_experiment(args) -> int:
    result = _study_result(args)
    report = run_experiment(args.experiment_id, result)
    print(report.render())
    return 0


def cmd_list(args) -> int:
    for experiment_id, function in EXPERIMENTS.items():
        summary = (function.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:<12} {summary}")
    return 0


def cmd_dataset(args) -> int:
    from repro.dataset import AnonymizationMap, anonymize_snapshot
    from repro.dataset.io import write_snapshots

    result = _study_result(args)
    mapping = AnonymizationMap()
    released = [
        anonymize_snapshot(snapshot, mapping) for snapshot in result.snapshots
    ]
    write_snapshots(args.path, released)
    records = sum(len(s.records) for s in released)
    print(f"wrote {len(released)} snapshots / {records} records to {args.path}")
    return 0


def cmd_policies(args) -> int:
    from repro.reporting.tables import render_table
    from repro.secure.policies import ALL_POLICIES

    rows = [
        [
            policy.name,
            policy.short_label,
            "/".join(policy.certificate_hash) or "-",
            f"[{policy.min_key_bits}; {policy.max_key_bits}]"
            if policy.provides_security
            else "-",
            "deprecated"
            if policy.is_deprecated
            else ("insecure" if not policy.provides_security else "current"),
        ]
        for policy in ALL_POLICIES
    ]
    print(
        render_table(
            ["Policy", "A", "Cert. hash", "Key bits", "Status"],
            rows,
            title="OPC UA security policies (paper Table 1)",
        )
    )
    return 0


_COMMANDS = {
    "study": cmd_study,
    "experiment": cmd_experiment,
    "list": cmd_list,
    "dataset": cmd_dataset,
    "policies": cmd_policies,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
