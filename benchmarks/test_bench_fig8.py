"""Regenerates Figure 8 (deficit breakdown by manufacturer and AS)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_fig8_deficit_breakdown(benchmark, study_result):
    report = benchmark(run_experiment, "fig8", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
