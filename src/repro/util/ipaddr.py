"""Minimal IPv4 arithmetic for the simulated address space.

Addresses are plain ``int`` (0 .. 2**32-1) everywhere inside the
simulator; the dotted-quad form exists only at presentation boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

MAX_IPV4 = 2**32 - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into an integer address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Render an integer address in dotted-quad notation."""
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


MAX_IPV6 = 2**128 - 1


def parse_ipv6(text: str) -> int:
    """Parse an IPv6 address (with ``::`` compression) to an integer."""
    if text.count("::") > 1:
        raise ValueError(f"invalid IPv6 address: {text!r}")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise ValueError(f"invalid IPv6 address: {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise ValueError(f"invalid IPv6 address: {text!r}")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise ValueError(f"invalid IPv6 address: {text!r}")
        try:
            part = int(group, 16)
        except ValueError:
            raise ValueError(f"invalid IPv6 address: {text!r}") from None
        value = (value << 16) | part
    return value


def format_ipv6(value: int) -> str:
    """Format an integer as IPv6 with best ``::`` compression."""
    if not 0 <= value <= MAX_IPV6:
        raise ValueError(f"IPv6 address out of range: {value}")
    groups = [(value >> (16 * (7 - i))) & 0xFFFF for i in range(8)]
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len >= 2:
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len :])
        return f"{head}::{tail}"
    return ":".join(f"{g:x}" for g in groups)


def format_address(value: int) -> str:
    """Render either address family (IPv4 below 2**32, IPv6 above)."""
    if 0 <= value <= MAX_IPV4:
        return format_ipv4(value)
    return format_ipv6(value)


def format_endpoint_host(value: int) -> str:
    """Address form usable inside a URL (IPv6 gets brackets)."""
    if 0 <= value <= MAX_IPV4:
        return format_ipv4(value)
    return f"[{format_ipv6(value)}]"


@dataclass(frozen=True)
class CidrBlock:
    """A CIDR prefix, e.g. ``CidrBlock.parse("10.2.0.0/16")``."""

    network: int
    prefix_len: int

    def __post_init__(self):
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"invalid prefix length: {self.prefix_len}")
        if self.network & ~self.mask:
            raise ValueError("network address has host bits set")

    @classmethod
    def parse(cls, text: str) -> "CidrBlock":
        addr, sep, plen = text.partition("/")
        if not sep:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(parse_ipv4(addr), int(plen))

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (MAX_IPV4 << (32 - self.prefix_len)) & MAX_IPV4

    @property
    def size(self) -> int:
        return 1 << (32 - self.prefix_len)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network + self.size - 1

    def __contains__(self, address: int) -> bool:
        return self.first <= address <= self.last

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.prefix_len}"

    def address_at(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside {self}")
        return self.network + index


def ipv4_in_block(address: int, block: CidrBlock) -> bool:
    """Convenience predicate mirroring ``address in block``."""
    return address in block
