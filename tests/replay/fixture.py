"""Deterministic builders behind the committed replay corpus.

The committed ``corpus.jsonl.gz`` was recorded once from a loopback
live scan of three targets — a full OPC UA engine, a junk TCP banner
service, and a refused port — and ``replay.digest.json`` pins the
snapshot digest that replaying it must reproduce.  Both the
regeneration script and the fast-tier digest tests build the scanner
from the functions here, so the identity and RNG streams the corpus
was recorded with are exactly the ones replay verifies against.
"""

from __future__ import annotations

from pathlib import Path

from repro.client import ClientIdentity
from repro.core.study import JunkTcpService
from repro.scanner.campaign import (
    LiveScanCampaign,
    LiveScanConfig,
    ReplayScanCampaign,
    ScannerIdentity,
)
from repro.scanner.limits import ScanRateLimiter, TraversalBudget
from repro.server import TcpServerHost
from repro.transport.capture import CaptureCorpus, CaptureRecorder
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed

FIXTURE_DIR = Path(__file__).resolve().parent
CORPUS_PATH = FIXTURE_DIR / "corpus.jsonl.gz"
DIGEST_PATH = FIXTURE_DIR / "replay.digest.json"

#: The snapshot date the fixture scan was labelled with.
LABEL = "2020-08-30"
#: Seed of the fixture scanner's RNG tree.
SEED = 20200830
#: Namespace of the campaign RNG (both record and replay).
RNG_NAMESPACE = "replay-fixture"

LOOPBACK = parse_ipv4("127.0.0.1")


def fixture_identity(keys) -> ScannerIdentity:
    """The scanner identity the corpus was recorded with.

    Everything is pinned (including the certificate validity start)
    so replay regenerates byte-identical request streams on any day.
    """
    certificate = make_self_signed(
        keys,
        common_name="research-scanner",
        application_uri="urn:repro:tests:replay-scanner",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=DeterministicRng(SEED, "replay-fixture-cert"),
    )
    return ScannerIdentity(
        ClientIdentity(
            application_uri="urn:repro:tests:replay-scanner",
            application_name=(
                "Research Scanner (contact: research@example.org)"
            ),
            certificate=certificate,
            private_key=keys.private,
        )
    )


def fixture_rng() -> DeterministicRng:
    return DeterministicRng(SEED, RNG_NAMESPACE)


def fixture_budget() -> TraversalBudget:
    # Zero inter-request delay: recorded advance(0.0) events replay
    # instantly, and recording does not spend wall time sleeping.
    return TraversalBudget(inter_request_delay_s=0.0)


def fixture_server(keys):
    """The OPC UA engine profile the corpus's first target serves."""
    from tests.server.helpers import build_server

    return build_server(DeterministicRng(99, "replay-profile"), keys)


def record_fixture_corpus(keys):
    """Re-record the fixture scan over real loopback sockets.

    Three targets, three outcomes: a genuine OPC UA grab (with
    traversal), a non-OPC-UA banner service, and a refused port.
    Returns ``(corpus, live_snapshot)`` so callers can assert the
    capture→replay round trip against the live records.
    """
    import socket as socketlib

    recorder = CaptureRecorder(
        {"seed": SEED, "rng_namespace": RNG_NAMESPACE}
    )
    campaign = LiveScanCampaign(
        fixture_identity(keys),
        fixture_rng(),
        config=LiveScanConfig(workers=4, traverse=True),
        limiter=ScanRateLimiter(
            rate_per_s=10_000, per_host_interval_s=0.0
        ),
        budget=fixture_budget(),
        recorder=recorder,
    )
    probe = socketlib.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        refused_port = probe.getsockname()[1]
    finally:
        probe.close()
    with TcpServerHost(fixture_server(keys)) as (_, ua_port):
        with TcpServerHost(JunkTcpService) as (_, junk_port):
            snapshot = campaign.run(
                [
                    (LOOPBACK, ua_port),
                    (LOOPBACK, junk_port),
                    (LOOPBACK, refused_port),
                ],
                label=LABEL,
            )
    return recorder.corpus(), snapshot


def replay_campaign(
    corpus: CaptureCorpus, keys, executor=None
) -> ReplayScanCampaign:
    """A replay campaign configured exactly like the recording."""
    return ReplayScanCampaign(
        corpus,
        fixture_identity(keys),
        fixture_rng(),
        executor=executor,
        budget=fixture_budget(),
        traverse=True,
    )
