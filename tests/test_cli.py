"""CLI tests (cheap commands only; `study` is covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.command == "study"
        assert args.seed == 20200830

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_experiment_accepts_known_id(self):
        args = build_parser().parse_args(["experiment", "fig3", "--seed", "7"])
        assert args.experiment_id == "fig3"
        assert args.seed == 7

    def test_dataset_needs_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset"])


class TestCheapCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "ipv6" in out

    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "Basic256Sha256" in out
        assert "deprecated" in out
