#!/usr/bin/env python3
"""Quickstart: build an OPC UA server, connect a client securely,
and read industrial process values — all with the repro stack.

Run:  python examples/quickstart.py
"""

from repro.client import ClientIdentity, UaClient
from repro.crypto.rsa import generate_rsa_key
from repro.secure.negotiation import ChannelSecurity
from repro.secure.policies import POLICY_BASIC256SHA256, POLICY_NONE
from repro.server import (
    EndpointConfig,
    Permissions,
    ServerConfig,
    UaServer,
    VariableNode,
)
from repro.server.addressspace import AddressSpace, NodeIds, ReferenceTypeIds
from repro.server.nodes import ObjectNode
from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.enums import MessageSecurityMode, UserTokenType
from repro.uabin.nodeid import NodeId
from repro.uabin.variant import Variant, VariantType
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed


class LoopbackStream:
    """Wire a client directly to a server connection, in-process."""

    def __init__(self, server: UaServer):
        self._connection = server.new_connection()
        self._inbox = bytearray()

    def write(self, data: bytes) -> None:
        self._inbox.extend(self._connection.receive(data))

    def read(self) -> bytes:
        out = bytes(self._inbox)
        self._inbox.clear()
        return out


def build_server(rng: DeterministicRng) -> UaServer:
    """A server with one public and one protected variable."""
    space = AddressSpace()
    ns = space.register_namespace("urn:quickstart:boiler")
    boiler = ObjectNode(
        node_id=NodeId(ns, "Boiler"),
        browse_name=QualifiedName(ns, "Boiler"),
        display_name=LocalizedText("Boiler"),
    )
    space.add_node(boiler, parent=NodeIds.ObjectsFolder,
                   reference_type=ReferenceTypeIds.Organizes)
    space.add_node(
        VariableNode(
            node_id=NodeId(ns, "Boiler/Temperature"),
            browse_name=QualifiedName(ns, "Temperature"),
            display_name=LocalizedText("Temperature"),
            value=Variant(72.5, VariantType.DOUBLE),
            permissions=Permissions.read_only_public(),
        ),
        parent=boiler.node_id,
    )
    space.add_node(
        VariableNode(
            node_id=NodeId(ns, "Boiler/Setpoint"),
            browse_name=QualifiedName(ns, "Setpoint"),
            display_name=LocalizedText("Setpoint"),
            value=Variant(80.0, VariantType.DOUBLE),
            permissions=Permissions(),  # authenticated users only
        ),
        parent=boiler.node_id,
    )

    keys = generate_rsa_key(1024, rng.substream("server-key"))
    certificate = make_self_signed(
        keys,
        common_name="quickstart-server",
        application_uri="urn:quickstart:server",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("server-cert"),
    )
    config = ServerConfig(
        application_uri="urn:quickstart:server",
        application_name="Quickstart Boiler Server",
        endpoint_url="opc.tcp://10.0.0.1:4840/",
        certificate=certificate,
        private_key=keys.private,
        endpoint_configs=[
            EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE),
            EndpointConfig(
                MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC256SHA256
            ),
        ],
        token_types=[UserTokenType.ANONYMOUS, UserTokenType.USERNAME],
        address_space=space,
    )
    config.authenticator.directory.add_user("operator", "secret")
    return UaServer(config, rng.substream("server"))


def main() -> None:
    rng = DeterministicRng(42, "quickstart")
    server = build_server(rng)

    keys = generate_rsa_key(1024, rng.substream("client-key"))
    identity = ClientIdentity(
        application_uri="urn:quickstart:client",
        application_name="Quickstart Client",
        certificate=make_self_signed(
            keys,
            common_name="quickstart-client",
            application_uri="urn:quickstart:client",
            not_before=parse_utc("2020-01-01"),
            hash_name="sha256",
            rng=rng.substream("client-cert"),
        ),
        private_key=keys.private,
    )

    client = UaClient(LoopbackStream(server), identity, rng.substream("client"))
    client.hello()
    client.open_secure_channel()  # discovery channel, policy None
    endpoints = client.get_endpoints()
    print(f"server offers {len(endpoints)} endpoints:")
    for endpoint in endpoints:
        policy = endpoint.security_policy_uri.rsplit("#", 1)[-1]
        print(f"  mode={endpoint.security_mode.name:<16} policy={policy}")

    # Reconnect on the encrypted endpoint.
    secure = max(endpoints, key=lambda e: e.security_level)
    client = UaClient(LoopbackStream(server), identity, rng.substream("c2"))
    client.hello()
    client.open_secure_channel(
        ChannelSecurity.for_endpoint(
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            identity,
            secure.server_certificate,
        )
    )
    client.create_session()
    client.activate_session_username("operator", "secret")

    ns = 1
    values = client.read_values(
        [NodeId(ns, "Boiler/Temperature"), NodeId(ns, "Boiler/Setpoint")]
    )
    print("\nover the encrypted channel, as 'operator':")
    print(f"  Temperature = {values[0].value.value}")
    print(f"  Setpoint    = {values[1].value.value}")
    client.close_session()
    print("\nquickstart complete: Basic256Sha256 + SignAndEncrypt end-to-end")


if __name__ == "__main__":
    main()
