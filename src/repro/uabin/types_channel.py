"""Secure-channel service set: OpenSecureChannel / CloseSecureChannel."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.uabin.enums import MessageSecurityMode, SecurityTokenRequestType
from repro.uabin.structs import RequestHeader, ResponseHeader, UaStruct


@dataclass
class ChannelSecurityToken(UaStruct):
    channel_id: int = 0
    token_id: int = 0
    created_at: datetime | None = None
    revised_lifetime: int = 0

    _fields_ = [
        ("channel_id", "uint32"),
        ("token_id", "uint32"),
        ("created_at", "datetime"),
        ("revised_lifetime", "uint32"),
    ]


@dataclass
class OpenSecureChannelRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    client_protocol_version: int = 0
    request_type: SecurityTokenRequestType = SecurityTokenRequestType.ISSUE
    security_mode: MessageSecurityMode = MessageSecurityMode.NONE
    client_nonce: bytes | None = None
    requested_lifetime: int = 3_600_000

    _fields_ = [
        ("request_header", RequestHeader),
        ("client_protocol_version", "uint32"),
        ("request_type", SecurityTokenRequestType),
        ("security_mode", MessageSecurityMode),
        ("client_nonce", "bytestring"),
        ("requested_lifetime", "uint32"),
    ]


@dataclass
class OpenSecureChannelResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    server_protocol_version: int = 0
    security_token: ChannelSecurityToken = field(default_factory=ChannelSecurityToken)
    server_nonce: bytes | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("server_protocol_version", "uint32"),
        ("security_token", ChannelSecurityToken),
        ("server_nonce", "bytestring"),
    ]


@dataclass
class CloseSecureChannelRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)

    _fields_ = [("request_header", RequestHeader)]


@dataclass
class CloseSecureChannelResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)

    _fields_ = [("response_header", ResponseHeader)]
