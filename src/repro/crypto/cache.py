"""Keyed memo caches for handshake-invariant crypto operations.

The simulated handshakes repeat the same expensive public-key math
over and over: every grab of a host re-verifies the same certificate
signature, every simulated server re-parses the scanner's one client
certificate, and identical sweeps across executor backends replay
identical modular exponentiations.  Those operations are pure
functions of their inputs, so memoizing them cannot change a single
output byte — it only removes repeated ``pow`` calls from the hot
path.

:class:`KeyedOpCache` is the building block: a bounded FIFO-evicting
dictionary whose keys carry *all* inputs of the memoized operation
(modulus, exponent, and message for RSA; the full DER for certificate
parsing), so distinct keys or inputs can never collide.  All caches
register themselves so profiling can report hit rates per cache
(:func:`cache_stats`), and :func:`clear_caches` restores a cold start
for measurements.

>>> cache = KeyedOpCache("doctest-squares", maxsize=2)
>>> cache.lookup((7,), lambda: 7 * 7)
49
>>> cache.lookup((7,), lambda: 0)  # hit: the compute thunk never runs
49
>>> cache.stats()
{'name': 'doctest-squares', 'size': 1, 'hits': 1, 'misses': 1, 'hit_rate': 0.5}
"""

from __future__ import annotations

import threading
from typing import Callable

_MISS = object()

#: Every live cache, in creation order, for stats reporting.
_REGISTRY: list["KeyedOpCache"] = []


class KeyedOpCache:
    """Bounded memo cache for pure, deterministic operations.

    Keys must be hashable tuples carrying every input of the cached
    operation.  Eviction is FIFO (insertion order), which keeps the
    cache's behaviour deterministic across runs — no clocks, no access
    recency.

    Mutations are guarded by a lock so the thread executor's workers
    can share one cache: unguarded FIFO eviction races two threads
    into deleting the same oldest key (``KeyError``).  The lock is
    never held while a missing value is computed, so concurrent misses
    on the same key may compute twice — harmless, because cached
    operations are pure functions of their keys.

    >>> cache = KeyedOpCache("doctest-demo", maxsize=1)
    >>> cache.lookup(("a",), lambda: 1)
    1
    >>> cache.lookup(("b",), lambda: 2)  # evicts ("a",): maxsize is 1
    2
    >>> cache.lookup(("a",), lambda: 3)  # recomputed after eviction
    3
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "_entries", "_lock")

    def __init__(self, name: str, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: dict = {}
        self._lock = threading.Lock()
        _REGISTRY.append(self)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """Cached value for ``key``, or ``None`` on a miss.

        Only for operations whose result is never ``None`` (RSA ops
        return ints); pair with :meth:`put`.  Use :meth:`lookup` when
        the result type is open.
        """
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return None
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key, value) -> None:
        entries = self._entries
        if key not in entries and len(entries) >= self.maxsize:
            del entries[next(iter(entries))]
        entries[key] = value

    def lookup(self, key, compute: Callable[[], object]):
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is not _MISS:
                self.hits += 1
                return value
            self.misses += 1
        value = compute()
        with self._lock:
            self._put_locked(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Counters plus the hit rate (0.0 when never looked up).

        >>> KeyedOpCache("doctest-cold").stats()["hit_rate"]
        0.0
        """
        lookups = self.hits + self.misses
        return {
            "name": self.name,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
        }


def cache_stats() -> list[dict]:
    """Stats for every registered cache, in creation order.

    >>> before = len(cache_stats())
    >>> _ = KeyedOpCache("doctest-registered")
    >>> len(cache_stats()) == before + 1
    True
    """
    return [cache.stats() for cache in _REGISTRY]


def clear_caches() -> None:
    """Empty every registered cache (cold-start for measurements)."""
    for cache in _REGISTRY:
        cache.clear()
