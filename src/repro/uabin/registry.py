"""ExtensionObject type registry.

Maps each service structure to its binary-encoding NodeId (namespace
0, the ``_Encoding_DefaultBinary`` ids from the OPC UA NodeSet) and
back, so message bodies can be wrapped/unwrapped generically.
"""

from __future__ import annotations

from repro.uabin.nodeid import NodeId
from repro.uabin.structs import DecodingError, ExtensionObject, UaStruct
from repro.uabin import types_attribute, types_channel, types_discovery
from repro.uabin import types_method, types_query, types_session, types_view

# Binary-encoding NodeIds from the standard NodeSet (OPC 10000-6 Annex).
BINARY_ENCODING_IDS: dict[type[UaStruct], int] = {
    types_method.ServiceFault: 397,
    types_discovery.FindServersRequest: 422,
    types_discovery.FindServersResponse: 425,
    types_discovery.GetEndpointsRequest: 428,
    types_discovery.GetEndpointsResponse: 431,
    types_channel.OpenSecureChannelRequest: 446,
    types_channel.OpenSecureChannelResponse: 449,
    types_channel.CloseSecureChannelRequest: 452,
    types_channel.CloseSecureChannelResponse: 455,
    types_session.CreateSessionRequest: 461,
    types_session.CreateSessionResponse: 464,
    types_session.ActivateSessionRequest: 467,
    types_session.ActivateSessionResponse: 470,
    types_session.CloseSessionRequest: 473,
    types_session.CloseSessionResponse: 476,
    types_view.BrowseRequest: 527,
    types_view.BrowseResponse: 530,
    types_view.BrowseNextRequest: 533,
    types_view.BrowseNextResponse: 536,
    types_attribute.ReadRequest: 631,
    types_attribute.ReadResponse: 634,
    types_attribute.WriteRequest: 673,
    types_attribute.WriteResponse: 676,
    types_method.CallRequest: 712,
    types_method.CallResponse: 715,
    types_session.AnonymousIdentityToken: 321,
    types_session.UserNameIdentityToken: 324,
    types_session.X509IdentityToken: 327,
    types_session.IssuedIdentityToken: 940,
    types_query.TranslateBrowsePathsRequest: 552,
    types_query.TranslateBrowsePathsResponse: 555,
    types_query.RegisterServerRequest: 437,
    types_query.RegisterServerResponse: 440,
}

_BY_ID: dict[int, type[UaStruct]] = {
    numeric: cls for cls, numeric in BINARY_ENCODING_IDS.items()
}


def register_struct(cls: type[UaStruct], numeric_id: int) -> None:
    """Register an additional structure (used by tests/extensions)."""
    BINARY_ENCODING_IDS[cls] = numeric_id
    _BY_ID[numeric_id] = cls


def encode_body_nodeid(cls: type[UaStruct]) -> NodeId:
    try:
        return NodeId(0, BINARY_ENCODING_IDS[cls])
    except KeyError:
        raise DecodingError(f"{cls.__name__} has no binary encoding id") from None


def lookup_struct(node_id: NodeId) -> type[UaStruct]:
    if node_id.namespace != 0 or not isinstance(node_id.identifier, int):
        raise DecodingError(f"unknown message type: {node_id.to_string()}")
    try:
        return _BY_ID[node_id.identifier]
    except KeyError:
        raise DecodingError(
            f"unknown message type: {node_id.to_string()}"
        ) from None


def make_extension_object(value: UaStruct) -> ExtensionObject:
    """Wrap a structure as an ExtensionObject with a binary body."""
    return ExtensionObject(
        type_id=encode_body_nodeid(type(value)), body=value.to_bytes(), encoding=1
    )


def decode_extension_object(ext: ExtensionObject) -> UaStruct | None:
    """Unwrap an ExtensionObject; None when there is no body."""
    if ext.body is None:
        return None
    cls = lookup_struct(ext.type_id)
    return cls.from_bytes(ext.body)
