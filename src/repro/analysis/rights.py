"""§5.4 — address-space access rights of the anonymous user (Figure 7).

Computes the complementary CDF the paper plots: for a fraction *x* of
hosts (x-axis), the fraction of nodes (y-axis) that at least ``x`` of
the accessible hosts expose readable / writable / executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scanner.records import HostRecord


@dataclass
class RightsCdf:
    hosts_analyzed: int = 0
    readable_fractions: list[float] = field(default_factory=list)
    writable_fractions: list[float] = field(default_factory=list)
    executable_fractions: list[float] = field(default_factory=list)

    def survival_value(self, series: str, host_fraction: float) -> float:
        """Node fraction exposed by at least ``host_fraction`` of hosts.

        Matches reading Figure 7 at x = host_fraction: sort the
        per-host fractions descending; take the value at the given
        quantile.
        """
        values = sorted(getattr(self, f"{series}_fractions"), reverse=True)
        if not values:
            return 0.0
        index = min(
            len(values) - 1, max(0, int(round(host_fraction * len(values))) - 1)
        )
        return values[index]

    def fraction_of_hosts_above(self, series: str, node_fraction: float) -> float:
        """Share of hosts exposing more than ``node_fraction`` of nodes."""
        values = getattr(self, f"{series}_fractions")
        if not values:
            return 0.0
        return sum(1 for v in values if v > node_fraction) / len(values)


def analyze_access_rights(records: list[HostRecord]) -> RightsCdf:
    cdf = RightsCdf()
    for record in records:
        if not record.anonymous_accessible() or record.nodes is None:
            continue
        summary = record.nodes
        cdf.hosts_analyzed += 1
        cdf.readable_fractions.append(summary.readable_fraction)
        cdf.writable_fractions.append(summary.writable_fraction)
        cdf.executable_fractions.append(summary.executable_fraction)
    return cdf
