import uuid
from datetime import datetime, timezone

from hypothesis import given, strategies as st

from repro.uabin import builtin
from repro.uabin.statuscodes import StatusCodes
from repro.util.binary import BinaryReader, BinaryWriter


def round_trip(type_name, value):
    w = BinaryWriter()
    builtin.write_value(w, type_name, value)
    r = BinaryReader(w.to_bytes())
    out = builtin.read_value(r, type_name)
    assert r.at_end()
    return out


class TestStrings:
    def test_simple(self):
        assert round_trip("string", "hello") == "hello"

    def test_empty_distinct_from_null(self):
        w = BinaryWriter()
        builtin.write_string(w, "")
        empty = w.to_bytes()
        w = BinaryWriter()
        builtin.write_string(w, None)
        null = w.to_bytes()
        assert empty != null
        assert round_trip("string", "") == ""
        assert round_trip("string", None) is None

    def test_null_is_minus_one(self):
        w = BinaryWriter()
        builtin.write_string(w, None)
        assert w.to_bytes() == b"\xff\xff\xff\xff"

    def test_unicode(self):
        assert round_trip("string", "zähler/µ") == "zähler/µ"

    @given(st.text(max_size=200))
    def test_round_trip_property(self, text):
        assert round_trip("string", text) == text


class TestByteStrings:
    def test_simple(self):
        assert round_trip("bytestring", b"\x00\x01") == b"\x00\x01"

    def test_null(self):
        assert round_trip("bytestring", None) is None

    @given(st.binary(max_size=200))
    def test_round_trip_property(self, data):
        assert round_trip("bytestring", data) == data


class TestDateTime:
    def test_round_trip(self):
        moment = datetime(2020, 8, 30, 1, 2, 3, tzinfo=timezone.utc)
        assert round_trip("datetime", moment) == moment

    def test_null_datetime(self):
        assert round_trip("datetime", None) is None


class TestGuid:
    def test_round_trip(self):
        value = uuid.UUID("12345678-9abc-def0-1234-56789abcdef0")
        assert round_trip("guid", value) == value

    def test_wire_format_is_little_endian_fields(self):
        # The Data1/2/3 fields are little-endian on the wire (bytes_le).
        value = uuid.UUID("01020304-0506-0708-090a-0b0c0d0e0f10")
        w = BinaryWriter()
        builtin.write_guid(w, value)
        assert w.to_bytes()[:4] == b"\x04\x03\x02\x01"


class TestStatusCode:
    def test_round_trip(self):
        assert round_trip("statuscode", StatusCodes.BadUserAccessDenied) == (
            StatusCodes.BadUserAccessDenied
        )

    def test_accepts_plain_int(self):
        w = BinaryWriter()
        builtin.write_statuscode(w, 0x80130000)
        out = builtin.read_statuscode(BinaryReader(w.to_bytes()))
        assert out == StatusCodes.BadSecurityChecksFailed

    def test_name_rendering(self):
        assert StatusCodes.BadSecurityChecksFailed.name == "BadSecurityChecksFailed"
        assert StatusCodes.Good.is_good
        assert not StatusCodes.Good.is_bad

    def test_unknown_code_renders_hex(self):
        from repro.uabin.statuscodes import lookup_status

        assert lookup_status(0x812345FF).name == "0x812345FF"

    def test_truthiness(self):
        assert StatusCodes.Good
        assert not StatusCodes.BadTimeout


class TestQualifiedName:
    def test_round_trip(self):
        value = builtin.QualifiedName(2, "Objects")
        assert round_trip("qualifiedname", value) == value

    def test_to_string(self):
        assert builtin.QualifiedName(2, "x").to_string() == "2:x"
        assert builtin.QualifiedName(0, "x").to_string() == "x"


class TestLocalizedText:
    def test_full(self):
        value = builtin.LocalizedText("Kessel", "de")
        assert round_trip("localizedtext", value) == value

    def test_text_only(self):
        value = builtin.LocalizedText("boiler")
        assert round_trip("localizedtext", value) == value

    def test_empty(self):
        value = builtin.LocalizedText()
        assert round_trip("localizedtext", value) == value

    @given(
        st.one_of(st.none(), st.text(max_size=40)),
        st.one_of(st.none(), st.text(max_size=8)),
    )
    def test_round_trip_property(self, text, locale):
        value = builtin.LocalizedText(text, locale)
        assert round_trip("localizedtext", value) == value


class TestDiagnosticInfo:
    def test_empty(self):
        value = builtin.DiagnosticInfo()
        assert round_trip("diagnosticinfo", value) == value

    def test_nested(self):
        value = builtin.DiagnosticInfo(
            symbolic_id=1,
            additional_info="context",
            inner_status=StatusCodes.BadInternalError,
            inner_diagnostic=builtin.DiagnosticInfo(symbolic_id=2),
        )
        assert round_trip("diagnosticinfo", value) == value


class TestArrays:
    def test_null_array(self):
        w = BinaryWriter()
        builtin.write_array(w, "int32", None)
        assert builtin.read_array(BinaryReader(w.to_bytes()), "int32") is None

    def test_empty_array(self):
        w = BinaryWriter()
        builtin.write_array(w, "int32", [])
        assert builtin.read_array(BinaryReader(w.to_bytes()), "int32") == []

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=50))
    def test_int32_arrays(self, values):
        w = BinaryWriter()
        builtin.write_array(w, "int32", values)
        assert builtin.read_array(BinaryReader(w.to_bytes()), "int32") == values
