"""Discovery service set: GetEndpoints and FindServers.

GetEndpoints is the first protocol message the scanner sends to every
responsive host; it requires no security and returns the endpoint
descriptions (including the server certificate) that drive the whole
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uabin.structs import RequestHeader, ResponseHeader, UaStruct
from repro.uabin.types_common import ApplicationDescription, EndpointDescription


@dataclass
class GetEndpointsRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    endpoint_url: str | None = None
    locale_ids: list[str] | None = None
    profile_uris: list[str] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("endpoint_url", "string"),
        ("locale_ids", ("array", "string")),
        ("profile_uris", ("array", "string")),
    ]


@dataclass
class GetEndpointsResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    endpoints: list[EndpointDescription] | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("endpoints", ("array", EndpointDescription)),
    ]


@dataclass
class FindServersRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    endpoint_url: str | None = None
    locale_ids: list[str] | None = None
    server_uris: list[str] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("endpoint_url", "string"),
        ("locale_ids", ("array", "string")),
        ("server_uris", ("array", "string")),
    ]


@dataclass
class FindServersResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    servers: list[ApplicationDescription] | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("servers", ("array", ApplicationDescription)),
    ]
