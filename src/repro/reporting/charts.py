"""Plain-text bar charts and CDF sketches for terminal output."""

from __future__ import annotations


def render_bars(
    data: dict[str, int | float], width: int = 50, title: str | None = None
) -> str:
    """Horizontal bars scaled to the maximum value."""
    out = []
    if title:
        out.append(title)
    if not data:
        return "\n".join(out + ["(no data)"])
    peak = max(data.values()) or 1
    label_width = max(len(str(label)) for label in data)
    for label, value in data.items():
        bar = "#" * max(1 if value else 0, round(width * value / peak))
        display = f"{value:.2f}" if isinstance(value, float) else str(value)
        out.append(f"{str(label).ljust(label_width)} |{bar} {display}")
    return "\n".join(out)


def render_cdf(
    fractions: list[float],
    label: str,
    points: int = 10,
) -> str:
    """Sketch a survival curve: host quantile -> node fraction."""
    if not fractions:
        return f"{label}: (no data)"
    values = sorted(fractions, reverse=True)
    out = [f"{label} (hosts -> share of nodes):"]
    for step in range(1, points + 1):
        quantile = step / points
        index = min(len(values) - 1, max(0, int(quantile * len(values)) - 1))
        bar = "*" * round(40 * values[index])
        out.append(f"  {quantile:4.0%} of hosts |{bar} {values[index]:.2f}")
    return "\n".join(out)
