"""View service set: Browse and BrowseNext.

The scanner's address-space traversal (paper §5.4, Figure 7) is a
breadth-first walk driven by Browse requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.enums import BrowseDirection, NodeClass
from repro.uabin.nodeid import ExpandedNodeId, NodeId
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.structs import RequestHeader, ResponseHeader, UaStruct


@dataclass
class ViewDescription(UaStruct):
    view_id: NodeId = field(default_factory=NodeId)
    timestamp: datetime | None = None
    view_version: int = 0

    _fields_ = [
        ("view_id", "nodeid"),
        ("timestamp", "datetime"),
        ("view_version", "uint32"),
    ]


@dataclass
class BrowseDescription(UaStruct):
    node_id: NodeId = field(default_factory=NodeId)
    browse_direction: BrowseDirection = BrowseDirection.FORWARD
    reference_type_id: NodeId = field(default_factory=NodeId)
    include_subtypes: bool = True
    node_class_mask: int = 0
    result_mask: int = 63

    _fields_ = [
        ("node_id", "nodeid"),
        ("browse_direction", BrowseDirection),
        ("reference_type_id", "nodeid"),
        ("include_subtypes", "boolean"),
        ("node_class_mask", "uint32"),
        ("result_mask", "uint32"),
    ]


@dataclass
class ReferenceDescription(UaStruct):
    reference_type_id: NodeId = field(default_factory=NodeId)
    is_forward: bool = True
    node_id: ExpandedNodeId = field(default_factory=ExpandedNodeId)
    browse_name: QualifiedName = field(default_factory=QualifiedName)
    display_name: LocalizedText = field(default_factory=LocalizedText)
    node_class: NodeClass = NodeClass.UNSPECIFIED
    type_definition: ExpandedNodeId = field(default_factory=ExpandedNodeId)

    _fields_ = [
        ("reference_type_id", "nodeid"),
        ("is_forward", "boolean"),
        ("node_id", "expandednodeid"),
        ("browse_name", "qualifiedname"),
        ("display_name", "localizedtext"),
        ("node_class", NodeClass),
        ("type_definition", "expandednodeid"),
    ]


@dataclass
class BrowseResult(UaStruct):
    status_code: StatusCode = field(default_factory=lambda: StatusCodes.Good)
    continuation_point: bytes | None = None
    references: list[ReferenceDescription] | None = None

    _fields_ = [
        ("status_code", "statuscode"),
        ("continuation_point", "bytestring"),
        ("references", ("array", ReferenceDescription)),
    ]


@dataclass
class BrowseRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    view: ViewDescription = field(default_factory=ViewDescription)
    requested_max_references_per_node: int = 0
    nodes_to_browse: list[BrowseDescription] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("view", ViewDescription),
        ("requested_max_references_per_node", "uint32"),
        ("nodes_to_browse", ("array", BrowseDescription)),
    ]


@dataclass
class BrowseResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    results: list[BrowseResult] | None = None
    diagnostic_infos: list | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("results", ("array", BrowseResult)),
        ("diagnostic_infos", ("array", "diagnosticinfo")),
    ]


@dataclass
class BrowseNextRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    release_continuation_points: bool = False
    continuation_points: list[bytes] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("release_continuation_points", "boolean"),
        ("continuation_points", ("array", "bytestring")),
    ]


@dataclass
class BrowseNextResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    results: list[BrowseResult] | None = None
    diagnostic_infos: list | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("results", ("array", BrowseResult)),
        ("diagnostic_infos", ("array", "diagnosticinfo")),
    ]
