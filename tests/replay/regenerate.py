"""Regenerate the committed replay corpus and its pinned digests.

Usage::

    PYTHONPATH=src python tests/replay/regenerate.py

Recording opens real loopback sockets, so the corpus bytes change on
every regeneration (wall-clock timestamps are part of what a capture
preserves).  Replaying the fresh corpus, however, must reproduce the
live snapshot byte-for-byte — this script asserts that round trip
before writing anything, then commits corpus and digests together.

Only regenerate after an *intentional* protocol or record-schema
change, and explain the refreshed fixture in the same PR: a replay
digest mismatch against an unchanged corpus is exactly the regression
this fixture exists to catch.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import os  # noqa: E402

os.environ.setdefault("REPRO_KEYCACHE", str(REPO_ROOT / ".keycache"))

from repro.core.golden import snapshot_digest  # noqa: E402
from repro.crypto.rsa import generate_rsa_key  # noqa: E402
from repro.transport.capture import read_corpus, write_corpus  # noqa: E402
from repro.util.rng import DeterministicRng  # noqa: E402

from tests.replay.fixture import (  # noqa: E402
    CORPUS_PATH,
    DIGEST_PATH,
    LABEL,
    SEED,
    record_fixture_corpus,
    replay_campaign,
)


def main() -> int:
    # The same 1024-bit key derivation the test session uses
    # (tests/conftest.py rsa_1024), so tests rebuild this scanner
    # without touching the corpus.
    keys = generate_rsa_key(
        1024, DeterministicRng(20200830, "tests").substream("rsa-1024")
    )
    corpus, live_snapshot = record_fixture_corpus(keys)
    # Stage next to the final path (same filesystem for os.replace),
    # and publish only after the round trip verifies — a failed
    # regeneration must not leave a corpus/digest pair that disagree.
    staged = CORPUS_PATH.with_name("corpus.staged.jsonl.gz")
    write_corpus(staged, corpus)
    reread = read_corpus(staged)

    snapshot = replay_campaign(reread, keys).run()
    digest = snapshot_digest(snapshot)
    live_digest = snapshot_digest(live_snapshot)
    if digest != live_digest:
        staged.unlink()
        raise SystemExit(
            "capture→replay round trip is not byte-identical "
            f"(live {live_digest[:12]}…, replay {digest[:12]}…); "
            "refusing to commit a corpus that does not reproduce "
            "its own recording"
        )
    os.replace(staged, CORPUS_PATH)
    payload = {
        "_comment": (
            "Replay digest of the committed loopback capture corpus. "
            "Regenerate with: PYTHONPATH=src python "
            "tests/replay/regenerate.py"
        ),
        "seed": SEED,
        "label": LABEL,
        "targets": len(reread.targets),
        "corpus_digest": reread.digest(),
        "digest": digest,
    }
    DIGEST_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {CORPUS_PATH} ({CORPUS_PATH.stat().st_size} bytes)")
    print(f"wrote {DIGEST_PATH}")
    print(f"replay digest: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
