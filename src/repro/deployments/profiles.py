"""Configuration archetypes: policy groups, mode sets, certificate classes.

The policy groups are the exact solution of the paper's Figure 3
marginals (supported / least-secure / most-secure counts per security
policy), derived in DESIGN.md §5:

=====  ======================  =====  ==========  ==========
group  policy set              count  least       most
=====  ======================  =====  ==========  ==========
PA     {N}                     270    N           N
P1     {N, D1}                 24     N           D1
P2     {N, D1, D2}             243    N           D2
P3     {N, D2}                 13     N           D2
P4     {N, D1, D2, S2}         435*   N           S2
P6     {N, S2}                 42     N           S2
P8     {N, D2, S2, S3}         8      N           S3
Q1     {D1, D2, S2}            13     D1          S2
Q2     {D2, S2}                50     D2          S2
Q3     {S2}                    16     S2          S2
=====  ======================  =====  ==========  ==========

(* 10 of the P4 hosts additionally announce S1, satisfying S1's
supported count of 10 with zero least/most appearances.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.secure.policies import (
    POLICY_AES128_SHA256_RSAOAEP,
    POLICY_AES256_SHA256_RSAPSS,
    POLICY_BASIC128RSA15,
    POLICY_BASIC256,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
    SecurityPolicy,
)
from repro.uabin.enums import MessageSecurityMode

N = MessageSecurityMode.NONE
S = MessageSecurityMode.SIGN
SE = MessageSecurityMode.SIGN_AND_ENCRYPT


@dataclass(frozen=True)
class PolicyGroup:
    """One archetypal security-policy configuration."""

    key: str
    policies: tuple[SecurityPolicy, ...]
    target_count: int

    @property
    def has_none(self) -> bool:
        return POLICY_NONE in self.policies


POLICY_GROUPS: dict[str, PolicyGroup] = {
    group.key: group
    for group in (
        PolicyGroup("PA", (POLICY_NONE,), 270),
        PolicyGroup("P1", (POLICY_NONE, POLICY_BASIC128RSA15), 24),
        PolicyGroup(
            "P2", (POLICY_NONE, POLICY_BASIC128RSA15, POLICY_BASIC256), 243
        ),
        PolicyGroup("P3", (POLICY_NONE, POLICY_BASIC256), 13),
        PolicyGroup(
            "P4",
            (
                POLICY_NONE,
                POLICY_BASIC128RSA15,
                POLICY_BASIC256,
                POLICY_BASIC256SHA256,
            ),
            425,
        ),
        # The 10 S1-announcing hosts are a separate group so the S1
        # supported count lands exactly.
        PolicyGroup(
            "P4s1",
            (
                POLICY_NONE,
                POLICY_BASIC128RSA15,
                POLICY_BASIC256,
                POLICY_AES128_SHA256_RSAOAEP,
                POLICY_BASIC256SHA256,
            ),
            10,
        ),
        PolicyGroup("P6", (POLICY_NONE, POLICY_BASIC256SHA256), 42),
        PolicyGroup(
            "P8",
            (
                POLICY_NONE,
                POLICY_BASIC256,
                POLICY_BASIC256SHA256,
                POLICY_AES256_SHA256_RSAPSS,
            ),
            8,
        ),
        PolicyGroup(
            "Q1", (POLICY_BASIC128RSA15, POLICY_BASIC256, POLICY_BASIC256SHA256), 13
        ),
        PolicyGroup("Q2", (POLICY_BASIC256, POLICY_BASIC256SHA256), 50),
        PolicyGroup("Q3", (POLICY_BASIC256SHA256,), 16),
    )
}

# Mode sets per policy group, solving Figure 3's mode marginals:
# supported N=1035/S=588/S&E=843; least 1035/28/51; most 270/1/843.
# Groups with several mode sets list (mode_set, count) splits.
MODE_SETS_BY_GROUP: dict[str, tuple[tuple[tuple[MessageSecurityMode, ...], int], ...]] = {
    "PA": (((N,), 270),),
    "P1": (((N, SE), 24),),
    "P2": (((N, SE), 118), ((N, S, SE), 125)),
    "P3": (((N, SE), 13),),
    "P4": (((N, S, SE), 425),),
    "P4s1": (((N, S, SE), 10),),
    "P6": (((N, SE), 42),),
    "P8": (((N, SE), 8),),
    "Q1": (((SE,), 13),),
    "Q2": (((SE,), 38), ((S, SE), 11), ((S,), 1)),
    "Q3": (((S, SE), 16),),
}


@dataclass(frozen=True)
class CertClass:
    """A certificate shape: signature hash × RSA key length."""

    key: str
    signature_hash: str
    key_bits: int

    def matches(self, policy: SecurityPolicy) -> bool:
        """Does a certificate of this class satisfy ``policy``?"""
        if not policy.provides_security:
            return True
        return (
            self.signature_hash in policy.certificate_hash
            and policy.key_bits_in_range(self.key_bits)
        )


CERT_CLASSES: dict[str, CertClass] = {
    cls.key: cls
    for cls in (
        CertClass("md5-1024", "md5", 1024),
        CertClass("sha1-1024", "sha1", 1024),
        CertClass("sha1-2048", "sha1", 2048),
        CertClass("sha256-2048", "sha256", 2048),
        CertClass("sha256-4096", "sha256", 4096),
    )
}
