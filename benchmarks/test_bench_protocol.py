"""Micro-benchmarks of the protocol substrate.

Not tied to a paper figure; these quantify the cost of the building
blocks the scan pipeline leans on (encoding, DER parsing, handshakes)
so regressions in the hot path are visible.
"""

import pytest

from repro.secure.channel import ClientSecureChannel, ServerSecureChannel
from repro.secure.policies import POLICY_BASIC256SHA256, POLICY_NONE
from repro.transport.messages import HEADER_SIZE
from repro.uabin.enums import MessageSecurityMode, SecurityTokenRequestType
from repro.uabin.types_channel import (
    ChannelSecurityToken,
    OpenSecureChannelRequest,
    OpenSecureChannelResponse,
)
from repro.uabin.types_discovery import GetEndpointsResponse
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed
from repro.x509.certificate import parse_certificate
from repro.crypto.rsa import generate_rsa_key


@pytest.fixture(scope="module")
def keys():
    rng = DeterministicRng(1234, "bench")
    return generate_rsa_key(2048, rng)


@pytest.fixture(scope="module")
def certificate(keys):
    rng = DeterministicRng(1235, "bench-cert")
    return make_self_signed(
        keys, "bench", "urn:bench", parse_utc("2020-01-01"), "sha256", rng
    )


def _sample_endpoints_message(certificate):
    from repro.server.endpoints import EndpointConfig, build_endpoint_descriptions
    from repro.uabin.enums import ApplicationType, UserTokenType

    endpoints = build_endpoint_descriptions(
        endpoint_url="opc.tcp://10.0.0.1:4840/",
        application_uri="urn:bench:server",
        product_uri=None,
        application_name="bench",
        application_type=ApplicationType.SERVER,
        endpoint_configs=[
            EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE),
            EndpointConfig(
                MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC256SHA256
            ),
        ],
        token_types=[UserTokenType.ANONYMOUS, UserTokenType.USERNAME],
        certificate_der=certificate.raw_der,
    )
    return GetEndpointsResponse(endpoints=endpoints)


def test_bench_encode_get_endpoints_response(benchmark, certificate):
    message = _sample_endpoints_message(certificate)
    data = benchmark(message.to_bytes)
    assert len(data) > 500


def test_bench_decode_get_endpoints_response(benchmark, certificate):
    data = _sample_endpoints_message(certificate).to_bytes()
    message = benchmark(GetEndpointsResponse.from_bytes, data)
    assert len(message.endpoints) == 2


def test_bench_parse_certificate(benchmark, certificate):
    parsed = benchmark(parse_certificate, certificate.raw_der)
    assert parsed.key_bits == 2048


def test_bench_secure_channel_handshake(benchmark, keys, certificate):
    """Full Basic256Sha256 OPN handshake (both halves)."""
    rng = DeterministicRng(77, "bench-handshake")

    def handshake():
        client = ClientSecureChannel(
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            rng,
            client_certificate=certificate,
            client_private_key=keys.private,
            server_certificate=certificate,
        )
        server = ServerSecureChannel(
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            rng,
            channel_id=1,
            server_certificate=certificate,
            server_private_key=keys.private,
        )
        opn = client.build_open_request(
            OpenSecureChannelRequest(
                request_type=SecurityTokenRequestType.ISSUE,
                security_mode=MessageSecurityMode.SIGN_AND_ENCRYPT,
            )
        )
        server.handle_open_request(opn[HEADER_SIZE:])
        response = server.build_open_response(
            OpenSecureChannelResponse(
                security_token=ChannelSecurityToken(channel_id=1, token_id=1)
            )
        )
        return client.handle_open_response(response[HEADER_SIZE:])

    response = benchmark(handshake)
    assert response.security_token.channel_id == 1


def test_bench_symmetric_message_round_trip(benchmark, keys, certificate):
    """Encrypt+decrypt one protected MSG chunk (SignAndEncrypt)."""
    rng = DeterministicRng(78, "bench-msg")
    client = ClientSecureChannel(
        POLICY_BASIC256SHA256,
        MessageSecurityMode.SIGN_AND_ENCRYPT,
        rng,
        client_certificate=certificate,
        client_private_key=keys.private,
        server_certificate=certificate,
    )
    server = ServerSecureChannel(
        POLICY_BASIC256SHA256,
        MessageSecurityMode.SIGN_AND_ENCRYPT,
        rng,
        channel_id=1,
        server_certificate=certificate,
        server_private_key=keys.private,
    )
    opn = client.build_open_request(
        OpenSecureChannelRequest(
            security_mode=MessageSecurityMode.SIGN_AND_ENCRYPT
        )
    )
    server.handle_open_request(opn[HEADER_SIZE:])
    response = server.build_open_response(
        OpenSecureChannelResponse(
            security_token=ChannelSecurityToken(channel_id=1, token_id=1)
        )
    )
    client.handle_open_response(response[HEADER_SIZE:])
    message = _sample_endpoints_message(certificate)

    def round_trip():
        frame = server.encode_message(message, request_id=1)
        decoded, _ = client.decode_message(frame[HEADER_SIZE:])
        return decoded

    decoded = benchmark(round_trip)
    assert len(decoded.endpoints) == 2
