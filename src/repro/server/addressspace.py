"""The address space: nodes, references, and the namespace table.

Namespaces carry the semantic hints the paper's classification
heuristic uses (§5.4): nodes under a namespace URI referencing an
industrial standard (e.g. IEC 61131-3) indicate a production system,
example-application namespaces indicate test systems.
"""

from __future__ import annotations


from repro.server.nodes import MethodNode, Node, ObjectNode, Reference, VariableNode
from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.nodeid import NodeId
from repro.uabin.variant import Variant, VariantType


class NodeIds:
    """Well-known NodeIds from the standard namespace (ns=0)."""

    RootFolder = NodeId(0, 84)
    ObjectsFolder = NodeId(0, 85)
    TypesFolder = NodeId(0, 86)
    ViewsFolder = NodeId(0, 87)
    Server = NodeId(0, 2253)
    Server_NamespaceArray = NodeId(0, 2255)
    Server_ServerArray = NodeId(0, 2254)
    Server_ServerStatus = NodeId(0, 2256)
    Server_SoftwareVersion = NodeId(0, 2264)
    # Type definitions
    FolderType = NodeId(0, 61)
    BaseObjectType = NodeId(0, 58)
    BaseDataVariableType = NodeId(0, 63)
    PropertyType = NodeId(0, 68)


class ReferenceTypeIds:
    Organizes = NodeId(0, 35)
    HasComponent = NodeId(0, 47)
    HasProperty = NodeId(0, 46)
    HasTypeDefinition = NodeId(0, 40)


STANDARD_NAMESPACE = "http://opcfoundation.org/UA/"


class AddressSpace:
    """Mutable node graph with a namespace table."""

    def __init__(self):
        self._nodes: dict[NodeId, Node] = {}
        self._namespaces: list[str] = [STANDARD_NAMESPACE]
        self._install_standard_nodes()

    # --- namespaces ----------------------------------------------------------

    @property
    def namespaces(self) -> list[str]:
        return list(self._namespaces)

    def register_namespace(self, uri: str) -> int:
        """Add a namespace URI; returns its index (idempotent)."""
        if uri in self._namespaces:
            return self._namespaces.index(uri)
        self._namespaces.append(uri)
        self._refresh_namespace_array()
        return len(self._namespaces) - 1

    def _refresh_namespace_array(self) -> None:
        node = self._nodes.get(NodeIds.Server_NamespaceArray)
        if isinstance(node, VariableNode):
            node.value = Variant(
                list(self._namespaces), VariantType.STRING, is_array=True
            )

    # --- nodes ---------------------------------------------------------------

    def add_node(self, node: Node, parent: NodeId | None = None,
                 reference_type: NodeId | None = None) -> Node:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node.node_id.to_string()}")
        self._nodes[node.node_id] = node
        if parent is not None:
            ref_type = reference_type or ReferenceTypeIds.HasComponent
            parent_node = self.get(parent)
            parent_node.add_reference(ref_type, node.node_id, is_forward=True)
            node.add_reference(ref_type, parent, is_forward=False)
        return node

    def get(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node: {node_id.to_string()}") from None

    def get_or_none(self, node_id: NodeId) -> Node | None:
        return self._nodes.get(node_id)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def all_nodes(self):
        return iter(self._nodes.values())

    def variables(self):
        return (n for n in self._nodes.values() if isinstance(n, VariableNode))

    def methods(self):
        return (n for n in self._nodes.values() if isinstance(n, MethodNode))

    def forward_references(self, node_id: NodeId) -> list[Reference]:
        return [r for r in self.get(node_id).references if r.is_forward]

    # --- standard nodes -------------------------------------------------------

    def _install_standard_nodes(self) -> None:
        root = ObjectNode(
            node_id=NodeIds.RootFolder,
            browse_name=QualifiedName(0, "Root"),
            display_name=LocalizedText("Root"),
            type_definition=NodeIds.FolderType,
        )
        self._nodes[root.node_id] = root
        for node_id, name in (
            (NodeIds.ObjectsFolder, "Objects"),
            (NodeIds.TypesFolder, "Types"),
            (NodeIds.ViewsFolder, "Views"),
        ):
            folder = ObjectNode(
                node_id=node_id,
                browse_name=QualifiedName(0, name),
                display_name=LocalizedText(name),
                type_definition=NodeIds.FolderType,
            )
            self._nodes[folder.node_id] = folder
            root.add_reference(ReferenceTypeIds.Organizes, node_id)
            folder.add_reference(ReferenceTypeIds.Organizes, root.node_id, False)

        server = ObjectNode(
            node_id=NodeIds.Server,
            browse_name=QualifiedName(0, "Server"),
            display_name=LocalizedText("Server"),
            type_definition=NodeIds.BaseObjectType,
        )
        self.add_node(server, parent=NodeIds.ObjectsFolder,
                      reference_type=ReferenceTypeIds.Organizes)

        from repro.server.access import Permissions

        namespace_array = VariableNode(
            node_id=NodeIds.Server_NamespaceArray,
            browse_name=QualifiedName(0, "NamespaceArray"),
            display_name=LocalizedText("NamespaceArray"),
            value=Variant([STANDARD_NAMESPACE], VariantType.STRING, is_array=True),
            permissions=Permissions.read_only_public(),
            type_definition=NodeIds.PropertyType,
        )
        self.add_node(namespace_array, parent=NodeIds.Server,
                      reference_type=ReferenceTypeIds.HasProperty)

        software_version = VariableNode(
            node_id=NodeIds.Server_SoftwareVersion,
            browse_name=QualifiedName(0, "SoftwareVersion"),
            display_name=LocalizedText("SoftwareVersion"),
            value=Variant("1.0.0", VariantType.STRING),
            permissions=Permissions.read_only_public(),
            type_definition=NodeIds.PropertyType,
        )
        self.add_node(software_version, parent=NodeIds.Server,
                      reference_type=ReferenceTypeIds.HasProperty)

    def set_software_version(self, version: str) -> None:
        """Set the SoftwareVersion the paper's §5.5 update analysis reads."""
        node = self.get(NodeIds.Server_SoftwareVersion)
        node.value = Variant(version, VariantType.STRING)

    def software_version(self) -> str:
        node = self.get(NodeIds.Server_SoftwareVersion)
        return node.value.value
