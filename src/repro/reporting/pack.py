"""DOI-ready study packs: sealed, self-verifying result bundles.

``repro pack KEY --out bundle/`` exports everything a reader of the
paper reproduction needs to check — or re-derive — one stored study,
without access to the store that produced it:

* ``study.json`` — the run-registry row: config, spec summary, sweep
  digests, shard-merge provenance;
* ``analysis.json`` — the full canonical
  :class:`~repro.analysis.pipeline.AnalysisReport` JSON plus its
  cross-backend digest;
* ``summary.txt`` and ``tables/<experiment>.txt`` — the rendered
  headline report and every regenerable paper artifact (figures and
  tables as the experiment registry prints them);
* ``environment.json`` — interpreter/platform snapshot (provenance
  only; results are platform-independent by construction);
* ``reproduce.sh`` — a script that re-runs the study from scratch and
  asserts the stored content digest;
* ``MANIFEST.json`` — a SHA-256 entry for every artifact, sealed with
  a digest over its own canonical JSON (the same idiom as the shard
  merge manifest, :func:`repro.scanner.shard.build_merge_manifest`).

:func:`verify_pack` re-checks the seal and every artifact hash, so
tampering with any byte of a published bundle — or with the manifest
itself — is detected:

    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro.core.config import StudyConfig
    >>> from repro.dataset.catalog import StudyCatalog
    >>> from repro.dataset.store import StudyStore
    >>> from repro.deployments.spec import PopulationSpec
    >>> from repro.scanner.records import HostRecord, MeasurementSnapshot
    >>> store = StudyStore(tempfile.mkdtemp())
    >>> sweep = MeasurementSnapshot(date="2020-07-06", records=[
    ...     HostRecord(ip=1, port=4840, asn=None, timestamp="2020-07-06",
    ...                tcp_open=True, is_opcua=True)])
    >>> key = store.save(StudyConfig(seed=1), PopulationSpec(), [sweep])
    >>> out = Path(tempfile.mkdtemp()) / "bundle"
    >>> pack = write_pack(StudyCatalog(store), key, out)
    >>> sorted(p.name for p in out.iterdir())[:3]
    ['MANIFEST.json', 'analysis.json', 'environment.json']
    >>> verify_pack(out)["study_key"] == key
    True
    >>> _ = (out / "analysis.json").write_text("{}")
    >>> try:
    ...     verify_pack(out)
    ... except PackIntegrityError as exc:
    ...     print(str(exc).split(":")[0])
    pack artifact analysis.json
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from pathlib import Path

from repro.core.golden import canonical_json

#: Version of the pack layout; bump when artifact names or manifest
#: shape change so old bundles fail loudly instead of misreading.
PACK_SCHEMA = 1

MANIFEST_FILE = "MANIFEST.json"


class PackIntegrityError(RuntimeError):
    """A pack exists but its seal or an artifact hash does not verify."""


def _seal(manifest: dict) -> dict:
    """Seal a manifest with a digest over its own canonical JSON."""
    manifest = dict(manifest)
    manifest.pop("manifest_digest", None)
    manifest["manifest_digest"] = hashlib.sha256(
        canonical_json(manifest).encode("utf-8")
    ).hexdigest()
    return manifest


def _sha256_file(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def environment_snapshot() -> dict:
    """Interpreter and platform provenance for the bundle.

    Recorded for the record, not for the result: every digest in the
    bundle is a pure function of the study inputs, so a different
    machine reproducing the study must land on the same digests.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def _reproduce_script(key: str, seed: int, digest: str) -> str:
    return f"""#!/bin/sh
# Reproduce study {key}
# from scratch and assert its content digest.  Requires the repro
# package on PYTHONPATH; writes into a fresh temporary store unless
# REPRO_STUDY_STORE is set.
set -eu
STORE="${{REPRO_STUDY_STORE:-$(mktemp -d)}}"
python -m repro.cli study --seed {seed} --store "$STORE"
python - "$STORE" <<'CHECK'
import sys
from repro.dataset.catalog import StudyCatalog

catalog = StudyCatalog.open(sys.argv[1])
info = catalog.describe("{key}")
assert info.digest == "{digest}", (
    "digest mismatch: " + info.digest)
print("reproduced OK:", info.digest)
CHECK
"""


def write_pack(
    catalog,
    key: str,
    out_dir: str | Path,
    *,
    executor: str = "serial",
    workers: int = 1,
) -> dict:
    """Export one stored study as a sealed bundle; returns the manifest.

    ``executor``/``workers`` select the
    :class:`~repro.scanner.executor.ScanExecutor` backend the analysis
    registry fans out through — the resulting ``analysis.json`` bytes
    are backend-independent (that equivalence is what its recorded
    digest pins).
    """
    from repro.core.experiments import EXPERIMENTS, run_experiment
    from repro.reporting.summary import render_analysis_report

    info = catalog.describe(key)
    result = catalog.result_for(key)
    report = result.run_analyses(executor=executor, workers=workers)

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "tables").mkdir(exist_ok=True)

    artifacts: dict[str, str] = {}

    def write(name: str, text: str) -> None:
        path = out / name
        path.write_text(text)
        artifacts[name] = _sha256_file(path)

    from repro.analysis.pipeline import jsonify

    write(
        "study.json",
        canonical_json(
            {
                "schema": PACK_SCHEMA,
                "run": jsonify(info),
            }
        )
        + "\n",
    )
    write(
        "analysis.json",
        canonical_json(
            {
                "report": report.to_json_dict(),
                "digest": report.digest(),
            }
        )
        + "\n",
    )
    write("summary.txt", render_analysis_report(report) + "\n")
    skipped = []
    for experiment_id in EXPERIMENTS:
        try:
            rendered = run_experiment(experiment_id, result).render()
        except Exception as exc:  # noqa: BLE001 — a reduced-population
            # study cannot regenerate spec-dependent experiments; the
            # bundle records the gap instead of failing the export.
            skipped.append(experiment_id)
            rendered = f"(not regenerable for this study: {exc})"
        write(f"tables/{experiment_id}.txt", rendered + "\n")
    write(
        "environment.json",
        canonical_json(environment_snapshot()) + "\n",
    )
    write(
        "reproduce.sh",
        _reproduce_script(key, info.seed, info.digest),
    )
    (out / "reproduce.sh").chmod(0o755)

    manifest = _seal(
        {
            "kind": "repro-study-pack",
            "schema": PACK_SCHEMA,
            "study_key": key,
            "study_digest": info.digest,
            "analysis_digest": report.digest(),
            "skipped_experiments": skipped,
            "artifacts": {
                name: {
                    "sha256": digest,
                    "bytes": (out / name).stat().st_size,
                }
                for name, digest in sorted(artifacts.items())
            },
        }
    )
    (out / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest


def verify_pack(bundle_dir: str | Path) -> dict:
    """Re-verify a pack's seal and every artifact hash.

    Returns the verified manifest.  Raises
    :class:`PackIntegrityError` when the manifest was edited (seal
    mismatch), an artifact is missing, or any artifact's bytes drifted
    from the recorded SHA-256.
    """
    bundle = Path(bundle_dir)
    path = bundle / MANIFEST_FILE
    if not path.exists():
        raise PackIntegrityError(f"no {MANIFEST_FILE} under {bundle}")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise PackIntegrityError(
            f"{MANIFEST_FILE} is not valid JSON ({exc})"
        ) from None
    recorded_seal = manifest.get("manifest_digest")
    if _seal(manifest).get("manifest_digest") != recorded_seal:
        raise PackIntegrityError(
            "manifest seal mismatch — MANIFEST.json was modified after "
            "sealing"
        )
    for name, entry in manifest.get("artifacts", {}).items():
        artifact = bundle / name
        if not artifact.exists():
            raise PackIntegrityError(f"pack artifact {name} is missing")
        if _sha256_file(artifact) != entry.get("sha256"):
            raise PackIntegrityError(
                f"pack artifact {name}: sha256 mismatch — the bundle "
                "was modified after sealing"
            )
    return manifest
