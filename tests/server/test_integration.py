"""End-to-end client ↔ server tests over the loopback stream."""

import pytest

from repro.client import ServiceFaultError, TransportRejectedError
from repro.secure.policies import (
    ALL_POLICIES,
    POLICY_BASIC128RSA15,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
)
from repro.server import EndpointConfig, ServerBehavior
from repro.server.addressspace import NodeIds
from repro.uabin.enums import (
    AttributeId,
    MessageSecurityMode,
    UserTokenType,
)
from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCodes
from repro.util.rng import DeterministicRng

from tests.server.helpers import build_client, build_server, secure_open

DEMO_NS = 1  # first registered namespace in the demo address space


@pytest.fixture()
def irng():
    return DeterministicRng(2020, "integration")


@pytest.fixture()
def server(irng, rsa_2048):
    return build_server(irng, rsa_2048)


@pytest.fixture()
def client(server, irng, rsa_1024):
    return build_client(server, irng, rsa_1024)


class TestTransportHandshake:
    def test_hello_ack(self, client):
        ack = client.hello()
        assert ack.protocol_version == 0

    def test_message_before_hello_rejected(self, server, irng, rsa_1024):
        client = build_client(server, irng.substream("x"), rsa_1024)
        client.connected = True  # skip hello on purpose
        with pytest.raises(Exception):
            client.open_secure_channel()


class TestGetEndpoints:
    def test_lists_configured_endpoints(self, client):
        client.hello()
        client.open_secure_channel()
        endpoints = client.get_endpoints()
        pairs = {(e.security_mode, e.security_policy_uri) for e in endpoints}
        assert len(pairs) == 3
        assert any(uri.endswith("#None") for _, uri in pairs)
        assert any(uri.endswith("#Basic256Sha256") for _, uri in pairs)

    def test_endpoints_carry_certificate(self, client):
        client.hello()
        client.open_secure_channel()
        endpoints = client.get_endpoints()
        assert all(e.server_certificate for e in endpoints)

    def test_endpoints_carry_token_types(self, client):
        client.hello()
        client.open_secure_channel()
        endpoints = client.get_endpoints()
        token_types = endpoints[0].token_types()
        assert UserTokenType.ANONYMOUS in token_types
        assert UserTokenType.USERNAME in token_types


class TestSecureChannels:
    @pytest.mark.parametrize(
        "policy",
        [p for p in ALL_POLICIES if p.provides_security],
        ids=lambda p: p.short_label,
    )
    def test_secure_channel_for_each_policy(self, irng, rsa_2048, rsa_1024, policy):
        configs = [
            EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE),
            EndpointConfig(MessageSecurityMode.SIGN_AND_ENCRYPT, policy),
        ]
        server = build_server(
            irng.substream(policy.short_label), rsa_2048, endpoint_configs=configs
        )
        client = build_client(server, irng.substream("c" + policy.short_label), rsa_1024)
        client.hello()
        client.open_secure_channel()
        endpoints = client.get_endpoints()
        secure = next(
            e for e in endpoints if e.security_policy_uri == policy.uri
        )
        # Re-connect on a fresh secure channel.
        client2 = build_client(server, irng.substream("c2" + policy.short_label), rsa_1024)
        client2.hello()
        secure_open(
            client2,
            policy,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            secure.server_certificate,
        )
        assert client2.get_endpoints()

    def test_unoffered_policy_rejected(self, server, client):
        client.hello()
        cert_der = server.config.certificate.raw_der
        with pytest.raises(TransportRejectedError) as excinfo:
            secure_open(
                client, POLICY_BASIC128RSA15, MessageSecurityMode.SIGN, cert_der
            )
        assert excinfo.value.status == StatusCodes.BadSecurityPolicyRejected

    def test_strict_server_rejects_self_signed_cert(self, irng, rsa_2048, rsa_1024):
        server = build_server(
            irng,
            rsa_2048,
            behavior=ServerBehavior(reject_untrusted_client_certs=True),
        )
        client = build_client(server, irng.substream("c"), rsa_1024)
        client.hello()
        cert_der = server.config.certificate.raw_der
        with pytest.raises(TransportRejectedError) as excinfo:
            secure_open(
                client, POLICY_BASIC256SHA256, MessageSecurityMode.SIGN, cert_der
            )
        assert excinfo.value.status == StatusCodes.BadSecurityChecksFailed

    def test_strict_server_still_allows_none_channel(self, irng, rsa_2048, rsa_1024):
        server = build_server(
            irng,
            rsa_2048,
            behavior=ServerBehavior(reject_untrusted_client_certs=True),
        )
        client = build_client(server, irng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()  # None policy is unaffected
        assert client.get_endpoints()


class TestSessions:
    def test_anonymous_session(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        response = client.activate_session()
        assert response.response_header.service_result.is_good

    def test_username_session(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        response = client.activate_session_username("operator", "secret")
        assert response.response_header.service_result.is_good

    def test_bad_password_rejected(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        with pytest.raises(ServiceFaultError) as excinfo:
            client.activate_session_username("operator", "wrong")
        assert excinfo.value.status == StatusCodes.BadUserAccessDenied

    def test_unknown_user_rejected(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        with pytest.raises(ServiceFaultError):
            client.activate_session_username("nobody", "x")

    def test_anonymous_disabled_rejected(self, irng, rsa_2048, rsa_1024):
        server = build_server(
            irng, rsa_2048, token_types=[UserTokenType.USERNAME]
        )
        client = build_client(server, irng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        client.create_session()
        with pytest.raises(ServiceFaultError) as excinfo:
            client.activate_session()
        assert excinfo.value.status == StatusCodes.BadIdentityTokenRejected

    def test_faulty_session_config_rejects_even_anonymous(
        self, irng, rsa_2048, rsa_1024
    ):
        server = build_server(
            irng, rsa_2048, behavior=ServerBehavior(faulty_session_config=True)
        )
        client = build_client(server, irng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        client.create_session()
        with pytest.raises(ServiceFaultError):
            client.activate_session()

    def test_session_required_for_browse(self, client):
        client.hello()
        client.open_secure_channel()
        with pytest.raises(ServiceFaultError) as excinfo:
            client.browse([NodeIds.RootFolder])
        assert excinfo.value.status == StatusCodes.BadSessionIdInvalid

    def test_activation_required_for_browse(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        with pytest.raises(ServiceFaultError) as excinfo:
            client.browse([NodeIds.RootFolder])
        assert excinfo.value.status == StatusCodes.BadSessionNotActivated

    def test_close_session_invalidates_token(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        client.activate_session()
        client.close_session()
        with pytest.raises(ServiceFaultError):
            client.browse([NodeIds.RootFolder])

    def test_secure_session_with_signatures(self, irng, rsa_2048, rsa_1024):
        server = build_server(irng, rsa_2048)
        client = build_client(server, irng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        cert_der = server.config.certificate.raw_der
        client2 = build_client(server, irng.substream("c2"), rsa_1024)
        client2.hello()
        secure_open(
            client2,
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            cert_der,
        )
        client2.create_session()
        response = client2.activate_session()
        assert response.response_header.service_result.is_good


class TestBrowseReadCall:
    @pytest.fixture()
    def active_client(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        client.activate_session()
        return client

    def test_browse_root(self, active_client):
        results = active_client.browse([NodeIds.RootFolder])
        names = {
            r.browse_name.name
            for r in results[0].references
        }
        assert {"Objects", "Types", "Views"} <= names

    def test_browse_objects_shows_demo(self, active_client):
        results = active_client.browse([NodeIds.ObjectsFolder])
        names = {r.browse_name.name for r in results[0].references}
        assert "Plant" in names
        assert "Server" in names

    def test_browse_unknown_node(self, active_client):
        results = active_client.browse([NodeId(9, 424242)])
        assert results[0].status_code == StatusCodes.BadNodeIdUnknown

    def test_read_public_value(self, active_client):
        values = active_client.read_values(
            [NodeId(DEMO_NS, "Plant/m3InflowPerHour")]
        )
        assert values[0].status.is_good
        assert values[0].value.value == 12.5

    def test_read_protected_value_denied_anonymously(self, active_client):
        values = active_client.read_values([NodeId(DEMO_NS, "Plant/Secret")])
        assert values[0].status == StatusCodes.BadUserAccessDenied

    def test_protected_value_readable_with_credentials(self, client):
        client.hello()
        client.open_secure_channel()
        client.create_session()
        client.activate_session_username("operator", "secret")
        values = client.read_values([NodeId(DEMO_NS, "Plant/Secret")])
        assert values[0].status.is_good
        assert values[0].value.value == "classified"

    def test_read_namespace_array(self, active_client):
        values = active_client.read_values([NodeIds.Server_NamespaceArray])
        assert values[0].status.is_good
        assert "urn:repro:tests:demo" in values[0].value.value

    def test_read_software_version(self, active_client):
        values = active_client.read_values([NodeIds.Server_SoftwareVersion])
        assert values[0].value.value == "3.10.1"

    def test_read_user_access_level(self, active_client):
        values = active_client.read_attributes(
            [
                (NodeId(DEMO_NS, "Plant/m3InflowPerHour"), AttributeId.USER_ACCESS_LEVEL),
                (NodeId(DEMO_NS, "Plant/rSetFillLevel"), AttributeId.USER_ACCESS_LEVEL),
                (NodeId(DEMO_NS, "Plant/Secret"), AttributeId.USER_ACCESS_LEVEL),
            ]
        )
        read_only, read_write, locked = (v.value.value for v in values)
        assert read_only & 0x01 and not read_only & 0x02
        assert read_write & 0x03 == 0x03
        assert locked == 0

    def test_read_user_executable(self, active_client):
        values = active_client.read_attributes(
            [(NodeId(DEMO_NS, "Plant/AddEndpoint"), AttributeId.USER_EXECUTABLE)]
        )
        assert values[0].value.value is True

    def test_call_allowed_method(self, active_client):
        result = active_client.call_method(
            NodeId(DEMO_NS, "Plant"), NodeId(DEMO_NS, "Plant/AddEndpoint")
        )
        assert result.status_code.is_good

    def test_call_unknown_method(self, active_client):
        result = active_client.call_method(
            NodeId(DEMO_NS, "Plant"), NodeId(DEMO_NS, "Plant/Nope")
        )
        assert result.status_code == StatusCodes.BadMethodInvalid

    def test_read_bad_attribute(self, active_client):
        values = active_client.read_attributes(
            [(NodeId(DEMO_NS, "Plant/m3InflowPerHour"), AttributeId.EXECUTABLE)]
        )
        assert values[0].status == StatusCodes.BadAttributeIdInvalid
