"""Regenerate the committed *hostile* replay corpus and its digests.

Usage::

    PYTHONPATH=src python tests/replay/regenerate_hostile.py

Separate from ``regenerate.py`` on purpose: the hostile corpus can be
refreshed (new personality, changed wrapper bytes) without
re-recording — and therefore without touching — the original
well-behaved corpus.  Same safety protocol: the fresh recording must
replay byte-identically before anything is written.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import os  # noqa: E402

os.environ.setdefault("REPRO_KEYCACHE", str(REPO_ROOT / ".keycache"))

from repro.core.golden import snapshot_digest  # noqa: E402
from repro.crypto.rsa import generate_rsa_key  # noqa: E402
from repro.transport.capture import read_corpus, write_corpus  # noqa: E402
from repro.util.rng import DeterministicRng  # noqa: E402

from tests.replay.fixture import LABEL, SEED  # noqa: E402
from tests.replay.hostile_fixture import (  # noqa: E402
    HOSTILE_CORPUS_PATH,
    HOSTILE_DIGEST_PATH,
    HOSTILE_PERSONALITIES,
    record_hostile_corpus,
    replay_hostile_campaign,
)


def main() -> int:
    # Same key derivation as the test session (tests/conftest.py
    # rsa_1024), so tests rebuild this scanner without the corpus.
    keys = generate_rsa_key(
        1024, DeterministicRng(20200830, "tests").substream("rsa-1024")
    )
    corpus, live_snapshot = record_hostile_corpus(keys)
    staged = HOSTILE_CORPUS_PATH.with_name("hostile_corpus.staged.jsonl.gz")
    write_corpus(staged, corpus)
    reread = read_corpus(staged)

    snapshot = replay_hostile_campaign(reread, keys).run()
    digest = snapshot_digest(snapshot)
    live_digest = snapshot_digest(live_snapshot)
    if digest != live_digest:
        staged.unlink()
        raise SystemExit(
            "capture→replay round trip is not byte-identical "
            f"(live {live_digest[:12]}…, replay {digest[:12]}…); "
            "refusing to commit a corpus that does not reproduce "
            "its own recording"
        )
    os.replace(staged, HOSTILE_CORPUS_PATH)
    payload = {
        "_comment": (
            "Replay digest of the committed hostile loopback capture "
            "corpus (device-zoo personalities). Regenerate with: "
            "PYTHONPATH=src python tests/replay/regenerate_hostile.py"
        ),
        "seed": SEED,
        "label": LABEL,
        "personalities": list(HOSTILE_PERSONALITIES),
        "targets": len(reread.targets),
        "corpus_digest": reread.digest(),
        "digest": digest,
    }
    HOSTILE_DIGEST_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"wrote {HOSTILE_CORPUS_PATH} "
        f"({HOSTILE_CORPUS_PATH.stat().st_size} bytes)"
    )
    print(f"wrote {HOSTILE_DIGEST_PATH}")
    print(f"hostile replay digest: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
