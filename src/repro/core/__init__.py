"""Study orchestration and the experiment registry.

``Study`` wires the whole pipeline together — population, timeline,
weekly scan campaigns — and caches the expensive result per seed so
tests, examples, and benchmarks can share one run.
``repro.core.experiments`` maps every table/figure of the paper to a
regeneration function.
"""

from repro.core.config import StudyConfig
from repro.core.study import Study, StudyResult, default_study_result

__all__ = ["Study", "StudyConfig", "StudyResult", "default_study_result"]
