"""``repro analyze``: the analysis registry from a stored study."""

from __future__ import annotations

import json

from repro.cli.options import add_seed, executor_from_args, require_store

# Mirrors repro.analysis.pipeline.ANALYSIS_NAMES (pinned by a CLI
# test) so building the parser never imports the analysis stack.
ANALYZE_CHOICES = (
    "modes", "policies", "negotiated", "certs", "reuse", "access",
    "rights", "deficits", "breakdown", "longitudinal", "ipv6",
    "anomalies",
)


def register(commands) -> None:
    analyze = commands.add_parser(
        "analyze",
        help="run the analysis registry from a stored study (no scan)",
    )
    add_seed(analyze)
    analyze.add_argument(
        "--analysis",
        action="append",
        choices=ANALYZE_CHOICES,
        metavar="NAME",
        help=(
            "run only this analysis (repeatable; default: all of "
            + ", ".join(ANALYZE_CHOICES)
            + ")"
        ),
    )
    analyze.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the canonical JSON report to PATH",
    )
    analyze.set_defaults(handler=cmd_analyze)


def cmd_analyze(args) -> int:
    """Analyses from a persisted store — never scans."""
    from repro.analysis.pipeline import run_analyses
    from repro.core.study import StudyConfig
    from repro.deployments.spec import build_default_spec
    from repro.reporting.summary import render_analysis_report

    store = require_store(args, "analyze needs a study store")
    config = StudyConfig(seed=args.seed)
    spec = build_default_spec()
    snapshots = store.load(config, spec)
    if snapshots is None:
        raise SystemExit(
            f"repro: error: no stored study for seed {args.seed} under "
            f"{store.root}; build one with "
            f"`repro study --store {store.root} --scan-only`"
        )
    executor, workers = executor_from_args(args)
    report = run_analyses(
        snapshots,
        spec,
        seed=args.seed,
        executor=executor,
        workers=workers,
        names=tuple(args.analysis) if args.analysis else None,
    )
    print(render_analysis_report(report))
    if args.json:
        payload = report.to_json_dict()
        payload["digest"] = report.digest()
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0
