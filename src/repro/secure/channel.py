"""Secure-channel state machines for client and server.

A secure channel protects chunks in two regimes (OPC 10000-6 §6):

* **Asymmetric** — OpenSecureChannel messages are always signed with
  the sender's private key and encrypted with the receiver's public
  key whenever the security policy is not None.  The sender's DER
  certificate travels in the security header; this is where the
  paper's scanner presents its self-signed certificate and where
  strict servers reject it (the 80 "secure channel" rejections of
  Table 2).
* **Symmetric** — after key derivation, MSG chunks are HMAC-signed
  (mode Sign) and additionally AES-CBC encrypted (SignAndEncrypt)
  with the derived key sets.

The channel object does not own the socket; it transforms between
service structures and protected frame bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.secure import crypto_suite
from repro.secure.keysets import SymmetricKeys, derive_channel_keys
from repro.secure.policies import POLICY_NONE, SecurityPolicy
from repro.transport.connection import encode_frame
from repro.transport.messages import HEADER_SIZE, MessageType
from repro.uabin.builtin import read_bytestring, read_string, write_bytestring, write_string
from repro.uabin.enums import MessageSecurityMode
from repro.uabin.nodeid import NodeId
from repro.uabin.registry import encode_body_nodeid, lookup_struct
from repro.uabin.structs import UaStruct
from repro.uabin.types_channel import (
    OpenSecureChannelRequest,
    OpenSecureChannelResponse,
)
from repro.util.binary import BinaryReader, BinaryWriter
from repro.x509.certificate import Certificate, parse_certificate
from repro.x509.fingerprint import sha1_thumbprint


class SecureChannelError(Exception):
    """Security processing failed (bad signature, bad padding, ...)."""


@dataclass
class _SequenceState:
    sequence_number: int = 0

    def next(self) -> int:
        self.sequence_number += 1
        return self.sequence_number


def encode_service(message: UaStruct) -> bytes:
    """Encode a service message body: type NodeId + structure."""
    writer = BinaryWriter()
    encode_body_nodeid(type(message)).encode(writer)
    message.encode(writer)
    return writer.to_bytes()


def decode_service(data) -> UaStruct:
    """Decode a service message body into its structure.

    ``data`` may be any buffer (``bytes`` or a zero-copy
    ``memoryview`` of a larger frame); decoded field values are always
    real ``bytes``/``str``, so no view outlives this call.
    """
    reader = BinaryReader(data)
    type_id = NodeId.decode(reader)
    cls = lookup_struct(type_id)
    message = cls.decode(reader)
    return message


def _write_sequence_header(writer: BinaryWriter, sequence: int, request_id: int) -> None:
    writer.write_uint32(sequence)
    writer.write_uint32(request_id)


class _ChannelBase:
    """State shared by both channel halves."""

    def __init__(self, policy: SecurityPolicy, mode: MessageSecurityMode):
        if policy is POLICY_NONE and mode != MessageSecurityMode.NONE:
            raise SecureChannelError("policy None requires security mode None")
        if policy is not POLICY_NONE and mode == MessageSecurityMode.NONE:
            raise SecureChannelError(
                "a security policy other than None requires Sign or SignAndEncrypt"
            )
        self.policy = policy
        self.mode = mode
        self.channel_id = 0
        self.token_id = 0
        self._send_seq = _SequenceState()
        self._local_keys: SymmetricKeys | None = None
        self._remote_keys: SymmetricKeys | None = None

    # --- symmetric MSG protection -------------------------------------------

    def encode_message(
        self,
        message: UaStruct,
        request_id: int,
        message_type: MessageType = MessageType.MESSAGE,
    ) -> bytes:
        """Protect one service message as a single final chunk."""
        body = encode_service(message)
        plain_writer = BinaryWriter()
        _write_sequence_header(plain_writer, self._send_seq.next(), request_id)
        plain_writer.write_bytes(body)
        plain = plain_writer.to_bytes()

        prefix_writer = BinaryWriter()
        prefix_writer.write_uint32(self.channel_id)
        prefix_writer.write_uint32(self.token_id)
        prefix = prefix_writer.to_bytes()

        if self.mode == MessageSecurityMode.NONE:
            return encode_frame(message_type, "F", prefix + plain)

        keys = self._local_keys
        if keys is None:
            raise SecureChannelError("symmetric keys not derived yet")
        sig_len = self.policy.signature_length

        if self.mode == MessageSecurityMode.SIGN:
            frame_size = HEADER_SIZE + len(prefix) + len(plain) + sig_len
            header = _frame_header_bytes(message_type, "F", frame_size)
            signed = crypto_suite.sym_sign(
                self.policy, keys, header + prefix + plain
            )
            return header + prefix + plain + signed

        # SignAndEncrypt: pad plain+padding_field+signature to block size.
        block = self.policy.sym_block_size
        padding_size = (block - (len(plain) + 1 + sig_len) % block) % block
        padding = bytes([padding_size]) * (padding_size + 1)
        encrypted_len = len(plain) + len(padding) + sig_len
        frame_size = HEADER_SIZE + len(prefix) + encrypted_len
        header = _frame_header_bytes(message_type, "F", frame_size)
        signature = crypto_suite.sym_sign(
            self.policy, keys, header + prefix + plain + padding
        )
        ciphertext = crypto_suite.sym_encrypt(
            self.policy, keys, plain + padding + signature
        )
        return header + prefix + ciphertext

    def decode_message(
        self,
        frame_body: bytes,
        message_type: MessageType = MessageType.MESSAGE,
    ) -> tuple[UaStruct, int]:
        """Unprotect a MSG/CLO chunk body; returns (message, request_id)."""
        reader = BinaryReader(frame_body)
        channel_id = reader.read_uint32()
        token_id = reader.read_uint32()
        if self.channel_id and channel_id != self.channel_id:
            raise SecureChannelError(
                f"unknown secure channel id: {channel_id}"
            )
        if self.token_id and token_id != self.token_id:
            raise SecureChannelError(f"unknown security token: {token_id}")
        if self.mode == MessageSecurityMode.NONE:
            # No signature to splice: the body decodes straight off a
            # zero-copy view of the frame.
            plain = reader.read_view(reader.remaining)
        else:
            # The signed paths concatenate with bytes prefixes below,
            # so the protected region must be materialized.
            rest = reader.read_bytes(reader.remaining)
            keys = self._remote_keys
            if keys is None:
                raise SecureChannelError("symmetric keys not derived yet")
            sig_len = self.policy.signature_length
            if self.mode == MessageSecurityMode.SIGN_AND_ENCRYPT:
                decrypted = crypto_suite.sym_decrypt(self.policy, keys, rest)
                signature = decrypted[-sig_len:]
                signed_part = decrypted[:-sig_len]
                header = _frame_header_bytes(
                    message_type, "F", HEADER_SIZE + 8 + len(rest)
                )
                if not crypto_suite.sym_verify(
                    self.policy,
                    keys,
                    header + frame_body[:8] + signed_part,
                    signature,
                ):
                    raise SecureChannelError("bad symmetric signature")
                padding_size = signed_part[-1]
                plain = signed_part[: len(signed_part) - padding_size - 1]
            else:  # SIGN
                signature = rest[-sig_len:]
                plain = rest[:-sig_len]
                header = _frame_header_bytes(
                    message_type, "F", HEADER_SIZE + len(frame_body)
                )
                if not crypto_suite.sym_verify(
                    self.policy,
                    keys,
                    header + frame_body[:8] + plain,
                    signature,
                ):
                    raise SecureChannelError("bad symmetric signature")

        plain_reader = BinaryReader(plain)
        plain_reader.read_uint32()  # sequence number
        request_id = plain_reader.read_uint32()
        message = decode_service(plain_reader.read_view(plain_reader.remaining))
        return message, request_id


def _frame_header_bytes(message_type: MessageType, chunk: str, size: int) -> bytes:
    writer = BinaryWriter()
    writer.write_bytes(message_type.value.encode("ascii"))
    writer.write_bytes(chunk.encode("ascii"))
    writer.write_uint32(size)
    return writer.to_bytes()


def _write_asym_security_header(
    writer: BinaryWriter,
    policy: SecurityPolicy,
    sender_cert_der: bytes | None,
    receiver_thumbprint: bytes | None,
) -> None:
    write_string(writer, policy.uri)
    write_bytestring(writer, sender_cert_der)
    write_bytestring(writer, receiver_thumbprint)


class ClientSecureChannel(_ChannelBase):
    """Client half of a secure channel."""

    def __init__(
        self,
        policy: SecurityPolicy,
        mode: MessageSecurityMode,
        rng: random.Random,
        client_certificate: Certificate | None = None,
        client_private_key=None,
        server_certificate: Certificate | None = None,
    ):
        super().__init__(policy, mode)
        self._rng = rng
        self.client_certificate = client_certificate
        self._client_key = client_private_key
        self.server_certificate = server_certificate
        self.client_nonce = b""
        if policy is not POLICY_NONE:
            if client_certificate is None or client_private_key is None:
                raise SecureChannelError(
                    "secure policies require a client certificate and key"
                )
            if server_certificate is None:
                raise SecureChannelError(
                    "secure policies require the server certificate"
                )

    def build_open_request(self, request: OpenSecureChannelRequest) -> bytes:
        """Produce the protected OPN frame for the request."""
        if self.policy is not POLICY_NONE:
            self.client_nonce = self._rng.getrandbits(
                self.policy.nonce_length * 8
            ).to_bytes(self.policy.nonce_length, "big")
            request.client_nonce = self.client_nonce

        security_writer = BinaryWriter()
        security_writer.write_uint32(self.channel_id)
        _write_asym_security_header(
            security_writer,
            self.policy,
            self.client_certificate.raw_der if self.client_certificate else None,
            sha1_thumbprint(self.server_certificate)
            if self.server_certificate and self.policy is not POLICY_NONE
            else None,
        )
        security_prefix = security_writer.to_bytes()

        plain_writer = BinaryWriter()
        _write_sequence_header(plain_writer, self._send_seq.next(), request_id=1)
        plain_writer.write_bytes(encode_service(request))
        plain = plain_writer.to_bytes()

        if self.policy is POLICY_NONE:
            return encode_frame(
                MessageType.OPEN_CHANNEL, "F", security_prefix + plain
            )
        return _protect_asymmetric(
            self.policy,
            security_prefix,
            plain,
            sender_key=self._client_key,
            receiver_key=self.server_certificate.public_key,
            rng=self._rng,
        )

    def handle_open_response(self, frame_body: bytes) -> OpenSecureChannelResponse:
        """Unprotect the OPN response, adopt channel ids, derive keys."""
        reader = BinaryReader(frame_body)
        reader.read_uint32()  # secure channel id (server-assigned, in token too)
        policy_uri = read_string(reader)
        if policy_uri != self.policy.uri:
            raise SecureChannelError(
                f"server answered with policy {policy_uri!r}"
            )
        sender_cert_der = read_bytestring(reader)
        read_bytestring(reader)  # receiver thumbprint (ours)
        protected = reader.read_bytes(reader.remaining)

        if self.policy is POLICY_NONE:
            plain = protected
        else:
            if sender_cert_der is None:
                raise SecureChannelError("server omitted its certificate")
            server_cert = parse_certificate(sender_cert_der)
            plain = _unprotect_asymmetric(
                self.policy,
                protected,
                receiver_key=self._client_key,
                sender_key=server_cert.public_key,
                signed_prefix=_reconstruct_opn_prefix(frame_body, len(protected)),
            )

        plain_reader = BinaryReader(plain)
        plain_reader.read_uint32()  # sequence
        plain_reader.read_uint32()  # request id
        message = decode_service(plain_reader.read_view(plain_reader.remaining))
        if not isinstance(message, OpenSecureChannelResponse):
            raise SecureChannelError(
                f"expected OpenSecureChannelResponse, got {type(message).__name__}"
            )
        self.channel_id = message.security_token.channel_id
        self.token_id = message.security_token.token_id
        if self.policy is not POLICY_NONE:
            server_nonce = message.server_nonce or b""
            client_keys, server_keys = derive_channel_keys(
                self.policy, self.client_nonce, server_nonce
            )
            self._local_keys = client_keys
            self._remote_keys = server_keys
        return message


class ServerSecureChannel(_ChannelBase):
    """Server half of a secure channel."""

    def __init__(
        self,
        policy: SecurityPolicy,
        mode: MessageSecurityMode,
        rng: random.Random,
        channel_id: int,
        server_certificate: Certificate | None = None,
        server_private_key=None,
    ):
        super().__init__(policy, mode)
        self._rng = rng
        self.channel_id = channel_id
        self.server_certificate = server_certificate
        self._server_key = server_private_key
        self.client_certificate: Certificate | None = None
        self.server_nonce = b""
        self._client_nonce = b""
        if policy is not POLICY_NONE and (
            server_certificate is None or server_private_key is None
        ):
            raise SecureChannelError(
                "secure policies require the server certificate and key"
            )

    def adopt_mode(self, mode: MessageSecurityMode) -> None:
        """Adopt the mode the client requested inside the OPN body.

        The requested mode travels *inside* the (possibly encrypted)
        chunk, so the server must construct the channel with a
        provisional mode and switch once the body is decoded.  The
        same policy/mode pairing rules as construction apply; a
        mismatch raises :class:`SecureChannelError` so the engine can
        answer with a truthful ``BadSecurityModeRejected``.
        """
        if self.policy is POLICY_NONE:
            if mode != MessageSecurityMode.NONE:
                raise SecureChannelError(
                    f"mode {mode.name} requires a security policy"
                )
        elif mode not in (
            MessageSecurityMode.SIGN,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
        ):
            raise SecureChannelError(
                f"policy {self.policy.name} requires Sign or "
                f"SignAndEncrypt, got {mode.name}"
            )
        self.mode = mode

    def handle_open_request(self, frame_body: bytes) -> OpenSecureChannelRequest:
        reader = BinaryReader(frame_body)
        reader.read_uint32()  # channel id (0 on first open)
        policy_uri = read_string(reader)
        if policy_uri != self.policy.uri:
            raise SecureChannelError(
                f"client requested policy {policy_uri!r} on a "
                f"{self.policy.name} channel"
            )
        sender_cert_der = read_bytestring(reader)
        read_bytestring(reader)  # our thumbprint
        protected = reader.read_bytes(reader.remaining)

        if self.policy is POLICY_NONE:
            plain = protected
        else:
            if sender_cert_der is None:
                raise SecureChannelError("client omitted its certificate")
            self.client_certificate = parse_certificate(sender_cert_der)
            plain = _unprotect_asymmetric(
                self.policy,
                protected,
                receiver_key=self._server_key,
                sender_key=self.client_certificate.public_key,
                signed_prefix=_reconstruct_opn_prefix(frame_body, len(protected)),
            )

        plain_reader = BinaryReader(plain)
        plain_reader.read_uint32()
        plain_reader.read_uint32()
        message = decode_service(plain_reader.read_view(plain_reader.remaining))
        if not isinstance(message, OpenSecureChannelRequest):
            raise SecureChannelError(
                f"expected OpenSecureChannelRequest, got {type(message).__name__}"
            )
        self._client_nonce = message.client_nonce or b""
        return message

    def build_open_response(self, response: OpenSecureChannelResponse) -> bytes:
        if self.policy is not POLICY_NONE:
            self.server_nonce = self._rng.getrandbits(
                self.policy.nonce_length * 8
            ).to_bytes(self.policy.nonce_length, "big")
            response.server_nonce = self.server_nonce

        self.token_id = response.security_token.token_id

        security_writer = BinaryWriter()
        security_writer.write_uint32(self.channel_id)
        _write_asym_security_header(
            security_writer,
            self.policy,
            self.server_certificate.raw_der if self.server_certificate else None,
            sha1_thumbprint(self.client_certificate)
            if self.client_certificate and self.policy is not POLICY_NONE
            else None,
        )
        security_prefix = security_writer.to_bytes()

        plain_writer = BinaryWriter()
        _write_sequence_header(plain_writer, self._send_seq.next(), request_id=1)
        plain_writer.write_bytes(encode_service(response))
        plain = plain_writer.to_bytes()

        if self.policy is not POLICY_NONE:
            client_keys, server_keys = derive_channel_keys(
                self.policy, self._client_nonce, self.server_nonce
            )
            self._local_keys = server_keys
            self._remote_keys = client_keys
            return _protect_asymmetric(
                self.policy,
                security_prefix,
                plain,
                sender_key=self._server_key,
                receiver_key=self.client_certificate.public_key,
                rng=self._rng,
            )
        return encode_frame(MessageType.OPEN_CHANNEL, "F", security_prefix + plain)


# --- asymmetric chunk protection ---------------------------------------------


def _protect_asymmetric(
    policy: SecurityPolicy,
    security_prefix: bytes,
    plain: bytes,
    sender_key,
    receiver_key,
    rng: random.Random,
) -> bytes:
    sig_len = crypto_suite.asym_signature_length(policy, sender_key)
    plain_block = crypto_suite.asym_plaintext_block_size(policy, receiver_key)
    cipher_block = receiver_key.byte_length

    padding_size = (plain_block - (len(plain) + 1 + sig_len) % plain_block) % plain_block
    padding = bytes([padding_size]) * (padding_size + 1)
    blocks = (len(plain) + len(padding) + sig_len) // plain_block
    encrypted_len = blocks * cipher_block
    frame_size = HEADER_SIZE + len(security_prefix) + encrypted_len
    header = _frame_header_bytes(MessageType.OPEN_CHANNEL, "F", frame_size)

    signature = crypto_suite.asym_sign(
        policy, sender_key, header + security_prefix + plain + padding, rng
    )
    ciphertext = crypto_suite.asym_encrypt(
        policy, receiver_key, plain + padding + signature, rng
    )
    return header + security_prefix + ciphertext


def _unprotect_asymmetric(
    policy: SecurityPolicy,
    protected: bytes,
    receiver_key,
    sender_key,
    signed_prefix: bytes,
) -> bytes:
    """Decrypt and verify an asymmetric chunk.

    ``signed_prefix`` is the reconstructed transport header plus the
    unencrypted security header — the sender's signature covers those
    bytes followed by the plaintext and padding.
    """
    try:
        decrypted = crypto_suite.asym_decrypt(policy, receiver_key, protected)
    except crypto_suite.SuiteError as exc:
        raise SecureChannelError(str(exc)) from exc
    sig_len = sender_key.byte_length
    if len(decrypted) < sig_len + 1:
        raise SecureChannelError("asymmetric chunk too short")
    signature = decrypted[-sig_len:]
    signed_part = decrypted[:-sig_len]
    if not crypto_suite.asym_verify(
        policy, sender_key, signed_prefix + signed_part, signature
    ):
        raise SecureChannelError("bad asymmetric signature")
    padding_size = signed_part[-1]
    if padding_size + 1 > len(signed_part):
        raise SecureChannelError("invalid asymmetric padding")
    return signed_part[: len(signed_part) - padding_size - 1]


def _reconstruct_opn_prefix(frame_body: bytes, protected_len: int) -> bytes:
    """Rebuild the bytes the sender signed before the encrypted part."""
    header = _frame_header_bytes(
        MessageType.OPEN_CHANNEL, "F", HEADER_SIZE + len(frame_body)
    )
    return header + frame_body[: len(frame_body) - protected_len]
