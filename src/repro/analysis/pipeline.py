"""Parallel analysis pipeline: registry, fan-out, merged report.

Every analysis the reproduction performs (§5 and Appendix B of the
paper) is registered here as a *pure task* over ``(snapshots, spec,
seed)`` — no network, no ground truth, no shared mutable state.  That
purity is what lets the tasks fan out through the same
:class:`~repro.scanner.executor.ScanExecutor` backends the scan engine
uses (serial / thread / fork-process): a fork worker computing the
certificate-reuse groups cannot perturb the longitudinal statistics
computed next to it, so every backend produces the same
:class:`AnalysisReport` — pinned, like the scan layer, by a canonical
JSON digest.

The registry is also the de-duplication point for the experiment
layer: :meth:`~repro.core.study.StudyResult.analysis` memoizes each
task's output per study, so ``fig2`` and ``sec55`` share one
longitudinal pass instead of re-deriving it, and ``repro analyze``
can regenerate everything from a stored study without scanning.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.access import analyze_access_control
from repro.analysis.anomalies import analyze_anomalies
from repro.analysis.breakdown import analyze_deficit_breakdown
from repro.analysis.certs import analyze_certificate_conformance
from repro.analysis.deficits import analyze_deficits
from repro.analysis.ipv6 import analyze_dual_stack_sample
from repro.analysis.longitudinal import analyze_longitudinal
from repro.analysis.modes import analyze_security_modes
from repro.analysis.negotiation import analyze_negotiated_security
from repro.analysis.policies import analyze_security_policies
from repro.analysis.reuse import analyze_certificate_reuse
from repro.analysis.rights import analyze_access_rights
from repro.deployments.spec import PopulationSpec
from repro.scanner.executor import build_executor
from repro.scanner.records import MeasurementSnapshot


@dataclass
class AnalysisContext:
    """Everything a registered analysis may read.  Nothing else."""

    snapshots: list[MeasurementSnapshot]
    spec: PopulationSpec | None
    seed: int
    _final_servers: list | None = field(default=None, repr=False)

    @property
    def final_snapshot(self) -> MeasurementSnapshot:
        return self.snapshots[-1]

    @property
    def final_servers(self) -> list:
        if self._final_servers is None:
            self._final_servers = self.final_snapshot.servers()
        return self._final_servers


AnalysisFn = Callable[[AnalysisContext], object]

#: name → task, in canonical report order.  Insertion order here *is*
#: the merge order of the report, independent of completion order.
ANALYSES: dict[str, AnalysisFn] = {
    "modes": lambda ctx: analyze_security_modes(ctx.final_servers),
    "policies": lambda ctx: analyze_security_policies(ctx.final_servers),
    "negotiated": lambda ctx: analyze_negotiated_security(ctx.final_servers),
    "certs": lambda ctx: analyze_certificate_conformance(ctx.final_servers),
    "reuse": lambda ctx: analyze_certificate_reuse(ctx.final_servers),
    "access": lambda ctx: analyze_access_control(ctx.final_servers),
    "rights": lambda ctx: analyze_access_rights(ctx.final_servers),
    "deficits": lambda ctx: analyze_deficits(ctx.final_servers),
    "breakdown": lambda ctx: analyze_deficit_breakdown(ctx.final_servers),
    "longitudinal": lambda ctx: analyze_longitudinal(ctx.snapshots),
    "ipv6": lambda ctx: analyze_dual_stack_sample(
        ctx.final_servers, ctx.seed
    ),
    "anomalies": lambda ctx: analyze_anomalies(ctx.snapshots, ctx.spec),
}

ANALYSIS_NAMES: tuple[str, ...] = tuple(ANALYSES)


@dataclass(frozen=True)
class AnalysisTask:
    """One registry entry as a :class:`ScanExecutor` work item."""

    name: str

    stage = 1

    @property
    def key(self) -> tuple[str, str]:
        return ("analysis", self.name)


def jsonify(value):
    """Canonical plain-JSON form of any analysis result object.

    * dataclasses → ``{field: …}`` in field order;
    * dicts → string keys (tuples joined with ``+``), sorted;
    * sets → sorted lists; tuples → lists; enums → their values.

    This is the serialization the cross-backend digest pins, so it
    must stay total over everything the registry can return.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not f.name.startswith("_")
        }
    if isinstance(value, enum.Enum):
        return jsonify(value.value)
    if isinstance(value, dict):
        items = [(_key_str(k), jsonify(v)) for k, v in value.items()]
        return dict(sorted(items))
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonify(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"analysis result of type {type(value).__name__} is not "
        "canonically serializable; extend pipeline.jsonify"
    )


def _key_str(key) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "+".join(_key_str(k) for k in key)
    if isinstance(key, enum.Enum):
        return str(key.value)
    return str(key)


@dataclass
class AnalysisReport:
    """The merged output of one pipeline run, canonically ordered.

    Results merge in registry order regardless of which worker
    finished first, and :meth:`digest` hashes the canonical JSON — the
    cross-backend equivalence pin.  The digest is a pure function of
    the contents::

        >>> empty = AnalysisReport(seed=1, sweeps=0)
        >>> empty.names()
        ()
        >>> empty.digest() == AnalysisReport(seed=1, sweeps=0).digest()
        True
        >>> empty.digest() == AnalysisReport(seed=2, sweeps=0).digest()
        False
    """

    seed: int
    sweeps: int
    results: dict[str, object] = field(default_factory=dict)

    def __getitem__(self, name: str):
        return self.results[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self.results)

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "sweeps": self.sweeps,
            "analyses": {
                name: jsonify(result)
                for name, result in self.results.items()
            },
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the backend-equivalence
        pin: serial, thread, and process pipelines must all match."""
        from repro.core.golden import canonical_json

        material = canonical_json(self.to_json_dict())
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


def run_analyses(
    snapshots: list[MeasurementSnapshot],
    spec: PopulationSpec | None = None,
    *,
    seed: int,
    executor: str = "serial",
    workers: int = 1,
    names: tuple[str, ...] | None = None,
) -> AnalysisReport:
    """Run the registered analyses, fanned out over an executor backend.

    ``names`` selects a subset (default: the full registry).  Results
    are merged in registry order regardless of which worker finished
    first, so the report — and its digest — is backend-independent.
    """
    selected = ANALYSIS_NAMES if names is None else tuple(names)
    unknown = [name for name in selected if name not in ANALYSES]
    if unknown:
        raise KeyError(
            f"unknown analyses {unknown}; known: {list(ANALYSIS_NAMES)}"
        )
    context = AnalysisContext(snapshots=snapshots, spec=spec, seed=seed)
    pool = build_executor(executor, workers)
    tasks = [AnalysisTask(name) for name in selected]

    def grab(task: AnalysisTask):
        return ANALYSES[task.name](context)

    completed = dict(
        (task.name, result)
        for task, result in pool.run(tasks, grab, lambda task, result: ())
    )
    report = AnalysisReport(seed=seed, sweeps=len(snapshots))
    for name in selected:
        report.results[name] = completed[name]
    return report
