"""The hostile capture corpus replays to its pinned digest.

Device-zoo personalities over the real-socket lane: a junk HTTP
banner, a mid-handshake drop around a live engine, and an engine
serving an expired certificate were recorded once over loopback
(``regenerate_hostile.py``); every CI run re-drives the full client
stack from that recording.  This proves the hostile wrappers behave
identically over real TCP and capture/replay — not just on the
simulated network the golden studies pin.
"""

from __future__ import annotations

import pytest

from repro.core.golden import snapshot_digest
from repro.scanner.executor import build_executor
from repro.util.simtime import parse_utc

from tests.replay.fixture import LABEL
from tests.replay.hostile_fixture import (
    HOSTILE_PERSONALITIES,
    replay_hostile_campaign,
)

pytestmark = pytest.mark.golden


def test_corpus_matches_committed_content_digest(
    committed_hostile_corpus, committed_hostile_digests
):
    assert (
        committed_hostile_corpus.digest()
        == committed_hostile_digests["corpus_digest"]
    )
    assert (
        len(committed_hostile_corpus.targets)
        == committed_hostile_digests["targets"]
    )
    assert committed_hostile_digests["personalities"] == list(
        HOSTILE_PERSONALITIES
    )


def test_serial_replay_matches_committed_digest(
    committed_hostile_corpus, committed_hostile_digests, rsa_1024
):
    snapshot = replay_hostile_campaign(
        committed_hostile_corpus, rsa_1024
    ).run()
    assert snapshot.date == LABEL
    assert (
        snapshot_digest(snapshot) == committed_hostile_digests["digest"]
    )


def test_replay_covers_all_three_pathologies(
    committed_hostile_corpus, rsa_1024
):
    """Junk banner, mid-handshake drop, expired cert — keep all three."""
    snapshot = replay_hostile_campaign(
        committed_hostile_corpus, rsa_1024
    ).run()
    assert len(snapshot.records) == 3
    by_outcome = {
        (record.tcp_open, record.is_opcua): record
        for record in snapshot.records
    }
    # The junk banner and the drop both answered without completing
    # the handshake; the expired-cert engine scanned fully.
    assert set(by_outcome) == {(True, False), (True, True)}

    junk_or_drop = [r for r in snapshot.records if not r.is_opcua]
    assert len(junk_or_drop) == 2
    categories = {r.error_category for r in junk_or_drop}
    # The banner is a protocol outcome (no connection category); the
    # drop is a vanished peer.
    assert categories == {None, "closed"}

    legacy = by_outcome[(True, True)]
    assert legacy.certificate is not None
    expiry = parse_utc(legacy.certificate.not_after)
    assert expiry < parse_utc(LABEL)  # expired at scan time
    assert legacy.session is not None and legacy.session.success


@pytest.mark.parametrize("backend", ["thread", "process", "async"])
def test_parallel_replay_is_byte_identical(
    committed_hostile_corpus, committed_hostile_digests, rsa_1024, backend
):
    executor = build_executor(backend, 4)
    snapshot = replay_hostile_campaign(
        committed_hostile_corpus, rsa_1024, executor=executor
    ).run()
    assert (
        snapshot_digest(snapshot) == committed_hostile_digests["digest"]
    )
