"""Regenerates the §5.2/§5.4 takeaways (85 % / 92 % deficit shares)."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_aggregate_deficits(benchmark, study_result):
    report = benchmark(run_experiment, "deficits", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
