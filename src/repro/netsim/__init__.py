"""A simulated IPv4 Internet.

Stands in for the public Internet the paper scanned: hosts registered
at integer IPv4 addresses inside autonomous-system CIDR blocks, TCP
connections as synchronous byte streams, a latency model driven by the
simulated clock, a zmap-style port sweep, and an opt-out blocklist
honouring the paper's ethics process (Appendix A).
"""

from repro.netsim.asn import AsRegistry, AutonomousSystem
from repro.netsim.blocklist import Blocklist
from repro.netsim.latency import LatencyModel
from repro.netsim.net import (
    ConnectionRefused,
    HostDown,
    SimNetwork,
    SimSocket,
)
from repro.netsim.tcpscan import PortScanResult, sweep_port

__all__ = [
    "AsRegistry",
    "AutonomousSystem",
    "Blocklist",
    "ConnectionRefused",
    "HostDown",
    "LatencyModel",
    "PortScanResult",
    "SimNetwork",
    "SimSocket",
    "sweep_port",
]
