"""A from-scratch OPC UA binary client.

Implements the exact grab sequence the paper's zgrab2 module performs:
Hello/Acknowledge, GetEndpoints, OpenSecureChannel (presenting a
self-signed certificate on secure policies), CreateSession /
ActivateSession, and address-space access via Browse/Read/Call.
"""

from repro.client.errors import (
    CONNECTION_FAILURE_CATEGORIES,
    ConnectionClosedError,
    ServiceFaultError,
    TransportRejectedError,
    UaClientError,
    categorize_error,
)
from repro.client.client import ClientIdentity, UaClient

__all__ = [
    "CONNECTION_FAILURE_CATEGORIES",
    "ClientIdentity",
    "ConnectionClosedError",
    "ServiceFaultError",
    "TransportRejectedError",
    "UaClient",
    "UaClientError",
    "categorize_error",
]
