"""zmap-style TCP port sweep of the simulated IPv4 space.

Like zmap, the sweep visits candidate addresses in a pseudo-random
permutation (so no AS sees a burst), honours the opt-out blocklist,
and reports only which addresses have the port open — the protocol
grab is a separate stage, exactly as in the paper's
zmap → zgrab2 pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.blocklist import Blocklist
from repro.netsim.net import SimNetwork
from repro.util.rng import DeterministicRng


@dataclass
class PortScanResult:
    """Outcome of one sweep."""

    port: int
    probed: int = 0
    excluded: int = 0
    open_addresses: list[int] = field(default_factory=list)

    @property
    def open_count(self) -> int:
        return len(self.open_addresses)


def sweep_port(
    network: SimNetwork,
    port: int,
    rng: DeterministicRng,
    blocklist: Blocklist | None = None,
    extra_candidates: int = 0,
) -> PortScanResult:
    """Probe every simulated host (plus noise candidates) on ``port``.

    The real zmap probes all 2**32 addresses; the simulation's address
    space is sparse, so the sweep enumerates all registered hosts plus
    ``extra_candidates`` random unpopulated addresses (which exercise
    the "nothing there" path like the real sweep's overwhelming
    majority of probes).
    """
    blocklist = blocklist or Blocklist()
    candidates = [host.address for host in network.hosts()]
    probe_rng = rng.substream(f"sweep-{port}")
    for _ in range(extra_candidates):
        candidates.append(probe_rng.randrange(2**32))
    # zmap randomizes probe order over the whole space.
    candidates = probe_rng.shuffled(candidates)

    result = PortScanResult(port=port)
    seen: set[int] = set()
    for address in candidates:
        if address in seen:
            continue
        seen.add(address)
        if address in blocklist:
            result.excluded += 1
            continue
        result.probed += 1
        if network.syn(address, port):
            result.open_addresses.append(address)
    result.open_addresses.sort()
    return result
