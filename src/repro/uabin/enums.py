"""Enumerations from the OPC UA services specification (OPC 10000-4).

``MessageSecurityMode`` and ``UserTokenType`` are the two enums the
paper's analysis pivots on: the former is Figure 3's x-axis, the
latter Figure 6's and Table 2's.
"""

from __future__ import annotations

import enum


class MessageSecurityMode(enum.IntEnum):
    """Whether messages are signed and/or encrypted on a channel."""

    INVALID = 0
    NONE = 1
    SIGN = 2
    SIGN_AND_ENCRYPT = 3

    @property
    def short_label(self) -> str:
        return {
            MessageSecurityMode.INVALID: "?",
            MessageSecurityMode.NONE: "N",
            MessageSecurityMode.SIGN: "S",
            MessageSecurityMode.SIGN_AND_ENCRYPT: "S&E",
        }[self]

    @property
    def security_rank(self) -> int:
        """Ordering used for the 'least/most secure mode' analysis."""
        return {
            MessageSecurityMode.INVALID: -1,
            MessageSecurityMode.NONE: 0,
            MessageSecurityMode.SIGN: 1,
            MessageSecurityMode.SIGN_AND_ENCRYPT: 2,
        }[self]


class UserTokenType(enum.IntEnum):
    """How a client authenticates during session activation."""

    ANONYMOUS = 0
    USERNAME = 1
    CERTIFICATE = 2
    ISSUED_TOKEN = 3

    @property
    def short_label(self) -> str:
        return {
            UserTokenType.ANONYMOUS: "anon.",
            UserTokenType.USERNAME: "cred.",
            UserTokenType.CERTIFICATE: "cert.",
            UserTokenType.ISSUED_TOKEN: "token",
        }[self]


class ApplicationType(enum.IntEnum):
    SERVER = 0
    CLIENT = 1
    CLIENT_AND_SERVER = 2
    DISCOVERY_SERVER = 3


class SecurityTokenRequestType(enum.IntEnum):
    ISSUE = 0
    RENEW = 1


class NodeClass(enum.IntFlag):
    UNSPECIFIED = 0
    OBJECT = 1
    VARIABLE = 2
    METHOD = 4
    OBJECT_TYPE = 8
    VARIABLE_TYPE = 16
    REFERENCE_TYPE = 32
    DATA_TYPE = 64
    VIEW = 128


class BrowseDirection(enum.IntEnum):
    FORWARD = 0
    INVERSE = 1
    BOTH = 2


class BrowseResultMask(enum.IntFlag):
    NONE = 0
    REFERENCE_TYPE_ID = 1
    IS_FORWARD = 2
    NODE_CLASS = 4
    BROWSE_NAME = 8
    DISPLAY_NAME = 16
    TYPE_DEFINITION = 32
    ALL = 63


class TimestampsToReturn(enum.IntEnum):
    SOURCE = 0
    SERVER = 1
    BOTH = 2
    NEITHER = 3


class AttributeId(enum.IntEnum):
    """Node attributes addressable by the Read service (OPC 10000-3)."""

    NODE_ID = 1
    NODE_CLASS = 2
    BROWSE_NAME = 3
    DISPLAY_NAME = 4
    DESCRIPTION = 5
    WRITE_MASK = 6
    USER_WRITE_MASK = 7
    IS_ABSTRACT = 8
    SYMMETRIC = 9
    INVERSE_NAME = 10
    CONTAINS_NO_LOOPS = 11
    EVENT_NOTIFIER = 12
    VALUE = 13
    DATA_TYPE = 14
    VALUE_RANK = 15
    ARRAY_DIMENSIONS = 16
    ACCESS_LEVEL = 17
    USER_ACCESS_LEVEL = 18
    MINIMUM_SAMPLING_INTERVAL = 19
    HISTORIZING = 20
    EXECUTABLE = 21
    USER_EXECUTABLE = 22


class AccessLevel(enum.IntFlag):
    """Bit mask for the AccessLevel/UserAccessLevel attributes."""

    NONE = 0
    CURRENT_READ = 1
    CURRENT_WRITE = 2
    HISTORY_READ = 4
    HISTORY_WRITE = 8
    SEMANTIC_CHANGE = 16
    STATUS_WRITE = 32
    TIMESTAMP_WRITE = 64
