"""OPC UA binary encoding (OPC 10000-6) and service data types.

Implements the subset of the OPC UA type system the study exercises:
all 25 built-in types, the six NodeId encodings, variants/data values,
and the service structures for discovery, secure-channel, session,
browse, read, and call services.  Structures use a small declarative
codec (``_fields_`` tables) so every message is defined in one place.
"""

from repro.uabin.enums import (
    ApplicationType,
    AttributeId,
    BrowseDirection,
    BrowseResultMask,
    MessageSecurityMode,
    NodeClass,
    SecurityTokenRequestType,
    TimestampsToReturn,
    UserTokenType,
)
from repro.uabin.nodeid import ExpandedNodeId, NodeId
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.variant import DataValue, Variant, VariantType
from repro.uabin.structs import (
    DecodingError,
    ExtensionObject,
    UaStruct,
    decode_struct,
    encode_struct,
)
from repro.uabin.registry import (
    decode_extension_object,
    encode_body_nodeid,
    lookup_struct,
    make_extension_object,
    register_struct,
)

__all__ = [
    "ApplicationType",
    "AttributeId",
    "BrowseDirection",
    "BrowseResultMask",
    "DataValue",
    "DecodingError",
    "ExpandedNodeId",
    "ExtensionObject",
    "MessageSecurityMode",
    "NodeClass",
    "NodeId",
    "SecurityTokenRequestType",
    "StatusCode",
    "StatusCodes",
    "TimestampsToReturn",
    "UaStruct",
    "UserTokenType",
    "Variant",
    "VariantType",
    "decode_extension_object",
    "decode_struct",
    "encode_body_nodeid",
    "encode_struct",
    "lookup_struct",
    "make_extension_object",
    "register_struct",
]
