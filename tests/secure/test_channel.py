"""Client/server secure-channel interop across every policy and mode."""

import pytest

from repro.secure.channel import (
    ClientSecureChannel,
    SecureChannelError,
    ServerSecureChannel,
    decode_service,
    encode_service,
)
from repro.secure.policies import (
    ALL_POLICIES,
    POLICY_BASIC128RSA15,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
)
from repro.transport.messages import HEADER_SIZE
from repro.uabin.enums import MessageSecurityMode, SecurityTokenRequestType
from repro.uabin.types_channel import (
    ChannelSecurityToken,
    OpenSecureChannelRequest,
    OpenSecureChannelResponse,
)
from repro.uabin.types_discovery import GetEndpointsRequest, GetEndpointsResponse
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed


@pytest.fixture(scope="module")
def channel_certs(rsa_1024, rsa_2048):
    rng = DeterministicRng(77, "channel-tests")
    client_cert = make_self_signed(
        rsa_1024,
        common_name="scanner",
        application_uri="urn:scanner",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("client"),
    )
    server_cert = make_self_signed(
        rsa_2048,
        common_name="server",
        application_uri="urn:server",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("server"),
    )
    return client_cert, rsa_1024.private, server_cert, rsa_2048.private


def handshake(policy, mode, channel_certs):
    client_cert, client_key, server_cert, server_key = channel_certs
    rng = DeterministicRng(5, f"hs-{policy.short_label}-{mode}")
    secure = policy is not POLICY_NONE
    client = ClientSecureChannel(
        policy,
        mode,
        rng.substream("client"),
        client_certificate=client_cert if secure else None,
        client_private_key=client_key if secure else None,
        server_certificate=server_cert if secure else None,
    )
    server = ServerSecureChannel(
        policy,
        mode,
        rng.substream("server"),
        channel_id=99,
        server_certificate=server_cert if secure else None,
        server_private_key=server_key if secure else None,
    )
    opn = client.build_open_request(
        OpenSecureChannelRequest(
            request_type=SecurityTokenRequestType.ISSUE, security_mode=mode
        )
    )
    request = server.handle_open_request(opn[HEADER_SIZE:])
    assert request.security_mode == mode
    response_frame = server.build_open_response(
        OpenSecureChannelResponse(
            security_token=ChannelSecurityToken(channel_id=99, token_id=7)
        )
    )
    response = client.handle_open_response(response_frame[HEADER_SIZE:])
    assert response.security_token.channel_id == 99
    assert client.channel_id == 99
    assert client.token_id == 7
    return client, server


MODE_FOR = {
    True: [MessageSecurityMode.SIGN, MessageSecurityMode.SIGN_AND_ENCRYPT],
    False: [MessageSecurityMode.NONE],
}


def all_policy_mode_pairs():
    pairs = []
    for policy in ALL_POLICIES:
        for mode in MODE_FOR[policy is not POLICY_NONE]:
            pairs.append((policy, mode))
    return pairs


class TestHandshake:
    @pytest.mark.parametrize(
        "policy,mode",
        all_policy_mode_pairs(),
        ids=lambda v: getattr(v, "short_label", None) or getattr(v, "name", v),
    )
    def test_open_channel(self, policy, mode, channel_certs):
        handshake(policy, mode, channel_certs)

    def test_server_sees_client_certificate(self, channel_certs):
        client, server = handshake(
            POLICY_BASIC256SHA256, MessageSecurityMode.SIGN, channel_certs
        )
        assert server.client_certificate is not None
        assert server.client_certificate.subject.common_name == "scanner"


class TestMessageExchange:
    @pytest.mark.parametrize(
        "policy,mode",
        all_policy_mode_pairs(),
        ids=lambda v: getattr(v, "short_label", None) or getattr(v, "name", v),
    )
    def test_request_round_trip(self, policy, mode, channel_certs):
        client, server = handshake(policy, mode, channel_certs)
        request = GetEndpointsRequest(endpoint_url="opc.tcp://10.0.0.1:4840/")
        frame = client.encode_message(request, request_id=42)
        message, request_id = server.decode_message(frame[HEADER_SIZE:])
        assert message == request
        assert request_id == 42

        response = GetEndpointsResponse(endpoints=[])
        response_frame = server.encode_message(response, request_id=42)
        decoded, rid = client.decode_message(response_frame[HEADER_SIZE:])
        assert decoded == response
        assert rid == 42

    def test_encrypted_frames_hide_plaintext(self, channel_certs):
        client, _server = handshake(
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            channel_certs,
        )
        url = "opc.tcp://very-secret-host:4840/"
        frame = client.encode_message(
            GetEndpointsRequest(endpoint_url=url), request_id=1
        )
        assert url.encode("ascii") not in frame

    def test_signed_frames_expose_plaintext_but_authenticate(self, channel_certs):
        client, server = handshake(
            POLICY_BASIC256SHA256, MessageSecurityMode.SIGN, channel_certs
        )
        url = "opc.tcp://visible-host:4840/"
        frame = client.encode_message(
            GetEndpointsRequest(endpoint_url=url), request_id=1
        )
        assert url.encode("ascii") in frame  # Sign does not encrypt

    def test_tampered_signed_frame_rejected(self, channel_certs):
        client, server = handshake(
            POLICY_BASIC256SHA256, MessageSecurityMode.SIGN, channel_certs
        )
        frame = bytearray(
            client.encode_message(GetEndpointsRequest(), request_id=1)
        )
        frame[HEADER_SIZE + 12] ^= 0x01
        with pytest.raises((SecureChannelError, Exception)):
            server.decode_message(bytes(frame[HEADER_SIZE:]))

    def test_tampered_encrypted_frame_rejected(self, channel_certs):
        client, server = handshake(
            POLICY_BASIC128RSA15,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            channel_certs,
        )
        frame = bytearray(
            client.encode_message(GetEndpointsRequest(), request_id=1)
        )
        frame[-1] ^= 0xFF
        with pytest.raises(Exception):
            server.decode_message(bytes(frame[HEADER_SIZE:]))

    def test_wrong_channel_id_rejected(self, channel_certs):
        client, server = handshake(
            POLICY_NONE, MessageSecurityMode.NONE, channel_certs
        )
        frame = bytearray(client.encode_message(GetEndpointsRequest(), request_id=1))
        frame[HEADER_SIZE] ^= 0x55  # corrupt channel id
        with pytest.raises(SecureChannelError):
            server.decode_message(bytes(frame[HEADER_SIZE:]))


class TestChannelValidation:
    def test_policy_mode_mismatch_rejected(self, channel_certs):
        rng = DeterministicRng(1, "bad")
        with pytest.raises(SecureChannelError):
            ClientSecureChannel(
                POLICY_NONE, MessageSecurityMode.SIGN, rng
            )

    def test_secure_policy_with_none_mode_rejected(self, channel_certs):
        client_cert, client_key, server_cert, _ = channel_certs
        rng = DeterministicRng(1, "bad2")
        with pytest.raises(SecureChannelError):
            ClientSecureChannel(
                POLICY_BASIC256SHA256,
                MessageSecurityMode.NONE,
                rng,
                client_certificate=client_cert,
                client_private_key=client_key,
                server_certificate=server_cert,
            )

    def test_missing_client_cert_rejected(self, channel_certs):
        _, _, server_cert, _ = channel_certs
        rng = DeterministicRng(1, "bad3")
        with pytest.raises(SecureChannelError):
            ClientSecureChannel(
                POLICY_BASIC256SHA256,
                MessageSecurityMode.SIGN,
                rng,
                server_certificate=server_cert,
            )

    def test_policy_uri_mismatch_detected_by_server(self, channel_certs):
        client_cert, client_key, server_cert, server_key = channel_certs
        rng = DeterministicRng(3, "mismatch")
        client = ClientSecureChannel(
            POLICY_NONE, MessageSecurityMode.NONE, rng.substream("c")
        )
        server = ServerSecureChannel(
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN,
            rng.substream("s"),
            channel_id=1,
            server_certificate=server_cert,
            server_private_key=server_key,
        )
        opn = client.build_open_request(OpenSecureChannelRequest())
        with pytest.raises(SecureChannelError):
            server.handle_open_request(opn[HEADER_SIZE:])


class TestServiceBodyHelpers:
    def test_encode_decode_service(self):
        request = GetEndpointsRequest(endpoint_url="opc.tcp://x:4840/")
        assert decode_service(encode_service(request)) == request
