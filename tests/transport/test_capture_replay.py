"""Capture/replay unit tests: the seam, the corpus format, the edges.

The loopback (real-socket) round trip lives in
``tests/scanner/test_replay_scan.py``; this module covers the lane in
isolation — a simulated grab captured and replayed byte-identically,
strictness on divergence, and every malformed-corpus shape the reader
promises to reject.
"""

from __future__ import annotations

import json

import pytest

from repro.client import ClientIdentity
from repro.netsim.net import SimHost, SimNetwork
from repro.scanner.grabber import grab_host
from repro.scanner.limits import TraversalBudget
from repro.transport.capture import (
    CaptureCorpus,
    CaptureFormatError,
    CaptureNetwork,
    CaptureRecorder,
    CaptureTransport,
    TargetCapture,
    read_corpus,
    write_corpus,
)
from repro.transport.messages import TransportTimeout
from repro.transport.replay import (
    ReplayMismatch,
    ReplayNetwork,
    ReplayTransport,
)
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc
from repro.x509.builder import make_self_signed

from tests.server.helpers import build_server

ADDRESS = parse_ipv4("10.0.0.1")


def _scanner(rng, keys) -> ClientIdentity:
    certificate = make_self_signed(
        keys,
        common_name="capture-scanner",
        application_uri="urn:repro:tests:capture",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("cert"),
    )
    return ClientIdentity(
        application_uri="urn:repro:tests:capture",
        application_name="Capture Tests",
        certificate=certificate,
        private_key=keys.private,
    )


def _sim_network(server, asn=3320) -> SimNetwork:
    network = SimNetwork(SimClock(parse_utc("2020-08-30")))
    host = SimHost(address=ADDRESS, asn=asn)
    host.listen(4840, server.new_connection)
    network.add_host(host)
    return network


@pytest.fixture()
def capture_rng():
    return DeterministicRng(424242, "capture-tests")


@pytest.fixture()
def sim_capture(capture_rng, rsa_512):
    """One simulated grab, captured: returns (capture, live record)."""
    server = build_server(DeterministicRng(99, "profile"), rsa_512)
    network = _sim_network(server)
    identity = _scanner(capture_rng, rsa_512)
    capture = TargetCapture(address=ADDRESS, port=4840)
    wrapped = CaptureNetwork(network.task_view("capture"), capture.events)
    record = grab_host(
        wrapped,
        ADDRESS,
        4840,
        identity,
        capture_rng.substream("grab"),
        budget=TraversalBudget(inter_request_delay_s=0.0),
        traverse=True,
    )
    return capture, record, identity


class TestSimRoundTrip:
    def test_replayed_record_is_byte_identical(
        self, sim_capture, capture_rng
    ):
        capture, live, identity = sim_capture
        assert live.is_opcua and live.session.success
        replayed = grab_host(
            ReplayNetwork(capture),
            ADDRESS,
            4840,
            identity,
            capture_rng.substream("grab"),
            budget=TraversalBudget(inter_request_delay_s=0.0),
            traverse=True,
        )
        assert replayed.to_json_dict() == live.to_json_dict()

    def test_replay_preserves_asn_and_timing(
        self, sim_capture, capture_rng
    ):
        capture, live, identity = sim_capture
        replayed = grab_host(
            ReplayNetwork(capture),
            ADDRESS,
            4840,
            identity,
            capture_rng.substream("grab"),
            budget=TraversalBudget(inter_request_delay_s=0.0),
            traverse=True,
        )
        assert replayed.asn == live.asn == 3320
        assert replayed.timestamp == live.timestamp
        assert replayed.scan_duration_s == live.scan_duration_s
        assert replayed.scan_bytes == live.scan_bytes

    def test_divergent_identity_raises_mismatch(
        self, sim_capture, capture_rng, rsa_768
    ):
        """A different scanner writes different bytes — strict replay
        must refuse loudly, not fabricate a stale record."""
        capture, _, _ = sim_capture
        other = _scanner(capture_rng.substream("other"), rsa_768)
        with pytest.raises(ReplayMismatch, match="diverge"):
            grab_host(
                ReplayNetwork(capture),
                ADDRESS,
                4840,
                other,
                capture_rng.substream("grab"),
                budget=TraversalBudget(inter_request_delay_s=0.0),
                traverse=True,
            )

    def test_replay_past_stream_end_raises(self, sim_capture):
        capture, _, _ = sim_capture
        transport = ReplayTransport(
            [], connection=0, target_key=(ADDRESS, 4840)
        )
        with pytest.raises(ReplayMismatch, match="stream ended"):
            transport.read()

    def test_underconsumption_detected(self, sim_capture, capture_rng):
        """A driver doing *fewer* operations than the recording must
        not pass as a faithful replay (the strict-exhaustion check)."""
        capture, _, identity = sim_capture
        network = ReplayNetwork(capture)
        # Consume only the start of the grab, then stop.
        network.host(ADDRESS)
        network.clock.now()
        with pytest.raises(ReplayMismatch, match="left unconsumed"):
            network.assert_exhausted()


class TestReplayedErrors:
    def test_connect_error_replays_category_and_message(self):
        capture = TargetCapture(address=ADDRESS, port=4840)
        capture.events = [
            {"event": "host", "asn": None, "known": False},
            {"event": "now", "time": "2020-08-30T00:00:00+00:00"},
            {"event": "now", "time": "2020-08-30T00:00:00+00:00"},
            {
                "event": "connect-error",
                "category": "timeout",
                "message": "connect to 10.0.0.1:4840 timed out",
            },
        ]
        network = ReplayNetwork(capture)
        assert network.host(ADDRESS) is None
        network.clock.now(), network.clock.now()
        with pytest.raises(Exception) as excinfo:
            network.connect(ADDRESS, 4840)
        assert excinfo.value.category == "timeout"
        assert "timed out" in str(excinfo.value)

    def test_io_timeout_replays_as_transport_timeout(self):
        events = [
            {
                "event": "io-error",
                "connection": 0,
                "op": "read",
                "category": "timeout",
                "message": "no data within 5s",
            },
        ]
        transport = ReplayTransport(events, connection=0)
        with pytest.raises(TransportTimeout, match="no data within"):
            transport.read()

    def test_failed_write_replays_recorded_byte_delta(self):
        """scan_bytes copies bytes_sent even on failed grabs, and the
        lanes differ in whether a failing write counted its payload
        (live drain stall: yes; deadline check / simulator refusal:
        no) — so capture records the observed delta and replay applies
        exactly that."""
        def failing_transport(counted):
            return ReplayTransport(
                [
                    {
                        "event": "io-error",
                        "connection": 0,
                        "op": "write",
                        "category": "timeout",
                        "message": "write stalled for 5s",
                        "counted": counted,
                    },
                ],
                connection=0,
            )

        stalled = failing_transport(100)  # drain stall: counted live
        with pytest.raises(TransportTimeout):
            stalled.write(b"x" * 100)
        assert stalled.bytes_sent == 100

        deadline = failing_transport(0)  # deadline check: never sent
        with pytest.raises(TransportTimeout):
            deadline.write(b"x" * 100)
        assert deadline.bytes_sent == 0

    def test_capture_records_write_error_delta(self):
        """The capture side measures the inner counter, not the
        payload size."""
        class _DeadlineExhausted:
            bytes_sent = bytes_received = 0

            def write(self, data):
                raise TransportTimeout("connection deadline exhausted")

        events = []
        transport = CaptureTransport(_DeadlineExhausted(), events, 0)
        with pytest.raises(TransportTimeout):
            transport.write(b"x" * 64)
        assert events[-1]["event"] == "io-error"
        assert events[-1]["counted"] == 0

        class _StalledDrain:
            bytes_sent = bytes_received = 0

            def write(self, data):
                self.bytes_sent += len(data)  # counted, then stalled
                raise TransportTimeout("write stalled for 5s")

        events = []
        transport = CaptureTransport(_StalledDrain(), events, 0)
        with pytest.raises(TransportTimeout):
            transport.write(b"x" * 64)
        assert events[-1]["counted"] == 64


class TestCorpusFormat:
    def _corpus(self, sim_capture) -> CaptureCorpus:
        capture, _, _ = sim_capture
        return CaptureCorpus(
            meta={"label": "2020-08-30", "probed": 1, "excluded": 0},
            targets=[capture],
        )

    @pytest.mark.parametrize("name", ["corpus.jsonl", "corpus.jsonl.gz"])
    def test_round_trip_plain_and_gzip(self, sim_capture, tmp_path, name):
        corpus = self._corpus(sim_capture)
        path = tmp_path / name
        write_corpus(path, corpus)
        reread = read_corpus(path)
        assert reread.meta == corpus.meta
        assert [t.events for t in reread.targets] == [
            t.events for t in corpus.targets
        ]
        assert reread.digest() == corpus.digest()

    def test_gzip_bytes_are_reproducible(self, sim_capture, tmp_path):
        """Same content → same compressed bytes (content-addressing
        depends on it; filename=''/mtime=0 like dataset/io.py)."""
        corpus = self._corpus(sim_capture)
        first, second = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        write_corpus(first, corpus)
        write_corpus(second, corpus)
        assert first.read_bytes() == second.read_bytes()

    def test_truncated_corpus_rejected(self, sim_capture, tmp_path):
        corpus = self._corpus(sim_capture)
        path = tmp_path / "corpus.jsonl"
        write_corpus(path, corpus)
        lines = path.read_text().splitlines()
        (tmp_path / "cut.jsonl").write_text(
            "\n".join(lines[: len(lines) // 2]) + "\n"
        )
        with pytest.raises(CaptureFormatError, match="truncated"):
            read_corpus(tmp_path / "cut.jsonl")

    def test_truncated_target_table_rejected(self, sim_capture, tmp_path):
        """Whole targets missing from the tail must be caught too."""
        corpus = self._corpus(sim_capture)
        corpus.meta = {}
        extra = TargetCapture(address=ADDRESS + 1, port=4840)
        extra.events = [{"event": "host", "asn": None, "known": False}]
        corpus.targets.append(extra)
        path = tmp_path / "corpus.jsonl"
        write_corpus(path, corpus)
        lines = path.read_text().splitlines()
        # Drop the second target's header+event entirely.
        (tmp_path / "cut.jsonl").write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(CaptureFormatError, match="declared 2 targets"):
            read_corpus(tmp_path / "cut.jsonl")

    def test_corrupted_gzip_frame_rejected(self, sim_capture, tmp_path):
        corpus = self._corpus(sim_capture)
        path = tmp_path / "corpus.jsonl.gz"
        write_corpus(path, corpus)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one bit mid-stream
        (tmp_path / "bad.jsonl.gz").write_bytes(bytes(blob))
        with pytest.raises(CaptureFormatError):
            read_corpus(tmp_path / "bad.jsonl.gz")

    def test_garbage_json_line_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            json.dumps({"capture_corpus": 1, "meta": {}, "targets": 0})
            + "\n{not json\n"
        )
        with pytest.raises(CaptureFormatError, match="not valid JSON"):
            read_corpus(path)

    def test_scalar_json_line_rejected(self, tmp_path):
        """A bare number parses as JSON but is not an event object."""
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            json.dumps({"capture_corpus": 1, "meta": {}, "targets": 0})
            + "\n5\n"
        )
        with pytest.raises(CaptureFormatError, match="JSON object"):
            read_corpus(path)

    def test_event_before_target_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            json.dumps({"capture_corpus": 1, "meta": {}, "targets": 1})
            + "\n"
            + json.dumps({"event": "now", "time": "2020-01-01T00:00:00"})
            + "\n"
        )
        with pytest.raises(CaptureFormatError, match="before any"):
            read_corpus(path)

    def test_duplicate_target_headers_rejected(self, tmp_path):
        """Two event streams for one (address, port) cannot both
        replay; refuse the corpus instead of silently dropping one."""
        header = json.dumps(
            {"target": {"address": 1, "port": 4840, "events": 0}}
        )
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            json.dumps({"capture_corpus": 1, "meta": {}, "targets": 2})
            + "\n" + header + "\n" + header + "\n"
        )
        with pytest.raises(CaptureFormatError, match="duplicate target"):
            read_corpus(path)

    def test_target_header_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            json.dumps({"capture_corpus": 1, "meta": {}, "targets": 1})
            + "\n"
            + json.dumps({"target": {"events": 2}})
            + "\n"
        )
        with pytest.raises(CaptureFormatError, match="address/port"):
            read_corpus(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            json.dumps({"capture_corpus": 999, "targets": 0}) + "\n"
        )
        with pytest.raises(CaptureFormatError, match="schema"):
            read_corpus(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text("")
        with pytest.raises(CaptureFormatError, match="empty"):
            read_corpus(path)

    def test_excess_events_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(
            json.dumps({"capture_corpus": 1, "meta": {}, "targets": 1})
            + "\n"
            + json.dumps(
                {"target": {"address": 1, "port": 4840, "events": 0}}
            )
            + "\n"
            + json.dumps({"event": "close", "connection": 0})
            + "\n"
        )
        with pytest.raises(CaptureFormatError, match="more event lines"):
            read_corpus(path)


class TestRecorder:
    def test_duplicate_target_refused(self):
        recorder = CaptureRecorder()

        class _Net:
            clock = SimClock(parse_utc("2020-01-01"))

        recorder.wrap(_Net(), ADDRESS, 4840)
        with pytest.raises(ValueError, match="captured twice"):
            recorder.wrap(_Net(), ADDRESS, 4840)

    def test_corpus_targets_in_canonical_order(self):
        recorder = CaptureRecorder({"seed": 1})

        class _Net:
            clock = SimClock(parse_utc("2020-01-01"))

        for address, port in [(9, 4841), (2, 4840), (9, 4840)]:
            recorder.wrap(_Net(), address, port)
        corpus = recorder.corpus()
        assert [t.key for t in corpus.targets] == [
            (2, 4840),
            (9, 4840),
            (9, 4841),
        ]
