"""§5.1 — advertised message security modes (Figure 3, left).

For each security mode, three counts: how many servers *support* it,
for how many it is the *least* secure option, and for how many the
*most* secure option.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scanner.records import HostRecord
from repro.uabin.enums import MessageSecurityMode

MODES = (
    MessageSecurityMode.NONE,
    MessageSecurityMode.SIGN,
    MessageSecurityMode.SIGN_AND_ENCRYPT,
)


@dataclass
class ModeStatistics:
    total_servers: int = 0
    supported: dict[str, int] = field(default_factory=dict)
    least_secure: dict[str, int] = field(default_factory=dict)
    most_secure: dict[str, int] = field(default_factory=dict)

    @property
    def none_only(self) -> int:
        """Servers that only support security mode None (paper: 270)."""
        return self.most_secure.get("N", 0)

    @property
    def supports_secure_mode(self) -> int:
        """Servers offering Sign or SignAndEncrypt (paper: 844)."""
        return self.most_secure.get("S", 0) + self.most_secure.get("S&E", 0)


def analyze_security_modes(records: list[HostRecord]) -> ModeStatistics:
    stats = ModeStatistics(
        supported={m.short_label: 0 for m in MODES},
        least_secure={m.short_label: 0 for m in MODES},
        most_secure={m.short_label: 0 for m in MODES},
    )
    for record in records:
        modes = record.security_modes()
        modes.discard(MessageSecurityMode.INVALID)
        if not modes:
            continue
        stats.total_servers += 1
        for mode in modes:
            stats.supported[mode.short_label] += 1
        weakest = min(modes, key=lambda m: m.security_rank)
        strongest = max(modes, key=lambda m: m.security_rank)
        stats.least_secure[weakest.short_label] += 1
        stats.most_secure[strongest.short_label] += 1
    return stats
