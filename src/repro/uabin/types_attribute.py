"""Attribute service set: Read and Write.

The scanner reads node attributes (value, access level, executable)
during traversal; Write is implemented for protocol completeness and
for the server's access-control tests — the study itself never writes
(ethics, Appendix A of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uabin.builtin import QualifiedName
from repro.uabin.enums import TimestampsToReturn
from repro.uabin.nodeid import NodeId
from repro.uabin.structs import RequestHeader, ResponseHeader, UaStruct
from repro.uabin.variant import DataValue


@dataclass
class ReadValueId(UaStruct):
    node_id: NodeId = field(default_factory=NodeId)
    attribute_id: int = 13  # AttributeId.VALUE
    index_range: str | None = None
    data_encoding: QualifiedName = field(default_factory=QualifiedName)

    _fields_ = [
        ("node_id", "nodeid"),
        ("attribute_id", "uint32"),
        ("index_range", "string"),
        ("data_encoding", "qualifiedname"),
    ]


@dataclass
class ReadRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    max_age: float = 0.0
    timestamps_to_return: TimestampsToReturn = TimestampsToReturn.NEITHER
    nodes_to_read: list[ReadValueId] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("max_age", "double"),
        ("timestamps_to_return", TimestampsToReturn),
        ("nodes_to_read", ("array", ReadValueId)),
    ]


@dataclass
class ReadResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    results: list[DataValue] | None = None
    diagnostic_infos: list | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("results", ("array", "datavalue")),
        ("diagnostic_infos", ("array", "diagnosticinfo")),
    ]


@dataclass
class WriteValue(UaStruct):
    node_id: NodeId = field(default_factory=NodeId)
    attribute_id: int = 13
    index_range: str | None = None
    value: DataValue = field(default_factory=DataValue)

    _fields_ = [
        ("node_id", "nodeid"),
        ("attribute_id", "uint32"),
        ("index_range", "string"),
        ("value", "datavalue"),
    ]


@dataclass
class WriteRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    nodes_to_write: list[WriteValue] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("nodes_to_write", ("array", WriteValue)),
    ]


@dataclass
class WriteResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    results: list | None = None
    diagnostic_infos: list | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("results", ("array", "statuscode")),
        ("diagnostic_infos", ("array", "diagnosticinfo")),
    ]
