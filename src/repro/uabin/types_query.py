"""TranslateBrowsePathsToNodeIds and RegisterServer services.

TranslateBrowsePaths resolves human-readable browse paths ("Objects →
Plant → rSetFillLevel") to NodeIds — the lookup clients use when node
identifiers are not known a priori.  RegisterServer is how servers
announce themselves to a Local Discovery Server; the study's discovery
servers (42 % of reachable hosts) exist because of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uabin.builtin import LocalizedText, QualifiedName
from repro.uabin.enums import ApplicationType
from repro.uabin.nodeid import ExpandedNodeId, NodeId
from repro.uabin.statuscodes import StatusCode, StatusCodes
from repro.uabin.structs import RequestHeader, ResponseHeader, UaStruct


@dataclass
class RelativePathElement(UaStruct):
    reference_type_id: NodeId = field(default_factory=NodeId)
    is_inverse: bool = False
    include_subtypes: bool = True
    target_name: QualifiedName = field(default_factory=QualifiedName)

    _fields_ = [
        ("reference_type_id", "nodeid"),
        ("is_inverse", "boolean"),
        ("include_subtypes", "boolean"),
        ("target_name", "qualifiedname"),
    ]


@dataclass
class RelativePath(UaStruct):
    elements: list[RelativePathElement] | None = None

    _fields_ = [("elements", ("array", RelativePathElement))]


@dataclass
class BrowsePath(UaStruct):
    starting_node: NodeId = field(default_factory=NodeId)
    relative_path: RelativePath = field(default_factory=RelativePath)

    _fields_ = [
        ("starting_node", "nodeid"),
        ("relative_path", RelativePath),
    ]


@dataclass
class BrowsePathTarget(UaStruct):
    target_id: ExpandedNodeId = field(default_factory=ExpandedNodeId)
    remaining_path_index: int = 0xFFFFFFFF

    _fields_ = [
        ("target_id", "expandednodeid"),
        ("remaining_path_index", "uint32"),
    ]


@dataclass
class BrowsePathResult(UaStruct):
    status_code: StatusCode = field(default_factory=lambda: StatusCodes.Good)
    targets: list[BrowsePathTarget] | None = None

    _fields_ = [
        ("status_code", "statuscode"),
        ("targets", ("array", BrowsePathTarget)),
    ]


@dataclass
class TranslateBrowsePathsRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    browse_paths: list[BrowsePath] | None = None

    _fields_ = [
        ("request_header", RequestHeader),
        ("browse_paths", ("array", BrowsePath)),
    ]


@dataclass
class TranslateBrowsePathsResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)
    results: list[BrowsePathResult] | None = None
    diagnostic_infos: list | None = None

    _fields_ = [
        ("response_header", ResponseHeader),
        ("results", ("array", BrowsePathResult)),
        ("diagnostic_infos", ("array", "diagnosticinfo")),
    ]


@dataclass
class RegisteredServer(UaStruct):
    """A server's announcement of itself to a discovery server."""

    server_uri: str | None = None
    product_uri: str | None = None
    server_names: list[LocalizedText] | None = None
    server_type: ApplicationType = ApplicationType.SERVER
    gateway_server_uri: str | None = None
    discovery_urls: list[str] | None = None
    semaphore_file_path: str | None = None
    is_online: bool = True

    _fields_ = [
        ("server_uri", "string"),
        ("product_uri", "string"),
        ("server_names", ("array", "localizedtext")),
        ("server_type", ApplicationType),
        ("gateway_server_uri", "string"),
        ("discovery_urls", ("array", "string")),
        ("semaphore_file_path", "string"),
        ("is_online", "boolean"),
    ]


@dataclass
class RegisterServerRequest(UaStruct):
    request_header: RequestHeader = field(default_factory=RequestHeader)
    server: RegisteredServer = field(default_factory=RegisteredServer)

    _fields_ = [
        ("request_header", RequestHeader),
        ("server", RegisteredServer),
    ]


@dataclass
class RegisterServerResponse(UaStruct):
    response_header: ResponseHeader = field(default_factory=ResponseHeader)

    _fields_ = [("response_header", ResponseHeader)]
