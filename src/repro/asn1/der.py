"""DER (Distinguished Encoding Rules) encoder/decoder.

Values are represented as a small closed set of Python classes; the
encoder maps each class to its universal tag and the decoder inverts
the mapping.  Unknown tags decode to :class:`RawTlv` so certificates
carrying extensions we do not model still round-trip byte-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone


class Asn1Error(Exception):
    """Malformed DER input or an unencodable value."""


# --- universal tag numbers -------------------------------------------------
TAG_BOOLEAN = 0x01
TAG_INTEGER = 0x02
TAG_BIT_STRING = 0x03
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_UTF8_STRING = 0x0C
TAG_PRINTABLE_STRING = 0x13
TAG_IA5_STRING = 0x16
TAG_UTC_TIME = 0x17
TAG_GENERALIZED_TIME = 0x18
TAG_SEQUENCE = 0x30
TAG_SET = 0x31

_CONSTRUCTED = 0x20
_CONTEXT = 0x80


@dataclass(frozen=True)
class Null:
    """ASN.1 NULL."""


@dataclass(frozen=True)
class Boolean:
    value: bool


@dataclass(frozen=True)
class ObjectIdentifier:
    dotted: str

    def __post_init__(self):
        parts = self.dotted.split(".")
        if len(parts) < 2 or not all(p.isdigit() for p in parts):
            raise Asn1Error(f"invalid OID: {self.dotted!r}")


@dataclass(frozen=True)
class BitString:
    """Bit string; we only need whole-byte payloads (unused bits = 0)."""

    data: bytes
    unused_bits: int = 0


@dataclass(frozen=True)
class OctetString:
    data: bytes


@dataclass(frozen=True)
class Utf8String:
    text: str


@dataclass(frozen=True)
class PrintableString:
    text: str


@dataclass(frozen=True)
class Ia5String:
    text: str


@dataclass(frozen=True)
class UtcTime:
    """UTCTime with seconds and mandatory Z suffix (RFC 5280 profile)."""

    moment: datetime

    def __post_init__(self):
        if self.moment.tzinfo is None:
            raise Asn1Error("UtcTime requires an aware datetime")


@dataclass(frozen=True)
class GeneralizedTime:
    moment: datetime

    def __post_init__(self):
        if self.moment.tzinfo is None:
            raise Asn1Error("GeneralizedTime requires an aware datetime")


@dataclass(frozen=True)
class Sequence:
    items: tuple = ()

    def __init__(self, items=()):
        object.__setattr__(self, "items", tuple(items))

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)

    def __getitem__(self, index):
        return self.items[index]


@dataclass(frozen=True)
class SetOf:
    items: tuple = ()

    def __init__(self, items=()):
        object.__setattr__(self, "items", tuple(items))

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)

    def __getitem__(self, index):
        return self.items[index]


@dataclass(frozen=True)
class ContextTag:
    """Context-specific tag ``[number]``.

    ``constructed`` values wrap a single inner DER value; primitive
    values carry raw bytes (used for e.g. SAN URIs and key identifiers).
    """

    number: int
    inner: object = None
    primitive_data: bytes | None = None

    @property
    def constructed(self) -> bool:
        return self.primitive_data is None


@dataclass(frozen=True)
class RawTlv:
    """An opaque TLV preserved verbatim (tag byte + payload)."""

    tag: int
    payload: bytes


# --- length and integer helpers -------------------------------------------


def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def _read_length(data: bytes, pos: int) -> tuple[int, int]:
    if pos >= len(data):
        raise Asn1Error("truncated length")
    first = data[pos]
    pos += 1
    if first < 0x80:
        return first, pos
    count = first & 0x7F
    if count == 0:
        raise Asn1Error("indefinite lengths are not DER")
    if pos + count > len(data):
        raise Asn1Error("truncated long-form length")
    length = int.from_bytes(data[pos : pos + count], "big")
    if count > 1 and data[pos] == 0:
        raise Asn1Error("non-minimal length encoding")
    if length < 0x80 and count == 1:
        raise Asn1Error("non-minimal length encoding")
    return length, pos + count


def encode_integer(value: int) -> bytes:
    """Two's-complement big-endian INTEGER payload (no tag/length)."""
    if value == 0:
        return b"\x00"
    length = (value.bit_length() + 8) // 8 if value > 0 else (
        ((-value - 1).bit_length() + 8) // 8
    )
    return value.to_bytes(length, "big", signed=True)


def decode_integer(payload: bytes) -> int:
    if not payload:
        raise Asn1Error("empty INTEGER")
    if len(payload) > 1:
        if payload[0] == 0x00 and not payload[1] & 0x80:
            raise Asn1Error("non-minimal INTEGER encoding")
        if payload[0] == 0xFF and payload[1] & 0x80:
            raise Asn1Error("non-minimal INTEGER encoding")
    return int.from_bytes(payload, "big", signed=True)


def _encode_oid_payload(dotted: str) -> bytes:
    parts = [int(p) for p in dotted.split(".")]
    if parts[0] > 2 or (parts[0] < 2 and parts[1] > 39):
        raise Asn1Error(f"invalid OID arcs: {dotted}")
    out = bytearray([parts[0] * 40 + parts[1]])
    for arc in parts[2:]:
        chunk = [arc & 0x7F]
        arc >>= 7
        while arc:
            chunk.append((arc & 0x7F) | 0x80)
            arc >>= 7
        out.extend(reversed(chunk))
    return bytes(out)


def _decode_oid_payload(payload: bytes) -> str:
    if not payload:
        raise Asn1Error("empty OID")
    first = payload[0]
    arcs = [min(first // 40, 2), first - 40 * min(first // 40, 2)]
    value = 0
    pending = False
    for byte in payload[1:]:
        value = (value << 7) | (byte & 0x7F)
        pending = bool(byte & 0x80)
        if not pending:
            arcs.append(value)
            value = 0
    if pending:
        raise Asn1Error("truncated OID arc")
    return ".".join(str(a) for a in arcs)


_UTC_FMT = "%y%m%d%H%M%SZ"
_GENERALIZED_FMT = "%Y%m%d%H%M%SZ"


# --- public API -------------------------------------------------------------


def encode_der(value) -> bytes:
    """Encode a value tree into DER bytes."""
    tag, payload = _encode_value(value)
    return bytes([tag]) + _encode_length(len(payload)) + payload


def _encode_value(value) -> tuple[int, bytes]:
    if isinstance(value, Null):
        return TAG_NULL, b""
    if isinstance(value, Boolean):
        return TAG_BOOLEAN, (b"\xff" if value.value else b"\x00")
    if isinstance(value, bool):
        return TAG_BOOLEAN, (b"\xff" if value else b"\x00")
    if isinstance(value, int):
        return TAG_INTEGER, encode_integer(value)
    if isinstance(value, ObjectIdentifier):
        return TAG_OID, _encode_oid_payload(value.dotted)
    if isinstance(value, BitString):
        if not 0 <= value.unused_bits <= 7:
            raise Asn1Error("unused_bits out of range")
        return TAG_BIT_STRING, bytes([value.unused_bits]) + value.data
    if isinstance(value, OctetString):
        return TAG_OCTET_STRING, value.data
    if isinstance(value, Utf8String):
        return TAG_UTF8_STRING, value.text.encode("utf-8")
    if isinstance(value, PrintableString):
        return TAG_PRINTABLE_STRING, value.text.encode("ascii")
    if isinstance(value, Ia5String):
        return TAG_IA5_STRING, value.text.encode("ascii")
    if isinstance(value, UtcTime):
        moment = value.moment.astimezone(timezone.utc)
        return TAG_UTC_TIME, moment.strftime(_UTC_FMT).encode("ascii")
    if isinstance(value, GeneralizedTime):
        moment = value.moment.astimezone(timezone.utc)
        return TAG_GENERALIZED_TIME, moment.strftime(_GENERALIZED_FMT).encode("ascii")
    if isinstance(value, Sequence):
        return TAG_SEQUENCE, b"".join(encode_der(item) for item in value)
    if isinstance(value, SetOf):
        # DER requires SET OF elements sorted by their encoding.
        encoded = sorted(encode_der(item) for item in value)
        return TAG_SET, b"".join(encoded)
    if isinstance(value, ContextTag):
        if value.constructed:
            return (_CONTEXT | _CONSTRUCTED | value.number), encode_der(value.inner)
        return (_CONTEXT | value.number), value.primitive_data
    if isinstance(value, RawTlv):
        return value.tag, value.payload
    raise Asn1Error(f"cannot DER-encode {type(value).__name__}")


def decode_der(data: bytes, allow_trailing: bool = False):
    """Decode one DER value from ``data``.

    Raises :class:`Asn1Error` on trailing bytes unless ``allow_trailing``
    is set, in which case the value and the consumed length are returned.
    """
    value, consumed = _decode_value(data, 0)
    if allow_trailing:
        return value, consumed
    if consumed != len(data):
        raise Asn1Error(f"{len(data) - consumed} trailing bytes after DER value")
    return value


def _decode_value(data: bytes, pos: int):
    if pos >= len(data):
        raise Asn1Error("truncated TLV")
    tag = data[pos]
    length, body_pos = _read_length(data, pos + 1)
    end = body_pos + length
    if end > len(data):
        raise Asn1Error("value extends past buffer")
    payload = data[body_pos:end]

    if tag == TAG_NULL:
        if payload:
            raise Asn1Error("NULL with payload")
        return Null(), end
    if tag == TAG_BOOLEAN:
        if len(payload) != 1:
            raise Asn1Error("BOOLEAN must be one byte")
        return payload[0] != 0, end
    if tag == TAG_INTEGER:
        return decode_integer(payload), end
    if tag == TAG_OID:
        return ObjectIdentifier(_decode_oid_payload(payload)), end
    if tag == TAG_BIT_STRING:
        if not payload:
            raise Asn1Error("empty BIT STRING")
        return BitString(payload[1:], payload[0]), end
    if tag == TAG_OCTET_STRING:
        return OctetString(payload), end
    if tag == TAG_UTF8_STRING:
        return Utf8String(payload.decode("utf-8")), end
    if tag == TAG_PRINTABLE_STRING:
        return PrintableString(payload.decode("ascii")), end
    if tag == TAG_IA5_STRING:
        return Ia5String(payload.decode("ascii")), end
    if tag == TAG_UTC_TIME:
        moment = datetime.strptime(payload.decode("ascii"), _UTC_FMT)
        year = moment.year
        # RFC 5280: two-digit years 00-49 are 20xx, 50-99 are 19xx.
        if year >= 2050:
            moment = moment.replace(year=year - 100)
        return UtcTime(moment.replace(tzinfo=timezone.utc)), end
    if tag == TAG_GENERALIZED_TIME:
        moment = datetime.strptime(payload.decode("ascii"), _GENERALIZED_FMT)
        return GeneralizedTime(moment.replace(tzinfo=timezone.utc)), end
    if tag == TAG_SEQUENCE:
        return Sequence(_decode_all(payload)), end
    if tag == TAG_SET:
        return SetOf(_decode_all(payload)), end
    if tag & _CONTEXT:
        number = tag & 0x1F
        if tag & _CONSTRUCTED:
            inner, used = _decode_value(payload, 0)
            if used != len(payload):
                raise Asn1Error("extra data inside context tag")
            return ContextTag(number, inner=inner), end
        return ContextTag(number, primitive_data=payload), end
    return RawTlv(tag, payload), end


def _decode_all(payload: bytes) -> list:
    items = []
    pos = 0
    while pos < len(payload):
        value, pos = _decode_value(payload, pos)
        items.append(value)
    return items
