"""Legacy shim so `pip install -e .` works offline.

The environment has setuptools but no `wheel` package and no network,
which breaks PEP 517 editable builds; this file lets pip fall back to
`setup.py develop` (pip install -e . --no-use-pep517).
"""

from setuptools import setup

setup()
