"""Analysis-pipeline tests: registry coverage and backend equivalence.

Acceptance pin for the parallel analysis layer: on the golden tiny
study, the merged ``AnalysisReport`` digest is identical whether the
registry fans out serially, over a thread pool, or over a fork-based
process pool — and identical again when the snapshots made a round
trip through the study store first.
"""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import (
    ANALYSIS_NAMES,
    AnalysisTask,
    jsonify,
    run_analyses,
)
from repro.dataset.store import StudyStore

pytestmark = pytest.mark.golden


@pytest.fixture(scope="module")
def serial_report(serial_tiny_result):
    return run_analyses(
        serial_tiny_result.snapshots,
        serial_tiny_result.spec,
        seed=serial_tiny_result.config.seed,
    )


class TestRegistry:
    def test_every_analysis_registered(self):
        assert set(ANALYSIS_NAMES) == {
            "modes", "policies", "negotiated", "certs", "reuse", "access",
            "rights", "deficits", "breakdown", "longitudinal", "ipv6",
            "anomalies",
        }

    def test_report_is_canonically_ordered(self, serial_report):
        assert serial_report.names() == ANALYSIS_NAMES

    def test_unknown_name_rejected(self, serial_tiny_result):
        with pytest.raises(KeyError, match="unknown analyses"):
            run_analyses(
                serial_tiny_result.snapshots,
                serial_tiny_result.spec,
                seed=1,
                names=("modes", "nope"),
            )

    def test_subset_selection(self, serial_tiny_result):
        report = run_analyses(
            serial_tiny_result.snapshots,
            serial_tiny_result.spec,
            seed=serial_tiny_result.config.seed,
            names=("deficits", "modes"),
        )
        assert report.names() == ("deficits", "modes")

    def test_task_keys_are_distinct(self):
        keys = {AnalysisTask(name).key for name in ANALYSIS_NAMES}
        assert len(keys) == len(ANALYSIS_NAMES)


@pytest.mark.parametrize(
    "backend,workers",
    [
        pytest.param("thread", 4, id="thread"),
        pytest.param("process", 2, id="process"),
    ],
)
def test_backend_equivalence(
    backend, workers, serial_tiny_result, serial_report
):
    report = run_analyses(
        serial_tiny_result.snapshots,
        serial_tiny_result.spec,
        seed=serial_tiny_result.config.seed,
        executor=backend,
        workers=workers,
    )
    assert report.digest() == serial_report.digest(), (
        f"{backend} analysis pipeline diverged from serial"
    )


def test_failing_analysis_surfaces_cause(serial_tiny_result, monkeypatch):
    """A task crash in a pooled backend reports the analysis + cause."""
    from repro.analysis import pipeline
    from repro.scanner.executor import ScanExecutorError

    def boom(ctx):
        raise ValueError("broken analysis")

    monkeypatch.setitem(pipeline.ANALYSES, "boom", boom)
    with pytest.raises(ScanExecutorError, match="boom") as info:
        run_analyses(
            serial_tiny_result.snapshots,
            serial_tiny_result.spec,
            seed=1,
            names=("boom",),
            executor="thread",
            workers=2,
        )
    assert isinstance(info.value.cause, ValueError)


def test_store_round_trip_preserves_report(
    tmp_path, serial_tiny_result, serial_report
):
    """scan → store → load → analyze == scan → analyze, bit for bit."""
    store = StudyStore(tmp_path / "store")
    store.save(
        serial_tiny_result.config,
        serial_tiny_result.spec,
        serial_tiny_result.snapshots,
    )
    loaded = store.load(serial_tiny_result.config, serial_tiny_result.spec)
    report = run_analyses(
        loaded,
        serial_tiny_result.spec,
        seed=serial_tiny_result.config.seed,
    )
    assert report.digest() == serial_report.digest()


def test_experiments_share_pipeline_results(serial_tiny_result):
    """``result.analysis`` memoizes and a pipeline run pre-fills it."""
    result = serial_tiny_result
    report = result.run_analyses()
    assert result.analysis("modes") is report["modes"]
    assert result.analysis("longitudinal") is report["longitudinal"]


class TestJsonify:
    def test_tuple_keys_become_strings(self):
        assert jsonify({(0, 1): 2}) == {"0+1": 2}

    def test_sets_are_sorted(self):
        assert jsonify({"flags": {"b", "a"}}) == {"flags": ["a", "b"]}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            jsonify(object())
