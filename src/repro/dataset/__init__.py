"""Anonymized dataset release (paper Appendix A.1).

The paper released its dataset with IP addresses and AS numbers
replaced by consecutive identifiers, certificate fields carrying
address-equivalent information blackened, and all payload data
excluded.  This package applies the same transformations and writes
newline-delimited JSON.
"""

from repro.dataset.anonymize import AnonymizationMap, anonymize_snapshot
from repro.dataset.io import read_snapshots, write_snapshots

__all__ = [
    "AnonymizationMap",
    "anonymize_snapshot",
    "read_snapshots",
    "write_snapshots",
]
