"""Live-lane loopback tests: the in-repo engine behind a real socket.

The central assertion: one live grab through the async executor
produces the same record a simulated grab of the same deployment
profile produces — the transport lane changes how bytes move, never
what the scanner records.
"""

from __future__ import annotations

import pytest

from repro.client import ClientIdentity
from repro.netsim.blocklist import Blocklist
from repro.netsim.net import SimHost, SimNetwork
from repro.scanner.campaign import (
    LiveScanCampaign,
    LiveScanConfig,
    ScannerIdentity,
    load_targets,
    parse_target_line,
)
from repro.scanner.ethics import EthicsViolation, LiveScanGate
from repro.scanner.executor import AsyncScanExecutor
from repro.scanner.grabber import grab_host
from repro.scanner.limits import ScanRateLimiter, TraversalBudget
from repro.server import TcpServerHost
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc
from repro.x509.builder import make_self_signed

from tests.server.helpers import build_server

LOOPBACK = parse_ipv4("127.0.0.1")

#: Keys volatile across lanes: address/port differ by construction,
#: timing and byte counts depend on the wire.
_VOLATILE = ("ip", "port", "timestamp", "scan_duration_s", "scan_bytes")


def _free_port() -> int:
    """A loopback port with nothing listening on it."""
    import socket as socketlib

    probe = socketlib.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def _fast_limiter() -> ScanRateLimiter:
    return ScanRateLimiter(
        rate_per_s=10_000, per_host_interval_s=0.0
    )


def _identity(rng, keys) -> ScannerIdentity:
    certificate = make_self_signed(
        keys,
        common_name="research-scanner",
        application_uri="urn:repro:tests:live-scanner",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("scanner-cert"),
    )
    return ScannerIdentity(
        ClientIdentity(
            application_uri="urn:repro:tests:live-scanner",
            application_name=(
                "Research Scanner (contact: research@example.org)"
            ),
            certificate=certificate,
            private_key=keys.private,
        )
    )


def _normalized(record) -> dict:
    data = record.to_json_dict()
    for key in _VOLATILE:
        data.pop(key, None)
    return data


@pytest.fixture()
def live_rng():
    return DeterministicRng(424242, "live-scan-tests")


@pytest.fixture()
def scanner(live_rng, rsa_1024):
    return _identity(live_rng, rsa_1024)


class TestLiveMatchesSimulated:
    def test_loopback_grab_equals_simulated_grab(
        self, live_rng, scanner, rsa_1024
    ):
        """One deployment profile, two lanes, one record."""
        # Two engine instances built from identical RNG streams: the
        # live lane must not share runtime state (sessions, nonces)
        # with the reference, or the comparison would be vacuous.
        live_server = build_server(
            DeterministicRng(99, "live-profile"), rsa_1024
        )
        sim_server = build_server(
            DeterministicRng(99, "live-profile"), rsa_1024
        )
        budget = TraversalBudget(inter_request_delay_s=0.0)

        with TcpServerHost(live_server) as (host, port):
            campaign = LiveScanCampaign(
                scanner,
                live_rng.substream("campaign"),
                config=LiveScanConfig(workers=4, traverse=True),
                limiter=_fast_limiter(),
                budget=budget,
                executor=AsyncScanExecutor(4),
            )
            snapshot = campaign.run([(LOOPBACK, port)])

        assert snapshot.probed == 1
        assert snapshot.port_open == 1
        assert len(snapshot.records) == 1
        live_record = snapshot.records[0]
        assert live_record.ip == LOOPBACK
        assert live_record.port == port

        network = SimNetwork(SimClock(parse_utc("2020-08-30")))
        sim_address = parse_ipv4("10.0.0.1")
        sim_host = SimHost(address=sim_address, asn=None)
        sim_host.listen(4840, sim_server.new_connection)
        network.add_host(sim_host)
        sim_record = grab_host(
            network,
            sim_address,
            4840,
            scanner.client_identity,
            live_rng.substream("campaign"),
            budget=TraversalBudget(inter_request_delay_s=0.0),
            traverse=True,
        )

        assert live_record.is_opcua and sim_record.is_opcua
        assert live_record.session.success
        assert _normalized(live_record) == _normalized(sim_record)

    def test_loopback_negotiates_sign_and_encrypt(
        self, live_rng, scanner, rsa_1024
    ):
        """Acceptance: a live grab completes a SignAndEncrypt
        (Basic256Sha256) secure channel against a real socket, and the
        record's negotiated_* fields match the simulated lane
        byte-for-byte."""
        live_server = build_server(
            DeterministicRng(77, "negotiate-profile"), rsa_1024
        )
        sim_server = build_server(
            DeterministicRng(77, "negotiate-profile"), rsa_1024
        )

        with TcpServerHost(live_server) as (host, port):
            campaign = LiveScanCampaign(
                scanner,
                live_rng.substream("negotiate"),
                config=LiveScanConfig(workers=2, traverse=False),
                limiter=_fast_limiter(),
                executor=AsyncScanExecutor(2),
            )
            snapshot = campaign.run([(LOOPBACK, port)])
        live_record = snapshot.records[0]

        network = SimNetwork(SimClock(parse_utc("2020-08-30")))
        sim_address = parse_ipv4("10.0.0.1")
        sim_host = SimHost(address=sim_address, asn=None)
        sim_host.listen(4840, sim_server.new_connection)
        network.add_host(sim_host)
        sim_record = grab_host(
            network,
            sim_address,
            4840,
            scanner.client_identity,
            live_rng.substream("negotiate"),
            traverse=False,
        )

        for record in (live_record, sim_record):
            session = record.session
            assert session.negotiation_error is None
            assert session.negotiated_policy_uri is not None
            assert session.negotiated_policy_uri.endswith("#Basic256Sha256")
            assert session.negotiated_mode == 3  # SignAndEncrypt
        assert (
            live_record.session.negotiated_policy_uri
            == sim_record.session.negotiated_policy_uri
        )
        assert (
            live_record.session.negotiated_mode
            == sim_record.session.negotiated_mode
        )
        assert _normalized(live_record) == _normalized(sim_record)

    def test_closed_port_recorded_truthfully(self, live_rng, scanner):
        """A refused connection is a 'refused' record, not a crash
        and not a bare unexplained failure."""
        port = _free_port()
        campaign = LiveScanCampaign(
            scanner,
            live_rng.substream("refused"),
            config=LiveScanConfig(workers=2, connect_timeout_s=2.0),
            limiter=_fast_limiter(),
        )
        snapshot = campaign.run([(LOOPBACK, port)])
        record = snapshot.records[0]
        assert not record.tcp_open
        assert record.error
        assert record.error_category in ("refused", "unreachable")


class TestLiveGates:
    def test_blocklisted_target_never_contacted(self, live_rng, scanner):
        blocklist = Blocklist()
        blocklist.add("127.0.0.0/8")
        gate = LiveScanGate(blocklist=blocklist)
        campaign = LiveScanCampaign(
            scanner,
            live_rng.substream("blocked"),
            gate=gate,
            limiter=_fast_limiter(),
        )
        snapshot = campaign.run([(LOOPBACK, 4840)])
        # Simulated-sweep accounting: probed counts only targets
        # actually contacted.
        assert snapshot.probed == 0
        assert snapshot.excluded == 1
        assert snapshot.records == []

    def test_grab_time_gate_is_defence_in_depth(self, live_rng, scanner):
        campaign = LiveScanCampaign(
            scanner, live_rng.substream("deep"), limiter=_fast_limiter()
        )
        # Reaching _grab_sync with a blocklisted address (a list-
        # assembly bug, by construction) must still refuse to connect.
        blocklist = Blocklist()
        blocklist.add("127.0.0.0/8")
        campaign._gate = LiveScanGate(blocklist=blocklist)
        from repro.scanner.executor import GrabTask

        with pytest.raises(EthicsViolation):
            campaign._grab_sync(GrabTask(LOOPBACK, 4840))

    def test_contactless_identity_refused(self, live_rng, rsa_1024):
        anonymous = ScannerIdentity(
            ClientIdentity(
                application_uri="urn:repro:tests:anonymous",
                application_name="scanner",  # no contact anywhere
                certificate=_identity(live_rng, rsa_1024)
                .client_identity.certificate,
                private_key=rsa_1024.private,
            )
        )
        with pytest.raises(EthicsViolation):
            LiveScanCampaign(
                anonymous, live_rng.substream("anon")
            )

    def test_oversized_target_list_refused(self, live_rng, scanner):
        campaign = LiveScanCampaign(
            scanner,
            live_rng.substream("big"),
            gate=LiveScanGate(max_targets=2),
            limiter=_fast_limiter(),
        )
        targets = [(LOOPBACK, 4840 + i) for i in range(3)]
        with pytest.raises(EthicsViolation):
            campaign.run(targets)

    def test_rate_limiter_paces_every_connection(
        self, live_rng, scanner, rsa_1024
    ):
        """One grab of an OPC UA host opens four connections
        (discovery, secure-channel probe, session, negotiated
        re-grab) — each one must pass the rate limiter, not just the
        first."""
        waits = []

        class _Spy(ScanRateLimiter):
            def acquire(self, host_key):
                waits.append(host_key)
                return 0.0

        server = build_server(
            DeterministicRng(96, "paced"), rsa_1024
        )
        with TcpServerHost(server) as (host, port):
            campaign = LiveScanCampaign(
                scanner,
                live_rng.substream("paced"),
                config=LiveScanConfig(workers=2),
                limiter=_Spy(rate_per_s=10_000, per_host_interval_s=0),
            )
            snapshot = campaign.run([(LOOPBACK, port)])
        assert snapshot.records[0].is_opcua
        assert waits == [LOOPBACK] * 4

    def test_rate_limiter_paces_refused_connects_too(
        self, live_rng, scanner
    ):
        waits = []

        class _Spy(ScanRateLimiter):
            def acquire(self, host_key):
                waits.append(host_key)
                return 0.0

        campaign = LiveScanCampaign(
            scanner,
            live_rng.substream("paced-refused"),
            config=LiveScanConfig(workers=2, connect_timeout_s=2.0),
            limiter=_Spy(),
        )
        campaign.run([(LOOPBACK, _free_port())])
        assert waits == [LOOPBACK]


class TestTargetParsing:
    def test_parse_lines(self):
        assert parse_target_line("10.0.0.1") == (parse_ipv4("10.0.0.1"), 4840)
        assert parse_target_line("10.0.0.1:4841 # lab PLC") == (
            parse_ipv4("10.0.0.1"),
            4841,
        )
        assert parse_target_line("   ") is None
        assert parse_target_line("# comment only") is None

    def test_hostnames_rejected(self):
        with pytest.raises(ValueError, match="IPv4 literal"):
            parse_target_line("plc.lab.example")

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            parse_target_line("10.0.0.1:0")
        with pytest.raises(ValueError):
            parse_target_line("10.0.0.1:notaport")

    def test_load_targets_dedupes_and_reports_line(self, tmp_path):
        listing = tmp_path / "targets.txt"
        listing.write_text(
            "# lab switch closet\n"
            "10.0.0.1\n"
            "10.0.0.1:4840\n"
            "10.0.0.2:4841\n"
        )
        assert load_targets(listing) == [
            (parse_ipv4("10.0.0.1"), 4840),
            (parse_ipv4("10.0.0.2"), 4841),
        ]
        listing.write_text("10.0.0.1\nnot-an-ip\n")
        with pytest.raises(ValueError, match=":2:"):
            load_targets(listing)
