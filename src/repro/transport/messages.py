"""UA-TCP connection protocol messages: Hello, Acknowledge, Error."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.uabin.builtin import read_string, write_string
from repro.util.binary import BinaryReader, BinaryWriter


class TransportError(Exception):
    """Framing violation or transport-level protocol error."""

    #: Coarse failure class for the scanner's rejection breakdown
    #: (:func:`repro.client.errors.categorize_error`).
    category = "protocol"


class TransportTimeout(TransportError):
    """An I/O deadline expired.

    Live sockets raise it for connect/read/write deadlines; the
    simulated lane raises it when a peer stalls past the cumulative
    stall deadline (``repro.netsim.net.DEFAULT_STALL_TIMEOUT_S``) —
    either way the scanner can tell a silent host from one that spoke
    garbage.
    """

    category = "timeout"


class MessageType(str, enum.Enum):
    HELLO = "HEL"
    ACKNOWLEDGE = "ACK"
    ERROR = "ERR"
    REVERSE_HELLO = "RHE"
    OPEN_CHANNEL = "OPN"
    CLOSE_CHANNEL = "CLO"
    MESSAGE = "MSG"


HEADER_SIZE = 8  # type(3) + chunk(1) + size(4)

DEFAULT_RECEIVE_BUFFER = 65536
DEFAULT_SEND_BUFFER = 65536
DEFAULT_MAX_MESSAGE_SIZE = 16 * 1024 * 1024
DEFAULT_MAX_CHUNK_COUNT = 4096
PROTOCOL_VERSION = 0


@dataclass(frozen=True)
class MessageHeader:
    """The 8-byte frame header preceding every transport message."""

    message_type: MessageType
    chunk_type: str  # 'F' final, 'C' intermediate, 'A' abort
    size: int  # total frame size including this header

    def encode(self) -> bytes:
        writer = BinaryWriter()
        writer.write_bytes(self.message_type.value.encode("ascii"))
        writer.write_bytes(self.chunk_type.encode("ascii"))
        writer.write_uint32(self.size)
        return writer.to_bytes()

    @classmethod
    def decode(cls, data: bytes) -> "MessageHeader":
        if len(data) < HEADER_SIZE:
            raise TransportError("short message header")
        try:
            message_type = MessageType(data[0:3].decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise TransportError(f"unknown message type: {data[0:3]!r}") from exc
        chunk_type = chr(data[3])
        if chunk_type not in ("F", "C", "A"):
            raise TransportError(f"invalid chunk type: {chunk_type!r}")
        size = int.from_bytes(data[4:8], "little")
        if size < HEADER_SIZE:
            raise TransportError(f"frame size too small: {size}")
        return cls(message_type, chunk_type, size)


@dataclass(frozen=True)
class HelloMessage:
    """Client's first message: buffer negotiation + endpoint URL."""

    protocol_version: int = PROTOCOL_VERSION
    receive_buffer_size: int = DEFAULT_RECEIVE_BUFFER
    send_buffer_size: int = DEFAULT_SEND_BUFFER
    max_message_size: int = DEFAULT_MAX_MESSAGE_SIZE
    max_chunk_count: int = DEFAULT_MAX_CHUNK_COUNT
    endpoint_url: str | None = None

    def encode_body(self) -> bytes:
        writer = BinaryWriter()
        writer.write_uint32(self.protocol_version)
        writer.write_uint32(self.receive_buffer_size)
        writer.write_uint32(self.send_buffer_size)
        writer.write_uint32(self.max_message_size)
        writer.write_uint32(self.max_chunk_count)
        write_string(writer, self.endpoint_url)
        return writer.to_bytes()

    @classmethod
    def decode_body(cls, data: bytes) -> "HelloMessage":
        reader = BinaryReader(data)
        return cls(
            protocol_version=reader.read_uint32(),
            receive_buffer_size=reader.read_uint32(),
            send_buffer_size=reader.read_uint32(),
            max_message_size=reader.read_uint32(),
            max_chunk_count=reader.read_uint32(),
            endpoint_url=read_string(reader),
        )


@dataclass(frozen=True)
class AcknowledgeMessage:
    """Server's reply to Hello."""

    protocol_version: int = PROTOCOL_VERSION
    receive_buffer_size: int = DEFAULT_RECEIVE_BUFFER
    send_buffer_size: int = DEFAULT_SEND_BUFFER
    max_message_size: int = DEFAULT_MAX_MESSAGE_SIZE
    max_chunk_count: int = DEFAULT_MAX_CHUNK_COUNT

    def encode_body(self) -> bytes:
        writer = BinaryWriter()
        writer.write_uint32(self.protocol_version)
        writer.write_uint32(self.receive_buffer_size)
        writer.write_uint32(self.send_buffer_size)
        writer.write_uint32(self.max_message_size)
        writer.write_uint32(self.max_chunk_count)
        return writer.to_bytes()

    @classmethod
    def decode_body(cls, data: bytes) -> "AcknowledgeMessage":
        reader = BinaryReader(data)
        return cls(
            protocol_version=reader.read_uint32(),
            receive_buffer_size=reader.read_uint32(),
            send_buffer_size=reader.read_uint32(),
            max_message_size=reader.read_uint32(),
            max_chunk_count=reader.read_uint32(),
        )


@dataclass(frozen=True)
class ErrorMessage:
    """Fatal transport error; the connection closes afterwards."""

    error_code: int = 0
    reason: str | None = None

    def encode_body(self) -> bytes:
        writer = BinaryWriter()
        writer.write_uint32(self.error_code)
        write_string(writer, self.reason)
        return writer.to_bytes()

    @classmethod
    def decode_body(cls, data: bytes) -> "ErrorMessage":
        reader = BinaryReader(data)
        return cls(error_code=reader.read_uint32(), reason=read_string(reader))
