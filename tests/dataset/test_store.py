"""Study-store tests: content addressing, round-trip, poisoning guards.

The central claim: a study that went ``scan → store → load`` is
byte-identical (golden digests) to the in-memory original, and a store
entry that is stale or tampered with can never be silently served.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.core.config import StudyConfig
from repro.core.golden import (
    study_digests,
    sweep_digests,
    tiny_spec,
    tiny_study_config,
)
from repro.core.study import Study
from repro.dataset.store import (
    META_FILE,
    SNAPSHOT_FILE,
    StoreIntegrityError,
    StudyStore,
    study_key,
)


@pytest.fixture(scope="module")
def stored(tmp_path_factory, serial_tiny_result):
    """A store holding the session's tiny study; returns (store, key).

    Module-scoped: serializing eight sweeps costs a couple of seconds,
    so the read-only tests share one save.  Tests that tamper with the
    entry use ``tampered`` below, which works on a throwaway copy.
    """
    store = StudyStore(tmp_path_factory.mktemp("store-ro") / "store")
    key = store.save(
        serial_tiny_result.config,
        serial_tiny_result.spec,
        serial_tiny_result.snapshots,
    )
    return store, key


@pytest.fixture()
def tampered(stored, tmp_path):
    """A private, mutable copy of the stored entry."""
    import shutil

    source, key = stored
    store = StudyStore(tmp_path / "store")
    shutil.copytree(source.entry_dir(key), store.entry_dir(key))
    return store, key


class TestContentAddressing:
    def test_key_is_stable(self):
        config = tiny_study_config()
        spec = tiny_spec()
        assert study_key(config, spec) == study_key(config, spec)

    def test_key_ignores_executor_and_workers(self):
        """Backends are byte-identical, so they must share one entry."""
        spec = tiny_spec()
        serial = tiny_study_config(executor="serial", workers=1)
        process = tiny_study_config(executor="process", workers=8)
        assert study_key(serial, spec) == study_key(process, spec)

    def test_key_tracks_result_affecting_config(self):
        spec = tiny_spec()
        base = tiny_study_config()
        other = StudyConfig(
            **{**base.__dict__, "noise_hosts": base.noise_hosts + 1}
        )
        assert study_key(base, spec) != study_key(other, spec)

    def test_key_tracks_spec(self):
        config = tiny_study_config()
        assert study_key(config, tiny_spec()) != study_key(
            config, tiny_spec(rows=4)
        )

    def test_fingerprint_prunes_unset_personality(self):
        """Well-behaved rows fingerprint without the sparse field.

        Growing the spec schema with an optional field must not
        invalidate existing stores of well-behaved studies; a set
        personality still keys its own entry.
        """
        from repro.dataset.store import spec_fingerprint

        spec = tiny_spec()
        for row in spec_fingerprint(spec):
            assert "personality" not in row

        from repro.core.golden import tiny_hostile_spec

        hostile = tiny_hostile_spec()
        fingerprinted = {
            row["personality"]
            for row in spec_fingerprint(hostile)
            if "personality" in row
        }
        assert fingerprinted == set(hostile.personality_counts())
        assert study_key(tiny_study_config(), hostile) != study_key(
            tiny_study_config(), spec
        )


class TestRoundTrip:
    def test_load_is_byte_identical(self, stored, serial_tiny_result):
        store, _ = stored
        loaded = store.load(
            serial_tiny_result.config, serial_tiny_result.spec
        )
        assert sweep_digests(loaded) == study_digests(serial_tiny_result)

    def test_study_run_loads_instead_of_scanning(
        self, stored, serial_tiny_result
    ):
        store, _ = stored
        result = Study(tiny_study_config(), spec=tiny_spec()).run(store=store)
        # A loaded result has no environment attached (nothing built).
        assert result._hosts is None and result._timeline is None
        assert study_digests(result) == study_digests(serial_tiny_result)

    def test_store_miss_returns_none(self, tmp_path):
        store = StudyStore(tmp_path / "empty")
        assert store.load(tiny_study_config(), tiny_spec()) is None
        assert not store.contains(tiny_study_config(), tiny_spec())

    def test_contains_and_keys(self, stored, serial_tiny_result):
        store, key = stored
        assert store.contains(
            serial_tiny_result.config, serial_tiny_result.spec
        )
        assert store.keys() == [key]

    def test_meta_records_digests(self, stored, serial_tiny_result):
        store, key = stored
        meta = store.read_meta(key)
        assert meta["per_sweep"] == study_digests(serial_tiny_result)
        assert meta["sweeps"] == len(serial_tiny_result.snapshots)


class TestPoisoningGuards:
    def test_tampered_snapshot_rejected(self, tampered, serial_tiny_result):
        store, key = tampered
        path = store.entry_dir(key) / SNAPSHOT_FILE
        lines = gzip.decompress(path.read_bytes()).decode().splitlines()
        # Flip one record field: an attacker/stale writer changing
        # scan data without updating meta.json must be caught.
        for index, line in enumerate(lines):
            record = json.loads(line)
            if record.get("is_opcua"):
                record["is_opcua"] = False
                lines[index] = json.dumps(record)
                break
        path.write_bytes(
            gzip.compress(("\n".join(lines) + "\n").encode())
        )
        with pytest.raises(StoreIntegrityError, match="digest mismatch"):
            store.load(serial_tiny_result.config, serial_tiny_result.spec)

    def test_truncated_snapshot_file_rejected(
        self, tampered, serial_tiny_result
    ):
        store, key = tampered
        path = store.entry_dir(key) / SNAPSHOT_FILE
        lines = gzip.decompress(path.read_bytes()).decode().splitlines()
        path.write_bytes(
            gzip.compress(("\n".join(lines[:-3]) + "\n").encode())
        )
        with pytest.raises(Exception):  # DatasetFormatError or integrity
            store.load(serial_tiny_result.config, serial_tiny_result.spec)

    def test_schema_version_mismatch_rejected(
        self, tampered, serial_tiny_result
    ):
        store, key = tampered
        meta_path = store.entry_dir(key) / META_FILE
        meta = json.loads(meta_path.read_text())
        meta["schema"] = meta["schema"] + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreIntegrityError, match="schema"):
            list(store.iter_validated(key))

    def test_half_written_meta_rejected(self, tampered, serial_tiny_result):
        """A crash mid-save must not leave an entry that crashes every
        later run with a raw JSONDecodeError."""
        store, key = tampered
        meta_path = store.entry_dir(key) / META_FILE
        content = meta_path.read_text()
        meta_path.write_text(content[: len(content) // 2])
        with pytest.raises(StoreIntegrityError, match="not valid JSON"):
            store.load(serial_tiny_result.config, serial_tiny_result.spec)

    def test_missing_sweep_in_meta_rejected(
        self, tampered, serial_tiny_result
    ):
        store, key = tampered
        meta_path = store.entry_dir(key) / META_FILE
        meta = json.loads(meta_path.read_text())
        dropped = list(meta["per_sweep"])[-1]
        del meta["per_sweep"][dropped]
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreIntegrityError):
            store.load(serial_tiny_result.config, serial_tiny_result.spec)


class TestCorpusStore:
    """Content-addressed capture corpora alongside study entries."""

    @pytest.fixture()
    def corpus(self):
        from repro.transport.capture import CaptureCorpus, TargetCapture

        target = TargetCapture(address=167772161, port=4840)
        target.events = [
            {"event": "host", "asn": None, "known": False},
            {"event": "now", "time": "2020-08-30T00:00:00+00:00"},
            {"event": "now", "time": "2020-08-30T00:00:00+00:00"},
            {
                "event": "connect-error",
                "category": "refused",
                "message": "10.0.0.1:4840 refused the connection",
            },
        ]
        return CaptureCorpus(
            meta={"label": "2020-08-30", "probed": 1, "excluded": 0},
            targets=[target],
        )

    def test_save_load_round_trip(self, tmp_path, corpus):
        from repro.dataset.store import StudyStore

        store = StudyStore(tmp_path / "store")
        key = store.save_corpus(corpus)
        assert key == corpus.digest()
        assert store.corpus_keys() == [key]
        loaded = store.load_corpus(key)
        assert loaded.meta == corpus.meta
        assert [t.events for t in loaded.targets] == [
            t.events for t in corpus.targets
        ]

    def test_saving_twice_is_idempotent(self, tmp_path, corpus):
        from repro.dataset.store import StudyStore

        store = StudyStore(tmp_path / "store")
        assert store.save_corpus(corpus) == store.save_corpus(corpus)
        assert len(store.corpus_keys()) == 1

    def test_corpora_invisible_to_study_keys(self, tmp_path, corpus):
        from repro.dataset.store import StudyStore

        store = StudyStore(tmp_path / "store")
        store.save_corpus(corpus)
        assert store.keys() == []

    def test_tampered_corpus_rejected(self, tmp_path, corpus):
        from repro.dataset.store import StudyStore

        store = StudyStore(tmp_path / "store")
        key = store.save_corpus(corpus)
        path = store.corpus_path(key)
        lines = gzip.decompress(path.read_bytes()).decode().splitlines()
        lines[-1] = lines[-1].replace("refused", "accepted")
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode()))
        with pytest.raises(StoreIntegrityError, match="digest mismatch"):
            store.load_corpus(key)

    def test_unknown_corpus_key(self, tmp_path):
        from repro.dataset.store import StudyStore

        store = StudyStore(tmp_path / "store")
        with pytest.raises(KeyError):
            store.load_corpus("0" * 64)


class TestAtomicPublish:
    """Crash-safety of re-saves: an interrupted write must leave the
    entry *absent* (re-runnable), never stale-but-valid-looking.

    Regression guard for the pre-sharding bug: ``save`` used to write
    the snapshot stream directly over an existing entry's file, so a
    crash mid-write left half-new bytes underneath the *old* ``meta``
    — a poisoned entry that failed with ``StoreIntegrityError``
    forever instead of being rescanned.
    """

    def test_crashed_resave_reads_as_absent(
        self, tmp_path, serial_tiny_result, monkeypatch
    ):
        import repro.dataset.store as store_module

        store = StudyStore(tmp_path / "store")
        config, spec = serial_tiny_result.config, serial_tiny_result.spec
        store.save(config, spec, serial_tiny_result.snapshots)
        assert store.load(config, spec) is not None

        def crash_mid_write(path, snapshots):
            path.write_bytes(b"\x1f\x8b half a gzip stream")
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(store_module, "write_snapshots", crash_mid_write)
        with pytest.raises(RuntimeError, match="simulated crash"):
            store.save(config, spec, serial_tiny_result.snapshots)

        # The half-written re-save must read as "not stored" — the
        # meta that marks an entry complete is gone before any byte of
        # snapshot data moves — so the study simply re-runs.
        assert store.load(config, spec) is None

        monkeypatch.undo()
        store.save(config, spec, serial_tiny_result.snapshots)
        assert study_digests(serial_tiny_result) == sweep_digests(
            store.load(config, spec)
        )

    def test_snapshots_never_written_in_place(
        self, tmp_path, serial_tiny_result, monkeypatch
    ):
        """The stream lands under a temp name and is renamed into
        place — the published path is never open for writing."""
        import repro.dataset.store as store_module

        seen_paths = []
        real_write = store_module.write_snapshots

        def spy(path, snapshots):
            seen_paths.append(path.name)
            return real_write(path, snapshots)

        monkeypatch.setattr(store_module, "write_snapshots", spy)
        store = StudyStore(tmp_path / "store")
        store.save(
            serial_tiny_result.config,
            serial_tiny_result.spec,
            serial_tiny_result.snapshots,
        )
        assert seen_paths == [".tmp." + SNAPSHOT_FILE]
        # The temp name keeps the .gz suffix: the writer picks its
        # codec from the suffix, and a plain-text temp file silently
        # renamed to .gz would poison every later load.
        assert seen_paths[0].endswith(".gz")

    def test_crashed_corpus_save_reads_as_absent(self, tmp_path, monkeypatch):
        from repro.transport import capture as capture_module
        from repro.transport.capture import CaptureCorpus, TargetCapture

        target = TargetCapture(address=167772161, port=4840)
        target.events = [{"event": "host", "asn": None, "known": False}]
        corpus = CaptureCorpus(meta={"label": "x"}, targets=[target])

        store = StudyStore(tmp_path / "store")

        def crash_mid_write(path, corpus):
            path.write_bytes(b"\x1f\x8b half a gzip stream")
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(capture_module, "write_corpus", crash_mid_write)
        with pytest.raises(RuntimeError, match="simulated crash"):
            store.save_corpus(corpus)
        assert store.corpus_keys() == []

        monkeypatch.undo()
        key = store.save_corpus(corpus)
        assert store.corpus_keys() == [key]
        assert store.load_corpus(key).meta == corpus.meta


class TestSortedListings:
    """``keys()``/``corpus_keys()`` are sorted, not iterdir-ordered.

    ``iterdir`` order is filesystem-dependent (inode order on ext4,
    name order on APFS); `repro runs` output and the catalog's
    registry digest are deterministic across machines only because
    the store sorts.  Entries are planted directly on disk in
    deliberately unsorted creation order so the test cannot pass by
    creation-order accident.
    """

    UNSORTED = ["f" * 64, "0" * 64, "9a" * 32, "33" * 32]

    def test_keys_are_sorted(self, tmp_path):
        store = StudyStore(tmp_path / "store")
        for name in self.UNSORTED:
            entry = store.entry_dir(name)
            entry.mkdir(parents=True)
            (entry / META_FILE).write_text("{}")
        assert store.keys() == sorted(self.UNSORTED)

    def test_corpus_keys_are_sorted(self, tmp_path):
        store = StudyStore(tmp_path / "store")
        for name in self.UNSORTED:
            entry = store.corpus_dir(name)
            entry.mkdir(parents=True)
            (entry / META_FILE).write_text("{}")
        assert store.corpus_keys() == sorted(self.UNSORTED)
        # Corpus entries never leak into the study listing.
        assert store.keys() == []


class TestResolveStore:
    """resolve_store is the one documented reader of REPRO_STUDY_STORE."""

    def test_explicit_path_wins_over_environment(self, tmp_path, monkeypatch):
        from repro.dataset.store import resolve_store

        monkeypatch.setenv("REPRO_STUDY_STORE", str(tmp_path / "env"))
        assert resolve_store(tmp_path / "flag").root == tmp_path / "flag"
        assert resolve_store().root == tmp_path / "env"

    def test_no_configuration_means_no_store(self, monkeypatch):
        from repro.dataset.store import resolve_store

        monkeypatch.delenv("REPRO_STUDY_STORE", raising=False)
        assert resolve_store() is None

    def test_default_store_is_a_deprecation_shim(self, tmp_path, monkeypatch):
        from repro.dataset.store import default_store

        monkeypatch.delenv("REPRO_STUDY_STORE", raising=False)
        with pytest.warns(DeprecationWarning, match="resolve_store"):
            store = default_store(tmp_path / "legacy")
        assert store.root == tmp_path / "legacy"
