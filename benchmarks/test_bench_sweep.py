"""Scan-engine benchmark: serial vs. parallel sweep throughput.

Times the final (2020-08-30) sweep — port scan, per-host grab,
follow-references — once per executor backend against an identically
re-assembled network, asserts the resulting snapshots are
byte-identical, and records hosts-per-second throughput to
``benchmarks/.sweep_metrics.json`` for ``benchmarks/report.py`` to
fold into ``BENCH_sweep.json``.

The threaded backend mostly overlaps scheduling (the simulation is
pure Python, so the GIL serializes it); the fork-based process backend
is the one that scales with cores.  The ≥2× speedup assertion
therefore targets the process backend and only on machines with at
least four CPUs (set ``REPRO_BENCH_STRICT=1`` to enforce it there).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.study import Study, StudyConfig
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import build_executor

SEED = 20200830
FINAL_SWEEP = 7
BACKENDS = (("serial", 1), ("thread", 4), ("process", 4))
METRICS_PATH = Path(__file__).resolve().parent / ".sweep_metrics.json"


def _snapshot_json(snapshot) -> str:
    return json.dumps(
        [r.to_json_dict() for r in snapshot.records], sort_keys=True
    )


def _run_final_sweep(study_result, executor_name: str, workers: int):
    """Re-assemble the last sweep's Internet and scan it once."""
    network = study_result.timeline.network_for_sweep(FINAL_SWEEP)
    study = Study(StudyConfig(seed=SEED))
    campaign = ScanCampaign(
        network,
        study.scanner_identity(),
        study._rng.substream("bench-sweep"),
        executor=build_executor(executor_name, workers),
    )
    start = time.perf_counter()
    snapshot = campaign.run_sweep(
        label="2020-08-30", follow_references=True, traverse=False
    )
    elapsed = time.perf_counter() - start
    return snapshot, elapsed


def test_bench_sweep_throughput(study_result):
    metrics = {"cpu_count": os.cpu_count(), "backends": {}}
    reference_json = None
    serial_seconds = None

    for name, workers in BACKENDS:
        snapshot, elapsed = _run_final_sweep(study_result, name, workers)
        payload = _snapshot_json(snapshot)
        if reference_json is None:
            reference_json = payload
            serial_seconds = elapsed
        else:
            assert payload == reference_json, (
                f"{name} backend diverged from the serial reference"
            )
        hosts = len(snapshot.records)
        metrics["backends"][f"{name}x{workers}"] = {
            "seconds": round(elapsed, 3),
            "hosts": hosts,
            "hosts_per_second": round(hosts / elapsed, 1),
            "speedup_vs_serial": round(serial_seconds / elapsed, 2),
        }
        print(
            f"[sweep] {name}x{workers}: {hosts} hosts in {elapsed:.2f}s "
            f"({hosts / elapsed:.0f} hosts/s, "
            f"{serial_seconds / elapsed:.2f}x serial)"
        )

    METRICS_PATH.write_text(json.dumps(metrics, indent=2))

    if os.environ.get("REPRO_BENCH_STRICT") and (os.cpu_count() or 1) >= 4:
        speedup = metrics["backends"]["processx4"]["speedup_vs_serial"]
        assert speedup >= 2.0, f"process pool only {speedup}x serial"


def test_bench_parallel_study_identical(study_result):
    """Acceptance: a full 8-sweep study with 4 workers is byte-identical
    to the serial reference (the session-cached ``study_result``).

    Uses the process backend deliberately: it is the backend whose
    worker-side state never propagates back to the parent, so the
    cross-sweep interactions (renewals, reseeding, discovery fleets)
    are the riskiest there — and on a multi-core runner it is also the
    fastest way to run the second study.
    """
    parallel = Study(
        StudyConfig(seed=SEED, executor="process", workers=4)
    ).run()
    assert len(parallel.snapshots) == len(study_result.snapshots)
    for serial_snap, parallel_snap in zip(
        study_result.snapshots, parallel.snapshots
    ):
        assert parallel_snap.date == serial_snap.date
        assert parallel_snap.probed == serial_snap.probed
        assert parallel_snap.port_open == serial_snap.port_open
        assert parallel_snap.excluded == serial_snap.excluded
        assert _snapshot_json(parallel_snap) == _snapshot_json(serial_snap)
