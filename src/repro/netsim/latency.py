"""Latency model for the simulated Internet.

Scan duration matters to the study only in aggregate (the paper
spreads a sweep over ~24 hours and paces traversals at 500 ms per
request); a simple per-AS base RTT plus jitter reproduces those
dynamics on the simulated clock without pretending to be ns-accurate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.util.rng import DeterministicRng


@dataclass
class LatencyModel:
    """Round-trip-time model: base per AS, jitter per operation."""

    rng: DeterministicRng
    default_rtt_s: float = 0.04
    jitter_fraction: float = 0.3
    per_asn_rtt: dict[int, float] = field(default_factory=dict)

    def set_asn_rtt(self, asn: int, rtt_s: float) -> None:
        self.per_asn_rtt[asn] = rtt_s

    def rtt(self, asn: int | None) -> float:
        base = self.per_asn_rtt.get(asn, self.default_rtt_s)
        jitter = base * self.jitter_fraction
        return max(0.001, base + self.rng.uniform(-jitter, jitter))

    def syn_rtt(self, asn: int | None) -> float:
        """Round trip for a bare SYN/SYN-ACK probe: base RTT, no jitter.

        SYN pacing only ever advances a probe batch's private clock —
        it is never recorded — so drawing jitter would burn one RNG
        call per probed address (the sweep probes orders of magnitude
        more addresses than it grabs) for timing nobody observes.
        """
        return self.per_asn_rtt.get(asn, self.default_rtt_s)

    def fork(self, label: str) -> "LatencyModel":
        """An independent jitter stream for one scan task.

        Keyed substreams keep parallel grabs deterministic: each task
        draws its jitter from ``(seed, label)`` instead of racing on a
        single shared generator.
        """
        substream = getattr(self.rng, "substream", None)
        if substream is not None:
            rng = substream(label)
        else:
            # Plain random.Random parent: derive a fresh generator from
            # (current parent state, label).  Reading the state does
            # not mutate it, so forks stay deterministic per label —
            # never hand back the shared mutable parent, which
            # concurrent tasks would interleave on nondeterministically.
            rng = random.Random(str((self.rng.getstate(), label)))
        return LatencyModel(
            rng=rng,
            default_rtt_s=self.default_rtt_s,
            jitter_fraction=self.jitter_fraction,
            per_asn_rtt=self.per_asn_rtt,
        )


@dataclass
class ZeroLatency:
    """Latency model used by unit tests: every exchange is free."""

    def rtt(self, asn: int | None) -> float:
        return 0.0

    def syn_rtt(self, asn: int | None) -> float:
        return 0.0

    def fork(self, label: str) -> "ZeroLatency":
        return self  # stateless: every view can share it
