import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AesCbc, AesCipher
from repro.crypto.hashes import get_hash, hash_bytes
from repro.crypto.hmac_prf import hmac_digest, p_hash


class TestAesKnownAnswers:
    """FIPS-197 appendix test vectors."""

    def test_aes128_fips_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AesCipher(key).encrypt_block(plain) == expected

    def test_aes192_fips_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AesCipher(key).encrypt_block(plain) == expected

    def test_aes256_fips_vector(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AesCipher(key).encrypt_block(plain) == expected

    def test_decrypt_inverts_fips_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        cipher = AesCipher(key)
        ct = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert cipher.decrypt_block(ct) == bytes.fromhex(
            "00112233445566778899aabbccddeeff"
        )

    def test_invalid_key_length_rejected(self):
        with pytest.raises(ValueError):
            AesCipher(b"short")

    def test_invalid_block_rejected(self):
        with pytest.raises(ValueError):
            AesCipher(b"k" * 16).encrypt_block(b"x" * 15)


class TestAesCbc:
    def test_round_trip(self):
        cbc = AesCbc(b"k" * 16, b"i" * 16)
        plaintext = b"0123456789abcdef" * 4
        assert AesCbc(b"k" * 16, b"i" * 16).decrypt(cbc.encrypt(plaintext)) == plaintext

    def test_unaligned_input_rejected(self):
        with pytest.raises(ValueError):
            AesCbc(b"k" * 16, b"i" * 16).encrypt(b"short")

    def test_bad_iv_rejected(self):
        with pytest.raises(ValueError):
            AesCbc(b"k" * 16, b"iv")

    def test_iv_affects_ciphertext(self):
        plaintext = b"0123456789abcdef"
        a = AesCbc(b"k" * 16, b"\x00" * 16).encrypt(plaintext)
        b = AesCbc(b"k" * 16, b"\x01" + b"\x00" * 15).encrypt(plaintext)
        assert a != b

    def test_cross_validation_with_cryptography(self):
        from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

        key, iv = b"K" * 32, b"I" * 16
        plaintext = b"cross validation" * 2
        ours = AesCbc(key, iv).encrypt(plaintext)
        enc = Cipher(algorithms.AES(key), modes.CBC(iv)).encryptor()
        theirs = enc.update(plaintext) + enc.finalize()
        assert ours == theirs

    @given(st.binary(min_size=16, max_size=64).filter(lambda b: len(b) % 16 == 0))
    def test_round_trip_property(self, plaintext):
        key, iv = b"p" * 16, b"q" * 16
        ct = AesCbc(key, iv).encrypt(plaintext)
        assert AesCbc(key, iv).decrypt(ct) == plaintext
        assert ct != plaintext


class TestHashes:
    def test_registry_lookup(self):
        assert get_hash("sha256").digest_size == 32
        assert get_hash("SHA1").digest_size == 20
        assert get_hash("md5").digest_size == 16

    def test_unknown_hash_rejected(self):
        with pytest.raises(ValueError):
            get_hash("sha512")

    def test_digest_matches_hashlib(self):
        assert hash_bytes("sha256", b"x") == hashlib.sha256(b"x").digest()

    def test_strength_ordering(self):
        assert get_hash("md5").strength_rank < get_hash("sha1").strength_rank
        assert get_hash("sha1").strength_rank < get_hash("sha256").strength_rank


class TestHmacAndPHash:
    def test_hmac_matches_stdlib(self):
        ours = hmac_digest("sha256", b"key", b"data")
        theirs = std_hmac.new(b"key", b"data", "sha256").digest()
        assert ours == theirs

    def test_p_hash_deterministic(self):
        a = p_hash("sha256", b"secret", b"seed", 64)
        b = p_hash("sha256", b"secret", b"seed", 64)
        assert a == b

    def test_p_hash_length(self):
        for length in (0, 1, 31, 32, 33, 100):
            assert len(p_hash("sha1", b"s", b"x", length)) == length

    def test_p_hash_prefix_property(self):
        # P_hash output for a shorter length is a prefix of a longer one.
        long = p_hash("sha256", b"secret", b"seed", 96)
        short = p_hash("sha256", b"secret", b"seed", 48)
        assert long[:48] == short

    def test_p_hash_secret_sensitivity(self):
        assert p_hash("sha256", b"a", b"seed", 32) != p_hash("sha256", b"b", b"seed", 32)

    def test_p_hash_negative_length_rejected(self):
        with pytest.raises(ValueError):
            p_hash("sha256", b"s", b"x", -1)
