"""Serve a :class:`~repro.server.engine.UaServer` over real TCP.

The engine's :class:`~repro.server.engine.ServerConnection` is a
synchronous bytes-in/bytes-out state machine — exactly what the
network simulator feeds.  This module binds the same machine to an
asyncio TCP server so the live transport lane can be exercised
end-to-end against the in-repo engine: loopback tests, and authorized
lab deployments.  It is not an Internet-facing server.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import suppress

from repro.server.engine import UaServer
from repro.transport.socket_io import shared_io_loop

_READ_CHUNK = 65536
_CONTROL_TIMEOUT_S = 10.0


class TcpServerHost:
    """One byte-stream engine listening on a real socket.

    ``server`` is usually a :class:`~repro.server.engine.UaServer`,
    but anything exposing ``new_connection()`` — or a bare zero-arg
    connection factory (a callable returning an object with
    ``receive(bytes) -> bytes``) — can be hosted.  That generality is
    what lets capture-corpus fixtures put a *non*-OPC-UA service
    behind a real port (the 0.5 ‰-path junk responder) next to a real
    engine.

    Runs on the shared transport I/O loop by default, so a loopback
    test multiplexes client and server bytes on one event loop —
    a genuine socket round-trip without extra threads.  Use as a
    context manager::

        with TcpServerHost(server) as (host, port):
            ...  # connect to (host, port)
    """

    def __init__(
        self,
        server: UaServer,
        host: str = "127.0.0.1",
        port: int = 0,
        loop: asyncio.AbstractEventLoop | None = None,
    ):
        factory = getattr(server, "new_connection", None)
        if factory is None:
            if not callable(server):
                raise TypeError(
                    "server must expose new_connection() or be a "
                    "connection factory callable"
                )
            factory = server
        self._connection_factory = factory
        self._host = host
        self._port = port
        self._loop = loop
        self._server: asyncio.Server | None = None
        self.address: tuple[str, int] | None = None

    def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("already started")
        loop = self._loop = self._loop or shared_io_loop()
        future = asyncio.run_coroutine_threadsafe(
            asyncio.start_server(self._handle, self._host, self._port),
            loop,
        )
        try:
            self._server = future.result(_CONTROL_TIMEOUT_S)
        except FutureTimeoutError:
            future.cancel()
            raise RuntimeError("I/O loop did not bind the server") from None
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    def stop(self) -> None:
        if self._server is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(), self._loop
        )
        with suppress(FutureTimeoutError):
            future.result(_CONTROL_TIMEOUT_S)
        self._server = None

    async def _shutdown(self) -> None:
        self._server.close()
        await self._server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = self._connection_factory()
        try:
            while not connection.closed:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                response = connection.receive(data)
                if response:
                    writer.write(response)
                    await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer reset mid-exchange; nothing to answer
        finally:
            writer.close()
            with suppress(ConnectionError, OSError):
                await writer.wait_closed()

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False
