import pytest
from hypothesis import given, strategies as st

from repro.util.binary import BinaryReader, BinaryWriter, NotEnoughData


class TestBinaryWriter:
    def test_empty_writer_yields_empty_bytes(self):
        assert BinaryWriter().to_bytes() == b""

    def test_write_bytes_appends(self):
        w = BinaryWriter()
        w.write_bytes(b"ab")
        w.write_bytes(b"cd")
        assert w.to_bytes() == b"abcd"

    def test_len_tracks_written_bytes(self):
        w = BinaryWriter()
        w.write_uint32(1)
        w.write_uint16(2)
        assert len(w) == 6

    def test_little_endian_uint32(self):
        w = BinaryWriter()
        w.write_uint32(0x01020304)
        assert w.to_bytes() == b"\x04\x03\x02\x01"

    def test_signed_negative_int32(self):
        w = BinaryWriter()
        w.write_int32(-1)
        assert w.to_bytes() == b"\xff\xff\xff\xff"

    def test_uint8_range_check(self):
        w = BinaryWriter()
        with pytest.raises(Exception):
            w.write_uint8(256)

    def test_double_round_trip(self):
        w = BinaryWriter()
        w.write_double(1.5)
        assert BinaryReader(w.to_bytes()).read_double() == 1.5


class TestBinaryReader:
    def test_read_past_end_raises(self):
        r = BinaryReader(b"ab")
        with pytest.raises(NotEnoughData):
            r.read_bytes(3)

    def test_read_past_end_preserves_position(self):
        r = BinaryReader(b"ab")
        with pytest.raises(NotEnoughData):
            r.read_uint32()
        assert r.position == 0

    def test_peek_does_not_advance(self):
        r = BinaryReader(b"abcd")
        assert r.peek(2) == b"ab"
        assert r.position == 0

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            BinaryReader(b"abcd").read_bytes(-1)

    def test_at_end(self):
        r = BinaryReader(b"a")
        assert not r.at_end()
        r.read_uint8()
        assert r.at_end()

    def test_skip(self):
        r = BinaryReader(b"abcd")
        r.skip(2)
        assert r.read_bytes(2) == b"cd"

    def test_offset_start(self):
        r = BinaryReader(b"abcd", offset=2)
        assert r.read_bytes(2) == b"cd"


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_uint64_round_trip(value):
    w = BinaryWriter()
    w.write_uint64(value)
    assert BinaryReader(w.to_bytes()).read_uint64() == value


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int32_round_trip(value):
    w = BinaryWriter()
    w.write_int32(value)
    assert BinaryReader(w.to_bytes()).read_int32() == value


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_concatenation_order(first, second):
    w = BinaryWriter()
    w.write_bytes(first)
    w.write_bytes(second)
    assert w.to_bytes() == first + second


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float_round_trip(value):
    w = BinaryWriter()
    w.write_float(value)
    assert BinaryReader(w.to_bytes()).read_float() == value
