"""IPv6 support for the simulated Internet (paper future work, §6).

The paper scanned IPv4 only and conjectured that IPv6-reachable
OPC UA devices are "not configured more securely".  This module adds
what an IPv6 measurement needs: address parsing/formatting, prefix
blocks, and *hitlist-based* discovery — sweeping 2**128 addresses is
impossible, so real IPv6 scans probe curated hitlists (e.g. from DNS,
certificates, or IPv4-correlated addresses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.blocklist import Blocklist
from repro.netsim.net import SimNetwork
from repro.util.ipaddr import MAX_IPV6, parse_ipv6
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class Ipv6Block:
    """An IPv6 prefix, e.g. ``Ipv6Block.parse("2001:db8::/32")``."""

    network: int
    prefix_len: int

    def __post_init__(self):
        if not 0 <= self.prefix_len <= 128:
            raise ValueError(f"invalid prefix length: {self.prefix_len}")
        if self.network & ~self.mask & MAX_IPV6:
            raise ValueError("network address has host bits set")

    @classmethod
    def parse(cls, text: str) -> "Ipv6Block":
        addr, sep, plen = text.partition("/")
        if not sep:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(parse_ipv6(addr), int(plen))

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (MAX_IPV6 << (128 - self.prefix_len)) & MAX_IPV6

    def __contains__(self, address: int) -> bool:
        return (address & self.mask) == self.network

    def address_at(self, index: int) -> int:
        if index >> (128 - self.prefix_len):
            raise IndexError(f"index outside /{self.prefix_len}")
        return self.network + index


@dataclass
class HitlistScanResult:
    port: int
    probed: int = 0
    excluded: int = 0
    open_addresses: list[int] = field(default_factory=list)


def sweep_hitlist(
    network: SimNetwork,
    port: int,
    hitlist: list[int],
    rng: DeterministicRng,
    blocklist: Blocklist | None = None,
) -> HitlistScanResult:
    """Probe a curated IPv6 hitlist on ``port``.

    Unlike the IPv4 sweep there is no exhaustive enumeration; coverage
    is exactly the hitlist's coverage — the structural limitation of
    IPv6 scanning the paper alludes to.
    """
    blocklist = blocklist or Blocklist()
    result = HitlistScanResult(port=port)
    seen: set[int] = set()
    for address in rng.shuffled(hitlist):
        if address in seen:
            continue
        seen.add(address)
        if address in blocklist:
            result.excluded += 1
            continue
        result.probed += 1
        if network.syn(address, port):
            result.open_addresses.append(address)
    result.open_addresses.sort()
    return result
