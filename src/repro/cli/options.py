"""Shared option groups and argument plumbing for the CLI.

Every subcommand module composes its parser from these helpers, so a
flag spelled ``--store`` means the same thing — same help text, same
resolution rules — on every verb that takes it.  The helpers are
public API: downstream tools embedding the repro CLI can reuse them
to stay flag-compatible.
"""

from __future__ import annotations

import argparse

from repro.scanner.executor import EXECUTOR_NAMES, resolve_executor

#: Default study seed — the paper's last sweep date.
DEFAULT_SEED = 20200830


def add_seed(parser: argparse.ArgumentParser) -> None:
    """The full study option group: ``--seed`` + executor + store."""
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="study seed (default: 20200830, the paper's last sweep date)",
    )
    add_executor(parser)
    add_store(parser)


def add_executor(parser: argparse.ArgumentParser) -> None:
    """``--workers`` / ``--executor``: the scan-backend option group."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "scan workers per sweep (default: 1 for --executor serial, "
            "all CPUs for thread/process, 32 in-flight coroutines for "
            "async; >1 alone implies --executor process)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help=(
            "scan backend: serial (default), thread, process, or async "
            "(results are identical; only wall-clock time changes)"
        ),
    )


def add_store(parser: argparse.ArgumentParser) -> None:
    """``--store`` / ``--no-store``: the study-store option group."""
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "study store directory (default: $REPRO_STUDY_STORE if set); "
            "studies are persisted there content-addressed and loaded "
            "instead of re-scanned"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore any configured study store and always scan",
    )


def resolve_store(args):
    """The store the parsed arguments select, or ``None``.

    ``--no-store`` wins; otherwise ``--store DIR`` or the
    ``REPRO_STUDY_STORE`` environment variable via
    :func:`repro.dataset.store.resolve_store`.
    """
    from repro.dataset.store import resolve_store as _resolve

    if getattr(args, "no_store", False):
        return None
    return _resolve(getattr(args, "store", None))


def require_store(args, reason: str):
    """Resolve the store or exit with the one canonical hint.

    Every verb that cannot run storeless funnels through here, so the
    "pass --store DIR or set REPRO_STUDY_STORE" remedy is spelled
    exactly once.
    """
    store = resolve_store(args)
    if store is None:
        raise SystemExit(
            f"repro: error: {reason}; pass --store DIR or set "
            "REPRO_STUDY_STORE"
        )
    return store


def require_catalog(args, reason: str):
    """A :class:`~repro.dataset.catalog.StudyCatalog` over the
    required store (see :func:`require_store`)."""
    from repro.dataset.catalog import StudyCatalog

    return StudyCatalog(require_store(args, reason))


def executor_from_args(args) -> tuple[str, int]:
    """Resolve ``--executor``/``--workers`` into ``(name, workers)``."""
    try:
        return resolve_executor(args.executor, args.workers)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")


def study_result(args):
    """The study the arguments describe: loaded from the store on a
    hit, scanned otherwise."""
    from repro.core.study import default_study_result

    executor, workers = executor_from_args(args)
    store = resolve_store(args)
    return default_study_result(args.seed, executor, workers, store=store)
