"""Study configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StudyConfig:
    """Knobs of a full study run.

    ``noise_hosts`` adds non-OPC UA services on TCP/4840 to each sweep
    (the paper found OPC UA on only 0.5 ‰ of hosts with the port open;
    simulating millions of such hosts is pointless, so a token number
    keeps the code path exercised — documented in DESIGN.md).
    ``traverse_all_sweeps`` enables the address-space traversal on
    every sweep instead of only the last (Figure 7 uses the latest
    measurement, so the default keeps weekly sweeps fast).

    ``executor``/``workers`` select the scan backend (see
    :mod:`repro.scanner.executor`): ``serial`` (the default),
    ``thread``, ``process``, or ``async``.  Snapshots are
    bit-identical across backends; only wall-clock time changes.

    ``probe_batch_size`` sets how many candidate addresses each SYN
    probe batch (one executor task) covers; ``None`` uses
    :data:`repro.netsim.tcpscan.DEFAULT_BATCH_SIZE`.  Granularity
    only — never affects snapshot bytes.

    ``discovery_scale`` shrinks the weekly discovery-server fleet
    proportionally (1.0 = the paper's counts).  Reduced-population
    studies — the golden-digest tests scan a handful of spec rows —
    use it so the fleet does not dwarf the servers under test.

    The config is frozen; derive variants with :func:`dataclasses.replace`::

        >>> from dataclasses import replace
        >>> config = StudyConfig()
        >>> config.seed, config.executor
        (20200830, 'serial')
        >>> replace(config, executor="process", workers=4).workers
        4
        >>> config.workers  # the original is untouched
        1
    """

    seed: int = 20200830
    noise_hosts: int = 40
    traverse_all_sweeps: bool = False
    follow_references_from_sweep: int = 3  # 2020-05-04, as in the paper
    extra_sweep_candidates: int = 500  # random empty addresses probed
    executor: str = "serial"
    workers: int = 1
    probe_batch_size: int | None = None
    discovery_scale: float = 1.0
