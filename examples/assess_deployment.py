#!/usr/bin/env python3
"""Assess the security configuration of OPC UA deployments.

Builds a small simulated network with differently (mis)configured
servers — the misconfiguration archetypes the paper found in the wild —
scans them like the study's zgrab2 module, and prints a security
assessment per host.

Run:  python examples/assess_deployment.py
"""

from repro.analysis.deficits import analyze_deficits, host_deficits
from repro.analysis.reuse import analyze_certificate_reuse
from repro.client import ClientIdentity
from repro.crypto.rsa import generate_rsa_key
from repro.netsim.net import SimHost, SimNetwork
from repro.scanner.grabber import grab_host
from repro.secure.policies import (
    POLICY_BASIC128RSA15,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
)
from repro.server import EndpointConfig, ServerBehavior, ServerConfig, UaServer
from repro.uabin.enums import MessageSecurityMode, UserTokenType
from repro.util.ipaddr import format_ipv4, parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import SimClock, parse_utc
from repro.x509.builder import make_self_signed

N = MessageSecurityMode.NONE
SE = MessageSecurityMode.SIGN_AND_ENCRYPT


def make_server(rng, name, endpoint_configs, tokens, cert_hash, behavior=None,
                key_bits=1024):
    keys = generate_rsa_key(key_bits, rng.substream(f"{name}-key"))
    certificate = make_self_signed(
        keys,
        common_name=name,
        application_uri=f"urn:assess:{name}",
        not_before=parse_utc("2018-06-01"),
        hash_name=cert_hash,
        rng=rng.substream(f"{name}-cert"),
    )
    config = ServerConfig(
        application_uri=f"urn:assess:{name}",
        application_name=name,
        endpoint_url="opc.tcp://0.0.0.0:4840/",
        certificate=certificate,
        private_key=keys.private,
        endpoint_configs=endpoint_configs,
        token_types=tokens,
    )
    if behavior:
        config.behavior = behavior
    return UaServer(config, rng.substream(name))


def main() -> None:
    rng = DeterministicRng(7, "assess")
    network = SimNetwork(SimClock(parse_utc("2020-08-30")))

    deployments = {
        "legacy-plc": make_server(  # no security at all
            rng, "legacy-plc",
            [EndpointConfig(N, POLICY_NONE)],
            [UserTokenType.ANONYMOUS],
            "sha1",
        ),
        "deprecated-gateway": make_server(  # SHA-1 policy as best option
            rng, "deprecated-gateway",
            [EndpointConfig(N, POLICY_NONE),
             EndpointConfig(SE, POLICY_BASIC128RSA15)],
            [UserTokenType.USERNAME],
            "sha1",
        ),
        "mismatched-cert": make_server(  # strong policy, weak certificate
            rng, "mismatched-cert",
            [EndpointConfig(N, POLICY_NONE),
             EndpointConfig(SE, POLICY_BASIC256SHA256)],
            [UserTokenType.USERNAME],
            "sha1",
        ),
        "well-configured": make_server(  # what the guidelines ask for
            rng, "well-configured",
            [EndpointConfig(SE, POLICY_BASIC256SHA256)],
            [UserTokenType.USERNAME],
            "sha256",
            behavior=ServerBehavior(reject_untrusted_client_certs=True),
            key_bits=2048,  # Basic256Sha256 requires >= 2048-bit keys
        ),
    }

    for offset, server in enumerate(deployments.values()):
        host = SimHost(address=parse_ipv4(f"10.0.0.{offset + 1}"), asn=64700)
        host.listen(4840, server.new_connection)
        network.add_host(host)

    scanner_keys = generate_rsa_key(1024, rng.substream("scan-key"))
    identity = ClientIdentity(
        application_uri="urn:assess:scanner",
        application_name="Assessment scanner",
        certificate=make_self_signed(
            scanner_keys, "scanner", "urn:assess:scanner",
            parse_utc("2020-01-01"), "sha256", rng.substream("scan-cert"),
        ),
        private_key=scanner_keys.private,
    )

    records = [
        grab_host(network, parse_ipv4(f"10.0.0.{i + 1}"), 4840, identity,
                  rng.substream(f"grab-{i}"))
        for i in range(len(deployments))
    ]

    reuse = analyze_certificate_reuse(records)
    reused = {g.thumbprint_hex for g in reuse.reused_on_3plus}
    summary = analyze_deficits(records)

    print("assessment results")
    print("==================")
    for name, record in zip(deployments, records):
        flags = host_deficits(record, reused)
        verdict = ", ".join(sorted(flags)) if flags else "no deficits found"
        modes = "/".join(sorted(m.short_label for m in record.security_modes()))
        print(f"{format_ipv4(record.ip)}  {name:<20} modes={modes:<9} -> {verdict}")
    print(
        f"\n{summary.deficient} of {summary.total_servers} deployments "
        f"deficient ({summary.deficient_fraction:.0%}) — "
        "the paper measured 92 % across the IPv4 Internet"
    )


if __name__ == "__main__":
    main()
