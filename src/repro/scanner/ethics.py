"""Responsible-disclosure workflow (paper Appendix A).

The authors searched accessible address spaces for operator contact
information (e.g. nodes containing e-mail addresses), notified the
operators of 50 systems, and tracked the (sparse) responses: two
replies, and exactly one system that subsequently implemented access
control.  This module implements that workflow over scan records:

* :func:`find_contact_addresses` — e-mail discovery in readable node
  values;
* :class:`NotificationCampaign` — outreach bookkeeping with
  per-operator state;
* :func:`measure_remediation` — compare a later snapshot against the
  notified set to see who actually fixed their configuration;
* :class:`LiveScanGate` — the hard preconditions in front of every
  *live* connection (explicit bounded target list, blocklist honour,
  reachable contact information in the scanner identity), mirroring
  the measures in the paper's Appendix A.1.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.netsim.blocklist import Blocklist
from repro.scanner.records import MeasurementSnapshot
from repro.util.ipaddr import format_address

_EMAIL_RE = re.compile(
    r"[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\.[a-zA-Z]{2,}"
)


def find_contact_addresses(values: list[str]) -> list[str]:
    """Extract e-mail addresses from readable node values."""
    found = []
    for value in values:
        if not isinstance(value, str):
            continue
        for match in _EMAIL_RE.findall(value):
            if match not in found:
                found.append(match)
    return found


class EthicsViolation(RuntimeError):
    """A live-scan precondition from the paper's Appendix A is unmet."""


#: Ceiling on one live run's explicit target list.  The live lane
#: exists for authorized lab scans, not Internet sweeps; anything
#: larger than this is almost certainly the wrong tool.
DEFAULT_MAX_LIVE_TARGETS = 4096


@dataclass
class LiveScanGate:
    """Hard gate in front of every live (non-simulated) connection.

    The simulated campaign can afford to treat ethics as bookkeeping;
    a live scan cannot.  Before any packet leaves the machine the
    gate requires, mirroring the paper's Appendix A.1 measures:

    * a scanner identity whose certificate and application name carry
      a reachable contact e-mail plus an opt-out URL, so operators
      can identify the research and reach the researchers;
    * an explicit, bounded target list — the live lane performs no
      address generation of any kind;
    * the opt-out blocklist honoured per target, checked again at
      grab time (defence in depth against list-assembly bugs).
    """

    blocklist: Blocklist = field(default_factory=Blocklist)
    max_targets: int = DEFAULT_MAX_LIVE_TARGETS

    def require_contact(self, identity) -> None:
        """Reject scanner identities operators could not trace."""
        client = identity.client_identity
        if client.certificate is None:
            raise EthicsViolation(
                "live scans need a scanner certificate so scanned "
                "servers log an attributable identity"
            )
        contact_haystack = [
            client.application_name or "",
            getattr(identity, "contact_url", "") or "",
            client.certificate.subject.rfc4514(),
        ]
        if not find_contact_addresses(contact_haystack):
            raise EthicsViolation(
                "scanner identity carries no contact e-mail; embed "
                "one in the application name, e.g. 'Research scanner "
                "(contact: you@lab.example)'"
            )
        if not getattr(identity, "contact_url", None):
            raise EthicsViolation(
                "scanner identity carries no opt-out contact URL"
            )

    def check_target_count(self, count: int) -> None:
        if count > self.max_targets:
            raise EthicsViolation(
                f"{count} targets exceed the {self.max_targets}-target "
                "bound for authorized lab scans"
            )

    def permits(self, address: int) -> bool:
        return address not in self.blocklist

    def check_target(self, address: int) -> None:
        if not self.permits(address):
            raise EthicsViolation(
                f"{format_address(address)} is blocklisted (operator "
                "opt-out)"
            )


@dataclass
class Notification:
    """One outreach attempt to one operator."""

    ip: int
    port: int
    contact: str
    sent_on: str
    channel: str = "email"
    replied: bool = False
    remediated: bool = False


@dataclass
class NotificationCampaign:
    """Tracks which operators of accessible systems were notified."""

    notifications: list[Notification] = field(default_factory=list)

    def notify_from_snapshot(
        self,
        snapshot: MeasurementSnapshot,
        contact_values: dict[tuple[int, int], list[str]],
    ) -> int:
        """Create notifications for accessible hosts with contacts.

        ``contact_values`` maps (ip, port) to readable string values
        collected during traversal; only hosts whose values contain an
        e-mail address can be contacted (the paper reached 50 of 493).
        """
        sent = 0
        already = {(n.ip, n.port) for n in self.notifications}
        for record in snapshot.records:
            if not record.anonymous_accessible():
                continue
            key = (record.ip, record.port)
            if key in already:
                continue
            contacts = find_contact_addresses(contact_values.get(key, []))
            if not contacts:
                continue
            self.notifications.append(
                Notification(
                    ip=record.ip,
                    port=record.port,
                    contact=contacts[0],
                    sent_on=snapshot.date,
                )
            )
            sent += 1
        return sent

    @property
    def contacted_hosts(self) -> set[tuple[int, int]]:
        return {(n.ip, n.port) for n in self.notifications}

    def record_reply(self, ip: int, port: int) -> None:
        for notification in self.notifications:
            if (notification.ip, notification.port) == (ip, port):
                notification.replied = True
                return
        raise KeyError(f"no notification for {(ip, port)}")

    @property
    def reply_count(self) -> int:
        return sum(1 for n in self.notifications if n.replied)


def measure_remediation(
    campaign: NotificationCampaign, later_snapshot: MeasurementSnapshot
) -> dict[str, int]:
    """Did notified operators fix their systems by ``later_snapshot``?

    A system counts as remediated when it is still online but no
    longer anonymously accessible; offline systems are reported
    separately (the paper found all but three still online, and one
    system with access control added).
    """
    by_key = {(r.ip, r.port): r for r in later_snapshot.records}
    remediated = 0
    still_open = 0
    offline = 0
    for notification in campaign.notifications:
        record = by_key.get((notification.ip, notification.port))
        if record is None or not record.is_opcua:
            offline += 1
            continue
        if record.anonymous_accessible():
            still_open += 1
        else:
            remediated += 1
            notification.remediated = True
    return {
        "notified": len(campaign.notifications),
        "remediated": remediated,
        "still_open": still_open,
        "offline": offline,
    }
