"""Regenerates the IPv6 future-work extension (§6 conjecture).

This experiment runs an actual hitlist scan, so it executes a single
round instead of pytest-benchmark's default repetition.
"""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_ipv6_extension(benchmark, study_result):
    report = benchmark.pedantic(
        run_experiment, args=("ipv6", study_result), rounds=1, iterations=1
    )
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
