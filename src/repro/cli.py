"""Command-line interface.

Usage::

    python -m repro.cli study                 # run all sweeps + experiments
    python -m repro.cli study --store .study-store --scan-only
    python -m repro.cli analyze --store .study-store
    python -m repro.cli experiment fig3       # one experiment
    python -m repro.cli list                  # known experiments
    python -m repro.cli dataset out.jsonl     # anonymized dataset release
    python -m repro.cli policies              # print Table 1

The full study builds ~1900 hosts and scans them eight times; the
first invocation also generates the RSA key cache (several minutes).
With ``--store DIR`` (or ``REPRO_STUDY_STORE=DIR``), the sweeps are
persisted content-addressed under DIR and every later invocation —
``study``, ``experiment``, ``dataset``, ``analyze`` — loads them in
well under a second instead of re-scanning.  ``analyze`` never scans:
it runs the analysis registry straight off a stored study.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.study import StudyConfig, default_study_result
from repro.scanner.executor import EXECUTOR_NAMES, resolve_executor

# Mirrors repro.analysis.pipeline.ANALYSIS_NAMES (pinned by a CLI
# test) so building the parser never imports the analysis stack.
ANALYZE_CHOICES = (
    "modes", "policies", "certs", "reuse", "access",
    "rights", "deficits", "breakdown", "longitudinal", "ipv6",
)


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=20200830,
        help="study seed (default: 20200830, the paper's last sweep date)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "scan workers per sweep (default: 1 for --executor serial, "
            "all CPUs for thread/process, 32 in-flight coroutines for "
            "async; >1 alone implies --executor process)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help=(
            "scan backend: serial (default), thread, process, or async "
            "(results are identical; only wall-clock time changes)"
        ),
    )
    _add_store(parser)


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "study store directory (default: $REPRO_STUDY_STORE if set); "
            "studies are persisted there content-addressed and loaded "
            "instead of re-scanned"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore any configured study store and always scan",
    )


def _resolve_store(args):
    from repro.dataset.store import default_store

    if getattr(args, "no_store", False):
        return None
    return default_store(args.store)


def _executor(args) -> tuple[str, int]:
    try:
        return resolve_executor(args.executor, args.workers)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")


def _study_result(args):
    executor, workers = _executor(args)
    store = _resolve_store(args)
    return default_study_result(args.seed, executor, workers, store=store)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Easing the Conscience with OPC UA' (IMC 2020)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the full study")
    _add_seed(study)
    study.add_argument(
        "--scan-only",
        action="store_true",
        help=(
            "run (or load) the sweeps and print their digests without "
            "regenerating the experiments — the store-building mode CI "
            "uses before fanning analyses out from the store"
        ),
    )

    experiment = commands.add_parser(
        "experiment", help="regenerate one table/figure"
    )
    experiment.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_seed(experiment)

    commands.add_parser("list", help="list known experiments")

    analyze = commands.add_parser(
        "analyze",
        help="run the analysis registry from a stored study (no scan)",
    )
    _add_seed(analyze)
    analyze.add_argument(
        "--analysis",
        action="append",
        choices=ANALYZE_CHOICES,
        metavar="NAME",
        help=(
            "run only this analysis (repeatable; default: all of "
            + ", ".join(ANALYZE_CHOICES)
            + ")"
        ),
    )
    analyze.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the canonical JSON report to PATH",
    )

    dataset = commands.add_parser(
        "dataset", help="write the anonymized dataset release"
    )
    dataset.add_argument("path", help="output JSONL path")
    _add_seed(dataset)

    commands.add_parser("policies", help="print the Table 1 policy catalogue")
    return parser


def cmd_study(args) -> int:
    result = _study_result(args)
    if args.scan_only:
        from repro.core.golden import study_digest, study_digests

        for date, digest in study_digests(result).items():
            print(f"{date}  {digest}")
        print(f"study digest: {study_digest(result)}")
        records = sum(len(s.records) for s in result.snapshots)
        print(f"{len(result.snapshots)} sweeps / {records} records")
        return 0
    exact = total = 0
    for experiment_id in EXPERIMENTS:
        report = run_experiment(experiment_id, result)
        print(report.render())
        print()
        exact += report.exact_matches()
        total += len(report.comparisons)
    print(f"reproduction summary: {exact}/{total} metrics match the paper")
    return 0


def cmd_experiment(args) -> int:
    result = _study_result(args)
    report = run_experiment(args.experiment_id, result)
    print(report.render())
    return 0


def cmd_list(args) -> int:
    for experiment_id, function in EXPERIMENTS.items():
        summary = (function.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:<12} {summary}")
    return 0


def cmd_analyze(args) -> int:
    """Analyses from a persisted store — never scans."""
    from repro.analysis.pipeline import run_analyses
    from repro.deployments.spec import build_default_spec
    from repro.reporting.summary import render_analysis_report

    store = _resolve_store(args)
    if store is None:
        raise SystemExit(
            "repro: error: analyze needs a study store; pass --store DIR "
            "or set REPRO_STUDY_STORE"
        )
    config = StudyConfig(seed=args.seed)
    spec = build_default_spec()
    snapshots = store.load(config, spec)
    if snapshots is None:
        raise SystemExit(
            f"repro: error: no stored study for seed {args.seed} under "
            f"{store.root}; build one with "
            f"`repro study --store {store.root} --scan-only`"
        )
    executor, workers = _executor(args)
    report = run_analyses(
        snapshots,
        spec,
        seed=args.seed,
        executor=executor,
        workers=workers,
        names=tuple(args.analysis) if args.analysis else None,
    )
    print(render_analysis_report(report))
    if args.json:
        payload = report.to_json_dict()
        payload["digest"] = report.digest()
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_dataset(args) -> int:
    from repro.dataset import AnonymizationMap, anonymize_snapshot
    from repro.dataset.io import write_snapshots

    result = _study_result(args)
    mapping = AnonymizationMap()
    released = [
        anonymize_snapshot(snapshot, mapping) for snapshot in result.snapshots
    ]
    write_snapshots(args.path, released)
    records = sum(len(s.records) for s in released)
    print(f"wrote {len(released)} snapshots / {records} records to {args.path}")
    return 0


def cmd_policies(args) -> int:
    from repro.reporting.tables import render_table
    from repro.secure.policies import ALL_POLICIES

    rows = [
        [
            policy.name,
            policy.short_label,
            "/".join(policy.certificate_hash) or "-",
            f"[{policy.min_key_bits}; {policy.max_key_bits}]"
            if policy.provides_security
            else "-",
            "deprecated"
            if policy.is_deprecated
            else ("insecure" if not policy.provides_security else "current"),
        ]
        for policy in ALL_POLICIES
    ]
    print(
        render_table(
            ["Policy", "A", "Cert. hash", "Key bits", "Status"],
            rows,
            title="OPC UA security policies (paper Table 1)",
        )
    )
    return 0


_COMMANDS = {
    "study": cmd_study,
    "experiment": cmd_experiment,
    "list": cmd_list,
    "analyze": cmd_analyze,
    "dataset": cmd_dataset,
    "policies": cmd_policies,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
