from datetime import timedelta

import pytest

from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509 import (
    CertificateBuilder,
    CertificateError,
    DistinguishedName,
    parse_certificate,
    sha1_thumbprint,
    verify_certificate_signature,
    verify_validity,
)
from repro.x509.builder import make_self_signed
from repro.x509.fingerprint import thumbprint_hex


@pytest.fixture(scope="module")
def cert_rng():
    return DeterministicRng(11, "x509-tests")


@pytest.fixture(scope="module")
def basic_cert(rsa_1024, cert_rng):
    return make_self_signed(
        rsa_1024,
        common_name="device-1",
        application_uri="urn:test:device-1",
        not_before=parse_utc("2019-06-01"),
        hash_name="sha256",
        rng=cert_rng.substream("basic"),
        organization="Test Manufacturer GmbH",
    )


class TestDistinguishedName:
    def test_build_and_render(self):
        name = DistinguishedName.build(common_name="x", organization="Acme")
        assert name.rfc4514() == "O=Acme,CN=x"

    def test_parse_rfc4514(self):
        name = DistinguishedName.parse_rfc4514("O=Acme, CN=x")
        assert name.common_name == "x"
        assert name.organization == "Acme"

    def test_parse_rejects_unknown_attribute(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse_rfc4514("XX=1")

    def test_der_round_trip(self):
        name = DistinguishedName.build(
            common_name="dev", organization="O", country="DE"
        )
        assert DistinguishedName.from_der_value(name.to_der_value()) == name

    def test_get_missing_returns_none(self):
        assert DistinguishedName.build(common_name="x").organization is None


class TestBuildParse:
    def test_round_trip_preserves_subject(self, basic_cert):
        parsed = parse_certificate(basic_cert.raw_der)
        assert parsed.subject.common_name == "device-1"
        assert parsed.subject.organization == "Test Manufacturer GmbH"

    def test_self_signed_detected(self, basic_cert):
        assert basic_cert.self_signed

    def test_application_uri_recovered(self, basic_cert):
        assert basic_cert.application_uri == "urn:test:device-1"

    def test_signature_hash_recovered(self, basic_cert):
        assert basic_cert.signature_hash == "sha256"

    def test_key_bits_recovered(self, basic_cert):
        assert basic_cert.key_bits == 1024

    def test_validity_window(self, basic_cert):
        assert basic_cert.not_before == parse_utc("2019-06-01")
        assert basic_cert.not_after == basic_cert.not_before + timedelta(days=365 * 5)

    def test_signature_verifies(self, basic_cert):
        assert verify_certificate_signature(basic_cert)

    def test_tampered_cert_fails_verification(self, basic_cert):
        raw = bytearray(basic_cert.raw_der)
        # Flip a byte inside the TBS region (after headers).
        raw[40] ^= 0x01
        try:
            tampered = parse_certificate(bytes(raw))
        except CertificateError:
            return  # structurally broken is also a pass
        assert not verify_certificate_signature(tampered)

    @pytest.mark.parametrize("hash_name", ["md5", "sha1", "sha256"])
    def test_all_signature_hashes(self, rsa_1024, cert_rng, hash_name):
        cert = make_self_signed(
            rsa_1024,
            common_name="h",
            application_uri="urn:h",
            not_before=parse_utc("2020-01-01"),
            hash_name=hash_name,
            rng=cert_rng.substream(f"hash-{hash_name}"),
        )
        assert cert.signature_hash == hash_name
        assert verify_certificate_signature(cert)

    def test_garbage_rejected(self):
        with pytest.raises(CertificateError):
            parse_certificate(b"not a certificate")

    def test_ca_signed_certificate(self, rsa_1024, rsa_768, cert_rng):
        ca_name = DistinguishedName.build(common_name="Test CA", organization="CA Org")
        cert = (
            CertificateBuilder()
            .subject(DistinguishedName.build(common_name="leaf"))
            .public_key(rsa_768.public)
            .valid_from(parse_utc("2020-01-01"))
            .valid_for_days(365)
            .sign_with_ca(rsa_1024.private, ca_name, "sha256", cert_rng.substream("ca"))
        )
        assert not cert.self_signed
        assert cert.issuer.common_name == "Test CA"
        assert verify_certificate_signature(cert, rsa_1024.public)
        assert not verify_certificate_signature(cert)  # own key is wrong signer

    def test_serial_number_controllable(self, rsa_768, cert_rng):
        cert = (
            CertificateBuilder()
            .subject(DistinguishedName.build(common_name="s"))
            .public_key(rsa_768.public)
            .valid_from(parse_utc("2020-01-01"))
            .valid_for_days(1)
            .serial_number(12345)
            .self_sign(rsa_768.private, "sha1", cert_rng.substream("serial"))
        )
        assert cert.serial_number == 12345

    def test_missing_subject_rejected(self, rsa_768, cert_rng):
        builder = CertificateBuilder().public_key(rsa_768.public)
        builder.valid_from(parse_utc("2020-01-01")).valid_for_days(1)
        with pytest.raises(ValueError):
            builder.self_sign(rsa_768.private, "sha256", cert_rng.substream("x"))


class TestValidity:
    def test_inside_window(self, basic_cert):
        assert verify_validity(basic_cert, parse_utc("2020-08-30"))

    def test_before_window(self, basic_cert):
        assert not verify_validity(basic_cert, parse_utc("2019-01-01"))

    def test_after_window(self, basic_cert):
        assert not verify_validity(basic_cert, parse_utc("2030-01-01"))


class TestThumbprints:
    def test_deterministic(self, basic_cert):
        assert sha1_thumbprint(basic_cert) == sha1_thumbprint(basic_cert.raw_der)

    def test_length(self, basic_cert):
        assert len(sha1_thumbprint(basic_cert)) == 20

    def test_hex_form(self, basic_cert):
        assert thumbprint_hex(basic_cert) == sha1_thumbprint(basic_cert).hex()

    def test_distinct_certs_distinct_thumbprints(self, basic_cert, rsa_768, cert_rng):
        other = make_self_signed(
            rsa_768,
            common_name="other",
            application_uri="urn:other",
            not_before=parse_utc("2020-01-01"),
            hash_name="sha1",
            rng=cert_rng.substream("other"),
        )
        assert sha1_thumbprint(basic_cert) != sha1_thumbprint(other)


class TestCrossValidation:
    """Our DER output must parse in the `cryptography` package."""

    def test_cert_loads_in_cryptography(self, basic_cert):
        from cryptography import x509 as c_x509

        loaded = c_x509.load_der_x509_certificate(basic_cert.raw_der)
        assert loaded.serial_number == basic_cert.serial_number
        assert (
            loaded.signature_hash_algorithm.name.replace("-", "").lower() == "sha256"
        )

    def test_san_uri_visible_to_cryptography(self, basic_cert):
        from cryptography import x509 as c_x509

        loaded = c_x509.load_der_x509_certificate(basic_cert.raw_der)
        san = loaded.extensions.get_extension_for_class(c_x509.SubjectAlternativeName)
        uris = san.value.get_values_for_type(c_x509.UniformResourceIdentifier)
        assert uris == ["urn:test:device-1"]

    def test_cryptography_verifies_our_signature(self, basic_cert, rsa_1024):
        from cryptography.hazmat.primitives import hashes as c_hashes
        from cryptography.hazmat.primitives.asymmetric import (
            padding as c_padding,
            rsa as c_rsa,
        )

        pub = c_rsa.RSAPublicNumbers(
            rsa_1024.private.e, rsa_1024.private.n
        ).public_key()
        pub.verify(
            basic_cert.signature,
            basic_cert.tbs_der,
            c_padding.PKCS1v15(),
            c_hashes.SHA256(),
        )
