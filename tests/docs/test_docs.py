"""Docs stay true: doctests run, and docs/ tracks the code.

Three guarantees, all in the fast tier:

* the public-surface doctests (``Study``, ``StudyConfig``,
  ``ScanCampaign``, ``Transport``, ``StudyStore``,
  ``AnalysisReport``, and the capture/replay lane) execute and pass;
* ``docs/paper-map.md`` names *exactly* the analyses registered in
  ``repro/analysis/pipeline.py`` — an analysis added without a row
  here, or a row for a removed analysis, fails CI;
* every file path and experiment/benchmark reference the docs make
  actually exists.
"""

from __future__ import annotations

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"
PAPER_MAP = DOCS / "paper-map.md"
ARCHITECTURE = DOCS / "architecture.md"

#: The documented public surface: each of these modules must carry
#: executable examples, and they must pass.
DOCTEST_MODULES = (
    "repro.core.config",
    "repro.core.study",
    "repro.dataset.store",
    "repro.dataset.catalog",
    "repro.analysis.pipeline",
    "repro.analysis.diff",
    "repro.deployments.personalities",
    "repro.reporting.pack",
    "repro.transport.socket_io",
    "repro.transport.capture",
    "repro.transport.replay",
    "repro.scanner.campaign",
    "repro.scanner.shard",
    "repro.crypto.cache",
    "repro.util.profiling",
)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_public_surface_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: doctest failures"
    assert results.attempted > 0, (
        f"{module_name} is on the documented public surface but "
        "carries no executable examples"
    )


def _registry_table_rows() -> list[str]:
    """First-column code spans of the analysis-registry table."""
    text = PAPER_MAP.read_text()
    section = text.split("## Analysis registry")[1].split("\n## ")[0]
    return re.findall(r"^\| `([a-z0-9_]+)` \|", section, re.MULTILINE)


class TestPaperMap:
    def test_exists(self):
        assert PAPER_MAP.exists(), "docs/paper-map.md is missing"

    def test_covers_exactly_the_registry(self):
        from repro.analysis.pipeline import ANALYSIS_NAMES

        documented = _registry_table_rows()
        assert sorted(documented) == sorted(set(documented)), (
            "duplicate analysis rows in docs/paper-map.md"
        )
        missing = set(ANALYSIS_NAMES) - set(documented)
        unknown = set(documented) - set(ANALYSIS_NAMES)
        assert not missing, (
            f"analyses registered but undocumented in paper-map.md: "
            f"{sorted(missing)}"
        )
        assert not unknown, (
            f"paper-map.md documents analyses that do not exist: "
            f"{sorted(unknown)}"
        )

    def test_experiment_ids_exist(self):
        from repro.core.experiments import EXPERIMENTS

        section = PAPER_MAP.read_text().split("## Analysis registry")[1]
        table = section.split("\n## ")[0]
        for row in table.splitlines():
            if not row.startswith("| `"):
                continue
            experiment_cell = row.split("|")[3]
            for experiment in re.findall(r"`([a-z0-9-]+)`", experiment_cell):
                assert experiment in EXPERIMENTS, (
                    f"paper-map.md references unknown experiment "
                    f"{experiment!r}"
                )

    def test_benchmark_references_exist(self):
        text = PAPER_MAP.read_text()
        for path, test_name in re.findall(
            r"`(benchmarks/[\w/]+\.py)::(\w+)`", text
        ):
            bench = REPO_ROOT / path
            assert bench.exists(), f"paper-map.md references missing {path}"
            assert f"def {test_name}(" in bench.read_text(), (
                f"{path} has no test named {test_name}"
            )


@pytest.mark.parametrize(
    "document", ["architecture.md", "paper-map.md", "performance.md"]
)
def test_documented_paths_exist(document):
    """Every `src/...`, `tests/...`, `benchmarks/...` path is real."""
    text = (DOCS / document).read_text()
    for reference in re.findall(
        r"`((?:src|tests|benchmarks)/[\w./-]+?)(?:::\w+)?`", text
    ):
        target = REPO_ROOT / re.sub(r":[\w.]+$", "", reference)
        assert target.exists(), (
            f"docs/{document} references {reference}, which does not "
            "exist"
        )


def test_readme_links_into_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/architecture.md" in readme
    assert "docs/paper-map.md" in readme
    assert "docs/performance.md" in readme
