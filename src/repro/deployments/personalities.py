"""Device-zoo personalities: deterministic hostile vendor stacks.

The paper measures the *real* Internet, where OPC UA deployments ship
expired certificates, deprecated-only security policies, honeypots
that advertise everything and serve nothing, and plain broken TCP
talkers.  The default simulated population is uniformly well-behaved;
a :class:`Personality` makes one archetype row hostile in a specific,
ground-truth-knowable way, so the scanner's error taxonomy and the
``anomalies`` analysis are exercised by construction instead of by
accident.

A personality hooks the population at three seams:

* **certificate minting** (``cert_not_before`` / ``cert_valid_days`` /
  ``mismatched_cert_uri``) — consumed by
  :class:`~repro.deployments.population.PopulationBuilder`;
* **endpoint + engine behavior** (``endpoint_configs`` override,
  ``fault_data_services``) — consumed by the builder when assembling
  :class:`~repro.server.engine.ServerConfig`;
* **the bare connection factory** (``wrap_connection``) — the exact
  seam :class:`~repro.server.tcp.TcpServerHost` exposes, so the same
  wrapper runs over the simulated network, a real loopback socket,
  and capture/replay.

Everything is deterministic: wrappers hold no randomness, so a
personality behaves identically across executor backends and lanes.

>>> sorted(PERSONALITIES)  # doctest: +NORMALIZE_WHITESPACE
['address-churn', 'confused-stack', 'deprecated-only', 'expired-cert',
 'hello-rejecter', 'honeypot', 'hostname-mismatch', 'junk-banner',
 'mid-handshake-drop', 'slow-loris', 'truncated-frame']
>>> personality("slow-loris").expected_host_error_category
'timeout'
>>> personality("honeypot").fault_data_services
True
>>> personality("expired-cert").cert_not_before
'2010-05-01'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.secure.policies import (
    POLICY_AES128_SHA256_RSAOAEP,
    POLICY_AES256_SHA256_RSAPSS,
    POLICY_BASIC128RSA15,
    POLICY_BASIC256,
    POLICY_BASIC256SHA256,
    POLICY_NONE,
)
from repro.server.endpoints import EndpointConfig
from repro.transport.messages import (
    AcknowledgeMessage,
    ErrorMessage,
    MessageType,
)
from repro.transport.connection import encode_frame
from repro.uabin.enums import MessageSecurityMode
from repro.uabin.statuscodes import StatusCodes

#: Sweeps of the study timeline (mirrors
#: ``len(repro.deployments.evolution.SWEEP_DATES)``; asserted equal in
#: tests).  Address-churn hosts carry one address per sweep.
CHURN_SWEEPS = 8

#: Simulated seconds one slow-loris ``poll()`` stalls before yielding
#: its single byte.  Four polls cross the simulator's 30 s stall
#: deadline, so a grab spends a bounded ~30 s before giving up.
LORIS_POLL_INTERVAL_S = 7.5


@dataclass(frozen=True)
class Personality:
    """One deterministic vendor-stack pathology.

    ``expected_*`` fields are the machine-readable ground truth the
    taxonomy-completeness test and the ``anomalies`` golden assertions
    check against — what a grab of such a host must record.
    """

    name: str
    summary: str
    # Certificate pathology (consumed by the population builder).
    cert_not_before: str | None = None
    cert_valid_days: int | None = None
    mismatched_cert_uri: bool = False
    # Endpoint/engine pathology.
    endpoint_configs: Callable[[object], list[EndpointConfig]] | None = None
    fault_data_services: bool = False
    # Transport pathology: wraps the engine's bare connection factory.
    wrap_connection: Callable[[Callable[[], object]], Callable[[], object]] | None = None
    # Presence pathology.
    churns_address: bool = False
    # Ground truth for tests and the anomalies analysis.
    expected_host_error_category: str | None = None
    expected_session_error_category: str | None = None
    expected_details_prefix: str | None = None


# --- connection wrappers -----------------------------------------------------
#
# Each wrapper matches the bare-factory shape TcpServerHost hosts: a
# zero-arg callable returning an object with ``receive(bytes) -> bytes``
# and a ``closed`` attribute.  SimSocket additionally honors an
# optional ``poll() -> (seconds, bytes)`` for writers that stall.

#: What a junk talker says to anything: an HTTP-ish refusal that is
#: valid TCP but not an OPC UA frame.  Unlike the noise-host junk
#: service, this one keeps the connection open and keeps babbling.
JUNK_BANNER = b"HTTP/1.0 200 OK\r\nServer: embedded-httpd/1.2\r\n\r\n<html></html>"


class JunkBannerConnection:
    """Answers every write with the same non-OPC-UA banner."""

    closed = False

    def receive(self, data: bytes) -> bytes:
        return JUNK_BANNER


class TruncatedFrameConnection:
    """Sends half an Acknowledge frame, then drops the connection.

    The header promises the full frame, so the client's reassembly
    buffer is left mid-frame when the peer vanishes — the grab must
    classify this as ``closed``, never hang or mis-parse.
    """

    def __init__(self):
        self.closed = False

    def receive(self, data: bytes) -> bytes:
        self.closed = True
        frame = encode_frame(
            MessageType.ACKNOWLEDGE, "F", AcknowledgeMessage().encode_body()
        )
        return frame[: len(frame) // 2]


class SlowLorisConnection:
    """Acknowledges nothing, then dribbles one byte per long stall.

    ``receive`` returns nothing; the simulator falls back to
    ``poll()``, which yields a single byte of a frame whose header
    promises 64 KiB that will never arrive.  Only the simulated lane's
    stall deadline bounds such a grab.
    """

    def __init__(self):
        self.closed = False
        pending = bytearray(
            encode_frame(
                MessageType.ACKNOWLEDGE, "F", AcknowledgeMessage().encode_body()
            )
        )
        pending[4:8] = (65536).to_bytes(4, "little")
        self._pending = pending

    def receive(self, data: bytes) -> bytes:
        return b""

    def poll(self) -> tuple[float, bytes]:
        if self._pending:
            byte = bytes(self._pending[:1])
            del self._pending[:1]
        else:
            byte = b"\x00"
        return (LORIS_POLL_INTERVAL_S, byte)


class MidHandshakeDropConnection:
    """Completes Hello/Acknowledge, then goes silent and hangs up."""

    def __init__(self, inner):
        self._inner = inner
        self._writes = 0

    @property
    def closed(self) -> bool:
        return self._writes > 1 or getattr(self._inner, "closed", False)

    def receive(self, data: bytes) -> bytes:
        self._writes += 1
        if self._writes == 1:
            return self._inner.receive(data)
        return b""


class HelloRejectConnection:
    """Rejects the very first frame with a transport-level ERR."""

    def __init__(self):
        self.closed = False

    def receive(self, data: bytes) -> bytes:
        self.closed = True
        message = ErrorMessage(
            error_code=StatusCodes.BadTcpServerTooBusy.value,
            reason="try again later",
        )
        return encode_frame(MessageType.ERROR, "F", message.encode_body())


class ConfusedStackConnection:
    """A buggy vendor stack that garbles its second MSG exchange.

    The first secure-channel-borne service call works; from the second
    MSG frame on, the stack answers with a stray Acknowledge — a frame
    type the client can parse but must refuse mid-session.  Everything
    else passes through to the real engine.
    """

    def __init__(self, inner):
        self._inner = inner
        self._msg_frames = 0

    @property
    def closed(self) -> bool:
        return getattr(self._inner, "closed", False)

    def receive(self, data: bytes) -> bytes:
        if data[:3] == b"MSG":
            self._msg_frames += 1
            if self._msg_frames >= 2:
                return encode_frame(
                    MessageType.ACKNOWLEDGE,
                    "F",
                    AcknowledgeMessage().encode_body(),
                )
        return self._inner.receive(data)


def _wrap_ignoring_engine(connection_class):
    """A factory wrapper that discards the engine entirely."""

    def wrap(inner_factory):
        def factory():
            return connection_class()

        return factory

    return wrap


def _wrap_around_engine(connection_class):
    """A factory wrapper that interposes on a live engine connection."""

    def wrap(inner_factory):
        def factory():
            return connection_class(inner_factory())

        return factory

    return wrap


# --- endpoint overrides ------------------------------------------------------


def _deprecated_only_endpoints(row) -> list[EndpointConfig]:
    """Secure-only endpoints at deprecated policies — no None fallback."""
    return [
        EndpointConfig(MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC128RSA15),
        EndpointConfig(MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC256),
    ]


def _honeypot_endpoints(row) -> list[EndpointConfig]:
    """Every mode × every policy: the advertise-everything tell."""
    configs = [EndpointConfig(MessageSecurityMode.NONE, POLICY_NONE)]
    for mode in (
        MessageSecurityMode.SIGN,
        MessageSecurityMode.SIGN_AND_ENCRYPT,
    ):
        for policy in (
            POLICY_BASIC128RSA15,
            POLICY_BASIC256,
            POLICY_AES128_SHA256_RSAOAEP,
            POLICY_BASIC256SHA256,
            POLICY_AES256_SHA256_RSAPSS,
        ):
            configs.append(EndpointConfig(mode, policy))
    return configs


# --- the registry ------------------------------------------------------------

PERSONALITIES: dict[str, Personality] = {
    p.name: p
    for p in (
        Personality(
            name="expired-cert",
            summary="serves a certificate that expired years ago",
            cert_not_before="2010-05-01",
            cert_valid_days=730,
        ),
        Personality(
            name="hostname-mismatch",
            summary="certificate application URI names a different device",
            mismatched_cert_uri=True,
        ),
        Personality(
            name="deprecated-only",
            summary="offers only deprecated security policies, no None",
            endpoint_configs=_deprecated_only_endpoints,
        ),
        Personality(
            name="honeypot",
            summary="advertises every policy, completes sessions, serves nothing",
            endpoint_configs=_honeypot_endpoints,
            fault_data_services=True,
            expected_details_prefix="service-fault",
        ),
        Personality(
            name="junk-banner",
            summary="speaks HTTP on the OPC UA port and keeps talking",
            wrap_connection=_wrap_ignoring_engine(JunkBannerConnection),
        ),
        Personality(
            name="truncated-frame",
            summary="sends half a frame, then hangs up",
            wrap_connection=_wrap_ignoring_engine(TruncatedFrameConnection),
            expected_host_error_category="closed",
        ),
        Personality(
            name="slow-loris",
            summary="stalls, dribbling one byte of a 64 KiB promise",
            wrap_connection=_wrap_ignoring_engine(SlowLorisConnection),
            expected_host_error_category="timeout",
        ),
        Personality(
            name="mid-handshake-drop",
            summary="acknowledges Hello, then goes silent",
            wrap_connection=_wrap_around_engine(MidHandshakeDropConnection),
            expected_host_error_category="closed",
        ),
        Personality(
            name="hello-rejecter",
            summary="answers the first frame with a transport ERR",
            wrap_connection=_wrap_ignoring_engine(HelloRejectConnection),
            expected_host_error_category="transport-rejected",
        ),
        Personality(
            name="confused-stack",
            summary="garbles its second MSG exchange with a stray ACK",
            wrap_connection=_wrap_around_engine(ConfusedStackConnection),
            expected_session_error_category="protocol",
        ),
        Personality(
            name="address-churn",
            summary="re-appears at a different address every sweep",
            churns_address=True,
        ),
    )
}


def personality(name: str) -> Personality:
    """Look up a registered personality; raises KeyError on unknowns."""
    try:
        return PERSONALITIES[name]
    except KeyError:
        raise KeyError(
            f"unknown personality: {name!r} "
            f"(known: {', '.join(sorted(PERSONALITIES))})"
        ) from None


# --- the hostile-zoo population ---------------------------------------------


def hostile_zoo_rows():
    """Spec rows of the ``tiny_hostile_spec`` golden study (30 hosts).

    One or more rows per personality, plus two well-behaved control
    rows proving the anomaly detectors report zero false positives.
    Built lazily (not at import time) because :class:`SpecRow`
    validates personalities against this module.

    >>> rows = hostile_zoo_rows()
    >>> sum(row.count for row in rows)
    30
    >>> [row.count for row in rows][:3]
    [3, 2, 2]
    """
    from repro.deployments.spec import (
        A,
        AC,
        C,
        M_N,
        M_NSSE,
        M_SE,
        PROD,
        SpecRow,
    )

    def add(row_id, count, group, modes, tokens, cert, manu, person):
        return SpecRow(
            row_id=row_id,
            count=count,
            policy_group=group,
            mode_set=modes,
            token_combo=tokens,
            outcome=PROD,
            cert_class=cert,
            manufacturer=manu,
            personality=person,
        )

    return [
        add("HZ-expired", 3, "P4", M_NSSE, AC, "sha256-2048", "Beckhoff",
            "expired-cert"),
        add("HZ-mismatch", 2, "P4", M_NSSE, AC, "sha256-2048", "Wago",
            "hostname-mismatch"),
        add("HZ-deprecated", 2, "P2", M_SE, C, "sha1-2048", "Bachmann",
            "deprecated-only"),
        add("HZ-honeypot", 2, "P8", M_NSSE, AC, "sha256-2048", "ControlCorp",
            "honeypot"),
        add("HZ-junk", 3, "PA", M_N, A, "sha1-2048", "other",
            "junk-banner"),
        add("HZ-truncated", 2, "PA", M_N, A, "sha1-2048", "other",
            "truncated-frame"),
        add("HZ-loris", 2, "PA", M_N, A, "sha1-2048", "other",
            "slow-loris"),
        add("HZ-drop", 2, "PA", M_N, A, "sha1-2048", "other",
            "mid-handshake-drop"),
        add("HZ-hello-err", 2, "PA", M_N, A, "sha1-2048", "other",
            "hello-rejecter"),
        add("HZ-confused", 2, "PA", M_N, A, "sha1-2048", "AutomataWerk",
            "confused-stack"),
        add("HZ-churn", 2, "PA", M_N, A, "sha1-2048", "ControlCorp",
            "address-churn"),
        add("HZ-control-none", 3, "PA", M_N, A, "sha1-2048", "other", None),
        add("HZ-control-secure", 3, "P4", M_NSSE, AC, "sha256-2048",
            "Beckhoff", None),
    ]
