"""Responsible-disclosure workflow tests (paper Appendix A)."""

import pytest

from repro.scanner.ethics import (
    NotificationCampaign,
    find_contact_addresses,
    measure_remediation,
)
from repro.scanner.records import (
    EndpointRecord,
    HostRecord,
    MeasurementSnapshot,
    SessionAttempt,
)
from repro.uabin.enums import MessageSecurityMode, UserTokenType


def accessible_record(ip, accessible=True):
    return HostRecord(
        ip=ip,
        port=4840,
        asn=1,
        timestamp="2020-08-30T00:00:00",
        tcp_open=True,
        is_opcua=True,
        endpoints=[
            EndpointRecord(
                endpoint_url=None,
                security_mode=int(MessageSecurityMode.NONE),
                security_policy_uri="http://opcfoundation.org/UA/SecurityPolicy#None",
                token_types=[int(UserTokenType.ANONYMOUS)],
            )
        ],
        session=SessionAttempt(attempted=True, success=accessible),
    )


class TestContactDiscovery:
    def test_finds_email(self):
        values = ["maintenance contact: ops@water-plant.example.org"]
        assert find_contact_addresses(values) == ["ops@water-plant.example.org"]

    def test_multiple_and_dedup(self):
        values = ["a@x.org and b@y.de", "a@x.org again"]
        assert find_contact_addresses(values) == ["a@x.org", "b@y.de"]

    def test_no_email(self):
        assert find_contact_addresses(["m3InflowPerHour=5", ""]) == []

    def test_non_string_values_ignored(self):
        assert find_contact_addresses([42, None, "x@y.io"]) == ["x@y.io"]


class TestNotificationCampaign:
    def make_snapshot(self):
        return MeasurementSnapshot(
            date="2020-04-05",
            records=[
                accessible_record(1),
                accessible_record(2),
                accessible_record(3, accessible=False),
            ],
        )

    def test_notifies_only_hosts_with_contacts(self):
        campaign = NotificationCampaign()
        sent = campaign.notify_from_snapshot(
            self.make_snapshot(),
            {(1, 4840): ["ops@plant.example"], (2, 4840): ["no contact here"]},
        )
        assert sent == 1
        assert campaign.contacted_hosts == {(1, 4840)}

    def test_inaccessible_hosts_never_contacted(self):
        campaign = NotificationCampaign()
        campaign.notify_from_snapshot(
            self.make_snapshot(), {(3, 4840): ["admin@x.org"]}
        )
        assert campaign.contacted_hosts == set()

    def test_no_duplicate_notifications(self):
        campaign = NotificationCampaign()
        contacts = {(1, 4840): ["ops@plant.example"]}
        campaign.notify_from_snapshot(self.make_snapshot(), contacts)
        again = campaign.notify_from_snapshot(self.make_snapshot(), contacts)
        assert again == 0
        assert len(campaign.notifications) == 1

    def test_reply_tracking(self):
        campaign = NotificationCampaign()
        campaign.notify_from_snapshot(
            self.make_snapshot(), {(1, 4840): ["ops@plant.example"]}
        )
        campaign.record_reply(1, 4840)
        assert campaign.reply_count == 1
        with pytest.raises(KeyError):
            campaign.record_reply(99, 4840)


class TestRemediation:
    def test_measures_fix_still_open_and_offline(self):
        campaign = NotificationCampaign()
        first = MeasurementSnapshot(
            date="2020-04-05",
            records=[accessible_record(i) for i in (1, 2, 3)],
        )
        campaign.notify_from_snapshot(
            first,
            {
                (1, 4840): ["a@x.org"],
                (2, 4840): ["b@x.org"],
                (3, 4840): ["c@x.org"],
            },
        )
        later = MeasurementSnapshot(
            date="2020-08-30",
            records=[
                accessible_record(1, accessible=False),  # fixed
                accessible_record(2, accessible=True),  # still open
                # host 3 vanished -> offline
            ],
        )
        outcome = measure_remediation(campaign, later)
        assert outcome == {
            "notified": 3,
            "remediated": 1,
            "still_open": 1,
            "offline": 1,
        }
        assert campaign.notifications[0].remediated


class TestEndToEndContactDiscovery:
    """Contacts planted by the generator are found by the traversal."""

    def test_contacts_discoverable_in_mini_population(self):
        from repro.deployments.population import PopulationBuilder, install_hosts
        from repro.deployments.spec import PopulationSpec, build_default_spec
        from repro.netsim.net import SimNetwork
        from repro.core.study import Study, StudyConfig
        from repro.scanner.campaign import ScanCampaign
        from repro.util.simtime import SimClock, parse_utc

        spec = build_default_spec()
        mini = PopulationSpec(rows=spec.rows[:3])  # 60 accessible hosts
        builder = PopulationBuilder(mini, seed=20200830)
        hosts = builder.build_hosts()
        network = SimNetwork(SimClock(parse_utc("2020-08-30")))
        install_hosts(network, hosts)
        study = Study(StudyConfig(seed=20200830))
        campaign_scan = ScanCampaign(
            network, study.scanner_identity(), study._rng.substream("ethics")
        )
        snapshot = campaign_scan.run_sweep(label="2020-08-30")

        contact_values = {
            (r.ip, r.port): (r.nodes.value_samples if r.nodes else [])
            for r in snapshot.records
        }
        campaign = NotificationCampaign()
        sent = campaign.notify_from_snapshot(snapshot, contact_values)
        with_contact = sum(
            1
            for values in contact_values.values()
            if find_contact_addresses(values)
        )
        assert sent == with_contact
        assert sent >= 1  # ~10% of 60 hosts carry contact data


class TestLiveScanGate:
    """The hard gates in front of the live lane (Appendix A.1)."""

    @staticmethod
    def _identity(
        application_name, with_cert=True, contact_url="https://x.example"
    ):
        from unittest.mock import Mock

        from repro.client import ClientIdentity
        from repro.scanner.campaign import ScannerIdentity

        certificate = None
        if with_cert:
            certificate = Mock()
            certificate.subject.rfc4514.return_value = "CN=research-scanner"
        client = ClientIdentity(
            application_uri="urn:test",
            application_name=application_name,
            certificate=certificate,
        )
        return ScannerIdentity(client, contact_url=contact_url)

    def test_contact_in_application_name_accepted(self):
        from repro.scanner.ethics import LiveScanGate

        LiveScanGate().require_contact(
            self._identity("Scanner (contact: team@lab.example)")
        )

    def test_missing_contact_email_refused(self):
        from repro.scanner.ethics import EthicsViolation, LiveScanGate

        with pytest.raises(EthicsViolation, match="contact e-mail"):
            LiveScanGate().require_contact(self._identity("Scanner"))

    def test_missing_certificate_refused(self):
        from repro.scanner.ethics import EthicsViolation, LiveScanGate

        with pytest.raises(EthicsViolation, match="certificate"):
            LiveScanGate().require_contact(
                self._identity("a@b.example", with_cert=False)
            )

    def test_missing_opt_out_url_refused(self):
        from repro.scanner.ethics import EthicsViolation, LiveScanGate

        with pytest.raises(EthicsViolation, match="opt-out"):
            LiveScanGate().require_contact(
                self._identity(
                    "Scanner (contact: a@b.example)", contact_url=""
                )
            )

    def test_blocklist_and_target_count(self):
        from repro.netsim.blocklist import Blocklist
        from repro.scanner.ethics import EthicsViolation, LiveScanGate
        from repro.util.ipaddr import parse_ipv4

        blocklist = Blocklist()
        blocklist.add("192.0.2.0/24")
        gate = LiveScanGate(blocklist=blocklist, max_targets=2)
        assert gate.permits(parse_ipv4("198.51.100.1"))
        assert not gate.permits(parse_ipv4("192.0.2.77"))
        with pytest.raises(EthicsViolation, match="blocklisted"):
            gate.check_target(parse_ipv4("192.0.2.77"))
        gate.check_target_count(2)
        with pytest.raises(EthicsViolation, match="exceed"):
            gate.check_target_count(3)
