"""Certificate signature and validity verification."""

from __future__ import annotations

from datetime import datetime

from repro.crypto.pkcs1 import pkcs1v15_verify
from repro.crypto.rsa import RsaPublicKey
from repro.x509.certificate import Certificate


def verify_certificate_signature(
    certificate: Certificate, signer_key: RsaPublicKey | None = None
) -> bool:
    """Check the certificate's signature.

    Without an explicit ``signer_key`` the certificate is treated as
    self-signed and verified against its own embedded key — the common
    case in the study, where 99 % of served certificates were
    self-signed.
    """
    key = signer_key or certificate.public_key
    return pkcs1v15_verify(
        key, certificate.signature_hash, certificate.tbs_der, certificate.signature
    )


def verify_validity(certificate: Certificate, at: datetime) -> bool:
    """Check that ``at`` falls inside the certificate validity window."""
    return certificate.not_before <= at <= certificate.not_after
