"""``repro study``: run (or load) the full eight-sweep study."""

from __future__ import annotations

from repro.cli.options import (
    add_seed,
    executor_from_args,
    require_store,
    resolve_store,
    study_result,
)
from repro.core.study import StudyConfig


def register(commands) -> None:
    study = commands.add_parser("study", help="run the full study")
    add_seed(study)
    study.add_argument(
        "--scan-only",
        action="store_true",
        help=(
            "run (or load) the sweeps and print their digests without "
            "regenerating the experiments — the store-building mode CI "
            "uses before fanning analyses out from the store"
        ),
    )
    study.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help=(
            "cut the address space into N zmap-style index-mod shards, "
            "scan them independently, and merge — byte-identical to an "
            "unsharded run; with --store, each finished shard is "
            "checkpointed so a killed campaign restarts from the last "
            "completed shard"
        ),
    )
    study.add_argument(
        "--shard",
        type=int,
        metavar="I",
        default=None,
        help=(
            "scan only shard I of --shards N and checkpoint it "
            "(requires --store; run the same command for every I, then "
            "`--shards N --resume` merges the checkpoints)"
        ),
    )
    study.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip shards whose store checkpoint validates (corrupt or "
            "missing checkpoints are rescanned); requires --shards and "
            "a store"
        ),
    )
    study.set_defaults(handler=cmd_study)


def cmd_study(args) -> int:
    if args.shard is not None and not args.shards:
        raise SystemExit("repro: error: --shard requires --shards N")
    if args.resume and not args.shards:
        raise SystemExit(
            "repro: error: --resume resumes a sharded run; pass --shards N"
        )
    if args.shards is not None:
        return _cmd_study_sharded(args)
    result = study_result(args)
    return report_study(args, result)


def report_study(args, result) -> int:
    if args.scan_only:
        from repro.core.golden import study_digest, study_digests

        for date, digest in study_digests(result).items():
            print(f"{date}  {digest}")
        print(f"study digest: {study_digest(result)}")
        records = sum(len(s.records) for s in result.snapshots)
        print(f"{len(result.snapshots)} sweeps / {records} records")
        return 0
    from repro.core.experiments import EXPERIMENTS, run_experiment

    exact = total = 0
    for experiment_id in EXPERIMENTS:
        report = run_experiment(experiment_id, result)
        print(report.render())
        print()
        exact += report.exact_matches()
        total += len(report.comparisons)
    print(f"reproduction summary: {exact}/{total} metrics match the paper")
    return 0


def _cmd_study_sharded(args) -> int:
    """``--shards N [--shard I] [--resume]``: scan, checkpoint, merge."""
    from repro.core.golden import combined_digest, sweep_digests
    from repro.scanner.shard import (
        ShardSpec,
        run_sharded_study,
        run_study_shard,
    )

    if args.shards < 1:
        raise SystemExit("repro: error: --shards must be >= 1")
    executor, workers = executor_from_args(args)
    config = StudyConfig(seed=args.seed, executor=executor, workers=workers)
    if args.shard is not None:
        if not 0 <= args.shard < args.shards:
            raise SystemExit(
                f"repro: error: --shard must be in [0, {args.shards})"
            )
        store = require_store(
            args,
            "scanning a single shard only makes sense with a "
            "checkpoint store",
        )
        shard = ShardSpec(args.shard, args.shards)
        snapshots = run_study_shard(
            config, shard, store=store, resume=args.resume
        )
        digest = combined_digest(sweep_digests(snapshots))
        records = sum(len(s.records) for s in snapshots)
        print(
            f"shard {shard.label}: {len(snapshots)} sweeps / "
            f"{records} records"
        )
        print(f"shard digest: {digest}")
        return 0
    if args.resume:
        store = require_store(
            args,
            "--resume needs the checkpoint store the interrupted "
            "run wrote",
        )
    else:
        store = resolve_store(args)
    result = run_sharded_study(
        config, args.shards, store=store, resume=args.resume
    )
    return report_study(args, result)
