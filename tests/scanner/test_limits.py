"""Traversal budget tests (paper Appendix A.2: 500 ms / 60 min / 50 MB)."""

import pytest

from repro.scanner.limits import TraversalBudget
from repro.util.simtime import parse_utc


class TestTraversalBudget:
    def test_defaults_match_paper(self):
        budget = TraversalBudget()
        assert budget.inter_request_delay_s == 0.5
        assert budget.max_scan_seconds == 3600.0
        assert budget.max_bytes == 50 * 1024 * 1024

    def test_check_requires_start(self):
        with pytest.raises(RuntimeError):
            TraversalBudget().check(parse_utc("2020-01-01"), 0)

    def test_allows_within_budget(self):
        budget = TraversalBudget()
        start = parse_utc("2020-01-01")
        budget.start(start)
        assert budget.check(start, 0)
        assert budget.exhausted_reason is None

    def test_time_limit(self):
        budget = TraversalBudget(max_scan_seconds=60)
        start = parse_utc("2020-01-01")
        budget.start(start)
        later = parse_utc("2020-01-01T00:01:00")
        assert not budget.check(later, 0)
        assert budget.exhausted_reason == "time"

    def test_traffic_limit(self):
        budget = TraversalBudget(max_bytes=1000)
        start = parse_utc("2020-01-01")
        budget.start(start)
        assert not budget.check(start, 1000)
        assert budget.exhausted_reason == "traffic"

    def test_request_counter(self):
        budget = TraversalBudget()
        budget.start(parse_utc("2020-01-01"))
        budget.count_request()
        budget.count_request()
        assert budget.requests_made == 2

    def test_restart_resets(self):
        budget = TraversalBudget(max_bytes=10)
        budget.start(parse_utc("2020-01-01"))
        budget.check(parse_utc("2020-01-01"), 100)
        assert budget.exhausted_reason == "traffic"
        budget.start(parse_utc("2020-02-01"))
        assert budget.exhausted_reason is None
        assert budget.requests_made == 0

    def test_elapsed(self):
        budget = TraversalBudget()
        budget.start(parse_utc("2020-01-01"))
        assert budget.elapsed_seconds(parse_utc("2020-01-01T00:00:30")) == 30.0


class TestBudgetEnforcementDuringTraversal:
    """A tiny traversal must stop when the simulated budget runs out."""

    def test_time_budget_stops_traversal(self, rsa_2048):
        from repro.util.rng import DeterministicRng
        from tests.server.helpers import build_client, build_server

        rng = DeterministicRng(4242, "budget-test")
        server = build_server(rng, rsa_2048)
        client = build_client(server, rng, rsa_2048)
        client.hello()
        client.open_secure_channel()
        client.create_session()
        client.activate_session()

        from repro.scanner.limits import TraversalBudget
        from repro.scanner.traversal import traverse_address_space
        from repro.util.simtime import SimClock, parse_utc

        clock = SimClock(parse_utc("2020-08-30"))
        # Budget allows only a couple of 0.5 s-paced requests.
        budget = TraversalBudget(max_scan_seconds=1.2)
        summary = traverse_address_space(client, clock, budget)
        assert not summary.traversal_complete
        assert summary.budget_exhausted == "time"


class TestScanRateLimiter:
    """Deterministic pacing checks with an injected clock."""

    @staticmethod
    def _limiter(rate, per_host):
        from repro.scanner.limits import ScanRateLimiter

        state = {"now": 0.0}
        slept = []

        def monotonic():
            return state["now"]

        def sleep(seconds):
            slept.append(round(seconds, 6))
            state["now"] += seconds

        limiter = ScanRateLimiter(
            rate, per_host, monotonic=monotonic, sleep=sleep
        )
        return limiter, slept

    def test_global_rate_spaces_connections(self):
        limiter, slept = self._limiter(rate=10.0, per_host=0.0)
        assert limiter.acquire("a") == 0.0  # first slot is free
        limiter.acquire("b")
        limiter.acquire("c")
        assert slept == [0.1, 0.1]

    def test_per_host_interval_dominates_revisits(self):
        limiter, slept = self._limiter(rate=1000.0, per_host=2.0)
        limiter.acquire("a")
        limiter.acquire("a")
        assert slept == [2.0]

    def test_distinct_hosts_only_pay_global_rate(self):
        limiter, slept = self._limiter(rate=100.0, per_host=60.0)
        limiter.acquire("a")
        limiter.acquire("b")
        assert slept == [0.01]

    def test_invalid_parameters_rejected(self):
        from repro.scanner.limits import ScanRateLimiter

        with pytest.raises(ValueError):
            ScanRateLimiter(rate_per_s=0)
        with pytest.raises(ValueError):
            ScanRateLimiter(per_host_interval_s=-1)

    def test_thread_safe_under_contention(self):
        """Concurrent acquires hand out strictly disjoint slots."""
        import threading
        from repro.scanner.limits import ScanRateLimiter

        limiter = ScanRateLimiter(
            rate_per_s=1_000_000, per_host_interval_s=0.0, sleep=lambda s: None
        )
        slots = []
        lock = threading.Lock()
        original = limiter.acquire

        def worker():
            for _ in range(50):
                original("host")
                with lock:
                    slots.append(limiter._next_free)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(slots)) == len(slots)  # every slot unique
