"""Little-endian binary reader/writer used by the OPC UA codec.

OPC UA's binary encoding (OPC 10000-6) is little-endian throughout, so
the reader/writer default to little-endian and expose the fixed-width
primitives the encoding needs.  DER encoding (big-endian lengths) uses
its own routines in :mod:`repro.asn1.der` and does not share this class.

Both classes sit on the per-grab hot path (tens of thousands of scalar
reads/writes per handshake), so the scalar accessors use precompiled
:class:`struct.Struct` instances unpacking straight out of the buffer
at an offset — no intermediate slice objects.  The reader accepts any
buffer supporting the buffer protocol (``bytes``, ``bytearray``,
``memoryview``), which lets callers hand in zero-copy views of larger
messages; ``read_bytes`` always returns real ``bytes`` so downstream
consumers never observe the difference.
"""

from __future__ import annotations

import struct

_UINT8 = struct.Struct("<B")
_INT8 = struct.Struct("<b")
_UINT16 = struct.Struct("<H")
_INT16 = struct.Struct("<h")
_UINT32 = struct.Struct("<I")
_INT32 = struct.Struct("<i")
_UINT64 = struct.Struct("<Q")
_INT64 = struct.Struct("<q")
_FLOAT = struct.Struct("<f")
_DOUBLE = struct.Struct("<d")


class NotEnoughData(Exception):
    """Raised when a read runs past the end of the buffer."""


class BinaryReader:
    """Sequential reader over an immutable byte buffer."""

    __slots__ = ("_data", "_pos", "_len")

    def __init__(self, data, offset: int = 0):
        self._data = data
        self._pos = offset
        self._len = len(data)

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self._len - self._pos

    def at_end(self) -> bool:
        return self._pos >= self._len

    def peek(self, count: int) -> bytes:
        if self._len - self._pos < count:
            raise NotEnoughData(
                f"peek of {count} bytes with only {self.remaining} remaining"
            )
        out = self._data[self._pos : self._pos + count]
        return out if out.__class__ is bytes else bytes(out)

    def read_bytes(self, count: int) -> bytes:
        if count < 0:
            raise ValueError("negative read length")
        pos = self._pos
        end = pos + count
        if end > self._len:
            raise NotEnoughData(
                f"read of {count} bytes with only {self._len - pos} remaining"
            )
        out = self._data[pos:end]
        self._pos = end
        return out if out.__class__ is bytes else bytes(out)

    def read_view(self, count: int):
        """Zero-copy view of the next ``count`` bytes.

        Same bounds discipline and error message as :meth:`read_bytes`,
        but returns a slice of the underlying buffer without forcing a
        ``bytes`` copy — a ``memoryview`` input stays a ``memoryview``.
        Callers that only re-wrap the result in another
        :class:`BinaryReader` (message bodies, decrypted payloads)
        should prefer this.
        """
        if count < 0:
            raise ValueError("negative read length")
        pos = self._pos
        end = pos + count
        if end > self._len:
            raise NotEnoughData(
                f"read of {count} bytes with only {self._len - pos} remaining"
            )
        out = self._data[pos:end]
        self._pos = end
        return out

    def skip(self, count: int) -> None:
        self.read_bytes(count)

    def _fail(self, size: int):
        raise NotEnoughData(
            f"read of {size} bytes with only {self._len - self._pos} remaining"
        )

    def read_uint8(self) -> int:
        pos = self._pos
        if pos + 1 > self._len:
            self._fail(1)
        self._pos = pos + 1
        return _UINT8.unpack_from(self._data, pos)[0]

    def read_int8(self) -> int:
        pos = self._pos
        if pos + 1 > self._len:
            self._fail(1)
        self._pos = pos + 1
        return _INT8.unpack_from(self._data, pos)[0]

    def read_uint16(self) -> int:
        pos = self._pos
        if pos + 2 > self._len:
            self._fail(2)
        self._pos = pos + 2
        return _UINT16.unpack_from(self._data, pos)[0]

    def read_int16(self) -> int:
        pos = self._pos
        if pos + 2 > self._len:
            self._fail(2)
        self._pos = pos + 2
        return _INT16.unpack_from(self._data, pos)[0]

    def read_uint32(self) -> int:
        pos = self._pos
        if pos + 4 > self._len:
            self._fail(4)
        self._pos = pos + 4
        return _UINT32.unpack_from(self._data, pos)[0]

    def read_int32(self) -> int:
        pos = self._pos
        if pos + 4 > self._len:
            self._fail(4)
        self._pos = pos + 4
        return _INT32.unpack_from(self._data, pos)[0]

    def read_uint64(self) -> int:
        pos = self._pos
        if pos + 8 > self._len:
            self._fail(8)
        self._pos = pos + 8
        return _UINT64.unpack_from(self._data, pos)[0]

    def read_int64(self) -> int:
        pos = self._pos
        if pos + 8 > self._len:
            self._fail(8)
        self._pos = pos + 8
        return _INT64.unpack_from(self._data, pos)[0]

    def read_float(self) -> float:
        pos = self._pos
        if pos + 4 > self._len:
            self._fail(4)
        self._pos = pos + 4
        return _FLOAT.unpack_from(self._data, pos)[0]

    def read_double(self) -> float:
        pos = self._pos
        if pos + 8 > self._len:
            self._fail(8)
        self._pos = pos + 8
        return _DOUBLE.unpack_from(self._data, pos)[0]


class BinaryWriter:
    """Append-only little-endian byte buffer."""

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = bytearray()

    def __len__(self) -> int:
        return len(self._buffer)

    def to_bytes(self) -> bytes:
        return bytes(self._buffer)

    def write_bytes(self, data) -> None:
        self._buffer += data

    def write_uint8(self, value: int) -> None:
        self._buffer += _UINT8.pack(value)

    def write_int8(self, value: int) -> None:
        self._buffer += _INT8.pack(value)

    def write_uint16(self, value: int) -> None:
        self._buffer += _UINT16.pack(value)

    def write_int16(self, value: int) -> None:
        self._buffer += _INT16.pack(value)

    def write_uint32(self, value: int) -> None:
        self._buffer += _UINT32.pack(value)

    def write_int32(self, value: int) -> None:
        self._buffer += _INT32.pack(value)

    def write_uint64(self, value: int) -> None:
        self._buffer += _UINT64.pack(value)

    def write_int64(self, value: int) -> None:
        self._buffer += _INT64.pack(value)

    def write_float(self, value: float) -> None:
        self._buffer += _FLOAT.pack(value)

    def write_double(self, value: float) -> None:
        self._buffer += _DOUBLE.pack(value)
