"""Golden-harness fixtures.

The serial tiny study itself (``serial_tiny_result``) lives in the
top-level ``tests/conftest.py``: it is the committed-digest subject
and the parallel-backend reference here, and the store/pipeline suites
reuse the same session-scoped run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

DIGEST_PATH = Path(__file__).resolve().parent / "tiny_study.digest.json"


@pytest.fixture(scope="session")
def committed_digests() -> dict:
    return json.loads(DIGEST_PATH.read_text())
