"""Lightweight profiling hooks for the scan pipeline.

Three complementary views, all behind the ``--profile`` flags on
``repro scan`` and ``benchmarks/report.py``:

* :class:`StageStats` — per-pipeline-stage counters (tasks completed
  and in-process seconds for probe / grab / follow-reference), cheap
  enough to leave on during a benchmark run;
* :class:`CryptoOpStats` — per-operation counters for the secure
  handshake (sign / verify / encrypt / decrypt, asymmetric and
  symmetric), answering "where does secure-handshake time go" without
  a full profile;
* :class:`ProfileSession` — a context manager wrapping a block in
  :mod:`cProfile` plus :mod:`tracemalloc`, for the "where exactly"
  drill-down once the counters have said which lane regressed.

The numbers are diagnostic output, never inputs to the scan itself, so
profiling cannot perturb snapshot bytes.

>>> stats = StageStats()
>>> stats.record_completed(0)
>>> stats.record_seconds(0, 0.5)
>>> stats.as_dict()["probe"]
{'tasks': 1, 'seconds': 0.5}

>>> ops = CryptoOpStats()
>>> ops.record("asym_sign", 0.25)
>>> ops.record("asym_sign", 0.25)
>>> ops.as_dict()
{'asym_sign': {'ops': 2, 'seconds': 0.5}}

>>> with ProfileSession(top=3) as session:
...     _ = sorted(range(100))
>>> "function calls" in session.stats_text()
True
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
import tracemalloc

#: Pipeline stage numbers -> human-readable lane names (matching the
#: staging model in :mod:`repro.scanner.executor`).
STAGE_LABELS = {0: "probe", 1: "grab", 2: "follow-reference"}


def stage_label(stage: int) -> str:
    return STAGE_LABELS.get(stage, f"stage-{stage}")


class StageStats:
    """Per-stage task counts and in-process wall seconds.

    ``record_completed`` is driven coordinator-side (once per finished
    task, on every backend); ``record_seconds`` is driven around the
    task body and therefore measures in-process time only — on the
    process backend grab bodies run in forked workers, so grab seconds
    stay at zero there (probe batches run inline in the coordinator
    and are timed normally) while the task counts remain exact.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tasks: dict[int, int] = {}
        self._seconds: dict[int, float] = {}

    def record_completed(self, stage: int) -> None:
        with self._lock:
            self._tasks[stage] = self._tasks.get(stage, 0) + 1

    def record_seconds(self, stage: int, seconds: float) -> None:
        with self._lock:
            self._seconds[stage] = self._seconds.get(stage, 0.0) + seconds

    def as_dict(self) -> dict[str, dict]:
        """``{lane: {tasks, seconds}}``, stages in numeric order."""
        with self._lock:
            stages = sorted(set(self._tasks) | set(self._seconds))
            return {
                stage_label(stage): {
                    "tasks": self._tasks.get(stage, 0),
                    "seconds": round(self._seconds.get(stage, 0.0), 6),
                }
                for stage in stages
            }

    def render(self) -> str:
        """Human-readable per-lane table."""
        lines = ["stage               tasks    seconds"]
        for label, row in self.as_dict().items():
            lines.append(
                f"{label:<18} {row['tasks']:>6}  {row['seconds']:>9.3f}"
            )
        return "\n".join(lines)


class CryptoOpStats:
    """Per-operation counts and wall seconds for crypto primitives.

    Driven by the timing shims in :mod:`repro.secure.crypto_suite`:
    every asymmetric/symmetric sign, verify, encrypt, and decrypt
    reports here, so a profile run can say how secure-handshake time
    splits across RSA (OPN protection, nonce proofs) and AES/HMAC
    (MSG protection) without a cProfile drill-down.  Thread-safe for
    the same reason :class:`StageStats` is; on the process backend the
    forked workers count into their own copies, so — like grab
    seconds — secure-op numbers reflect in-process work only.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ops: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def record(self, op: str, seconds: float) -> None:
        with self._lock:
            self._ops[op] = self._ops.get(op, 0) + 1
            self._seconds[op] = self._seconds.get(op, 0.0) + seconds

    def clear(self) -> None:
        with self._lock:
            self._ops.clear()
            self._seconds.clear()

    def as_dict(self) -> dict[str, dict]:
        """``{op: {ops, seconds}}``, operations in name order."""
        with self._lock:
            return {
                op: {
                    "ops": self._ops[op],
                    "seconds": round(self._seconds.get(op, 0.0), 6),
                }
                for op in sorted(self._ops)
            }

    def render(self) -> str:
        """Human-readable per-operation table."""
        lines = ["operation           ops      seconds"]
        for op, row in self.as_dict().items():
            lines.append(
                f"{op:<18} {row['ops']:>6}  {row['seconds']:>11.6f}"
            )
        return "\n".join(lines)


class ProfileSession:
    """cProfile + tracemalloc around a ``with`` block.

    On exit the profile is frozen; :meth:`stats_text` renders the top
    functions by cumulative time and :meth:`as_dict` packages the
    numbers (including peak traced allocation) for JSON reports.
    """

    def __init__(self, top: int = 25, trace_allocations: bool = True):
        self.top = top
        self.trace_allocations = trace_allocations
        self.peak_allocated_bytes: int | None = None
        self._profile = cProfile.Profile()
        self._started_tracing = False

    def __enter__(self) -> "ProfileSession":
        if self.trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._profile.enable()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._profile.disable()
        if self._started_tracing:
            self.peak_allocated_bytes = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
        return False

    def stats_text(self) -> str:
        out = io.StringIO()
        stats = pstats.Stats(self._profile, stream=out)
        stats.sort_stats("cumulative").print_stats(self.top)
        text = out.getvalue()
        if self.peak_allocated_bytes is not None:
            text += (
                f"\npeak traced allocation: "
                f"{self.peak_allocated_bytes / 1_000_000:.1f} MB\n"
            )
        return text

    def as_dict(self) -> dict:
        return {
            "top": self.top,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "stats_text": self.stats_text(),
        }
