"""Golden-digest plumbing: canonical JSON and SHA-256 for snapshots.

The reproduction's central guarantee is that a study is a pure
function of its seed — across executor backends, probe batch sizes,
and refactors.  This module pins that guarantee down to a hash:

* :func:`snapshot_digest` — SHA-256 over one snapshot's canonical
  JSON (:meth:`~repro.scanner.records.MeasurementSnapshot.to_json_dict`
  serialized with sorted keys and compact separators);
* :func:`study_digests` / :func:`study_digest` — per-sweep digests and
  the digest of the whole sweep sequence;
* :func:`tiny_spec` / :func:`tiny_study_config` / :func:`run_tiny_study`
  — the reduced study the golden fixtures are computed from: a handful
  of spec rows, a scaled-down discovery fleet, and a deliberately
  small probe batch size so even the tiny candidate stream spans many
  stage-0 batches.  Small enough for the CI fast tier, yet it
  exercises every pipeline stage (batched SYN sweep, grabs,
  follow-references, renewals, traversal on the final sweep).

``tests/golden/`` commits the digests; regenerate with
``python tests/golden/regenerate.py`` after an *intentional*
determinism change and explain the change in the PR.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.config import StudyConfig
from repro.core.study import Study, StudyResult
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.scanner.records import MeasurementSnapshot

#: Spec rows the tiny study scans.  The first eight rows cover three
#: policy groups, reuse families, and both accessible and inaccessible
#: outcomes (127 servers) — enough population structure for renewals
#: and follow-references to occur.
TINY_SPEC_ROWS = 8

#: Probe batch size for the tiny study: small enough that every sweep
#: spans multiple stage-0 batches, so parallel backends genuinely
#: exercise the batched sweep path.
TINY_BATCH_SIZE = 16

#: Rows of the negotiated-security tiny study (52 servers).  Chosen so
#: the secure re-grab exercises every outcome the population can
#: express: completed channels at Basic128Rsa15, Basic256,
#: Basic256Sha256, and Aes256_Sha256_RsaPss; Sign-only and
#: Sign+SignAndEncrypt mode sets; strict servers that reject the
#: scanner's certificate (BadSecurityChecksFailed); and
#: anonymous-rejecting hosts whose channels still negotiate.
TINY_SECURE_ROW_IDS = (
    "P1-md5",
    "P2-auth-r3",
    "P6-acc-sha1",
    "P8-auth",
    "Q1-sc",
    "Q2-sc-s",
    "Q2-acc-uncl-ssse",
    "Q3-acc-a",
    "P4s1-auth",
)


def canonical_json(payload) -> str:
    """Stable serialization: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def snapshot_digest(snapshot: MeasurementSnapshot) -> str:
    return hashlib.sha256(
        canonical_json(snapshot.to_json_dict()).encode("utf-8")
    ).hexdigest()


def sweep_digests(snapshots: list[MeasurementSnapshot]) -> dict[str, str]:
    """``{sweep date: digest}`` for every snapshot, in sweep order."""
    return {s.date: snapshot_digest(s) for s in snapshots}


def combined_digest(per_sweep: dict[str, str]) -> str:
    """One digest over a whole sweep sequence (date → digest, in order)."""
    material = canonical_json(list(map(list, per_sweep.items())))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def study_digests(result: StudyResult) -> dict[str, str]:
    return sweep_digests(result.snapshots)


def study_digest(result: StudyResult) -> str:
    """One digest over the whole study (the sweep digests, in order)."""
    return combined_digest(study_digests(result))


def tiny_spec(rows: int = TINY_SPEC_ROWS) -> PopulationSpec:
    """The first ``rows`` archetype rows of the default population."""
    return PopulationSpec(rows=build_default_spec().rows[:rows])


def tiny_study_config(
    executor: str = "serial", workers: int = 1, seed: int = 20200830
) -> StudyConfig:
    """The golden fixtures' configuration.

    Any change here invalidates the committed digests — treat it like
    a schema change and regenerate them in the same commit.
    """
    return StudyConfig(
        seed=seed,
        noise_hosts=6,
        extra_sweep_candidates=48,
        executor=executor,
        workers=workers,
        probe_batch_size=TINY_BATCH_SIZE,
        discovery_scale=0.01,
    )


def run_tiny_study(
    executor: str = "serial", workers: int = 1, seed: int = 20200830
) -> StudyResult:
    """Run the reduced eight-sweep study the golden digests pin."""
    return Study(
        tiny_study_config(executor=executor, workers=workers, seed=seed),
        spec=tiny_spec(),
    ).run()


def tiny_hostile_spec() -> PopulationSpec:
    """The device-zoo rows the hostile golden study scans (30 hosts).

    Every personality in
    :data:`repro.deployments.personalities.PERSONALITIES` is planted
    at a known count, plus two well-behaved control rows — the
    ``anomalies`` analysis must detect exactly the planted pathologies
    and nothing on the controls.
    """
    from repro.deployments.personalities import hostile_zoo_rows

    return PopulationSpec(rows=hostile_zoo_rows())


def run_tiny_hostile_study(
    executor: str = "serial", workers: int = 1, seed: int = 20200830
) -> StudyResult:
    """Run the device-zoo study ``anomalies.digest.json`` pins.

    Same configuration knobs as :func:`run_tiny_study`, hostile
    population: junk talkers, stalled writers, mid-handshake drops,
    transport rejections, honeypots, certificate pathologies, and
    address churn — every grab failure mode the scanner's error
    taxonomy names, under one digest.
    """
    return Study(
        tiny_study_config(executor=executor, workers=workers, seed=seed),
        spec=tiny_hostile_spec(),
    ).run()


def tiny_secure_spec() -> PopulationSpec:
    """The secure-endpoint rows the negotiated golden study scans."""
    rows = [
        row
        for row in build_default_spec().rows
        if row.row_id in TINY_SECURE_ROW_IDS
    ]
    assert len(rows) == len(TINY_SECURE_ROW_IDS)
    return PopulationSpec(rows=rows)


def run_tiny_secure_study(
    executor: str = "serial", workers: int = 1, seed: int = 20200830
) -> StudyResult:
    """Run the negotiated-security study ``negotiated.digest.json`` pins.

    Same configuration knobs as :func:`run_tiny_study`, different
    population: every host advertises at least one Sign or
    SignAndEncrypt endpoint, so each deep grab runs the secure
    re-grab and records the ``negotiated_*`` session fields.
    """
    return Study(
        tiny_study_config(executor=executor, workers=workers, seed=seed),
        spec=tiny_secure_spec(),
    ).run()
