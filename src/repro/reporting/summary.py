"""Rendering for the read path: analysis reports, run listings, diffs.

``repro analyze`` prints :func:`render_analysis_report` — one headline
line per registered analysis, in the registry's canonical order, plus
the report digest the backend-equivalence tests pin.  ``repro runs``
prints :func:`render_runs` over the catalog's registry rows, and
``repro diff`` prints :func:`render_study_diff`; all three end with a
digest line, so two machines printing the same digest rendered
byte-identical state.
"""

from __future__ import annotations

from repro.reporting.tables import render_table


def _headline(name: str, result) -> str:
    """One human-readable takeaway per analysis."""
    if name == "modes":
        return (
            f"{result.total_servers} servers; "
            f"{result.supports_secure_mode} offer a secure mode, "
            f"{result.none_only} are None-only"
        )
    if name == "policies":
        return (
            f"{result.supports_deprecated} support a deprecated policy, "
            f"{result.deprecated_as_best} have one as their best, "
            f"{result.enforce_secure} enforce strong policies"
        )
    if name == "negotiated":
        return (
            f"{result.negotiated}/{result.attempted} secure channels "
            f"completed ({result.matched_best_advertised} at the best "
            f"advertised pair), {result.failed} failed, "
            f"{result.none_only} None-only"
        )
    if name == "certs":
        return (
            f"{result.servers_with_certificate} certificates, "
            f"{result.ca_signed} CA-signed, "
            f"{result.weaker_than_best_policy} weaker than best policy"
        )
    if name == "reuse":
        return (
            f"{result.distinct_certificates} distinct certificates, "
            f"{len(result.reused_on_3plus)} groups on >=3 hosts "
            f"({result.hosts_affected} hosts), "
            f"{result.shared_prime_pairs} shared-prime pairs"
        )
    if name == "access":
        return (
            f"{result.accessible} anonymously accessible "
            f"({result.production} production); "
            f"{result.rejected_authentication} auth-rejected, "
            f"{result.rejected_secure_channel} channel-rejected"
        )
    if name == "rights":
        return f"{result.hosts_analyzed} hosts with traversed address spaces"
    if name == "deficits":
        return (
            f"{result.deficient}/{result.total_servers} deficient "
            f"({result.deficient_fraction:.1%})"
        )
    if name == "breakdown":
        totals = ", ".join(
            f"{cls}={result.class_total(cls)}"
            for cls in result.by_manufacturer
        )
        return totals
    if name == "longitudinal":
        return (
            f"{len(result.sweeps)} sweeps, "
            f"avg {result.avg_deficient_fraction:.1%} deficient, "
            f"{result.renewal_count} renewals "
            f"({result.upgrades} hash upgrades)"
        )
    if name == "ipv6":
        return (
            f"IPv6 sample: {result.ipv6_servers}/{result.hitlist_size} "
            f"hosts, {result.ipv6_deficient_fraction:.1%} deficient "
            f"(IPv4 {result.ipv4_deficient_fraction:.1%})"
        )
    if name == "anomalies":
        return (
            f"{result.junk_talkers} junk talkers, "
            f"{result.stalled_hosts} stalled, "
            f"{result.expired_certificates} expired certs, "
            f"{result.honeypot_suspects} honeypot suspects, "
            f"{result.churned_applications} churned applications"
        )
    return type(result).__name__


def render_analysis_report(report) -> str:
    rows = [
        [name, _headline(name, result)]
        for name, result in report.results.items()
    ]
    table = render_table(
        ["analysis", "headline"],
        rows,
        title=f"Analysis report (seed {report.seed}, {report.sweeps} sweeps)",
    )
    return f"{table}\n\nreport digest: {report.digest()}"


def render_runs(runs, registry_digest: str | None = None) -> str:
    """The ``repro runs`` table over :class:`RunInfo` rows.

    Keys are printed in full — they are the handles ``repro diff`` /
    ``repro analyze`` / ``repro pack`` take — and the trailing
    registry digest makes two stores comparable at a glance.
    """
    rows = []
    for run in runs:
        if run.sweep_dates:
            dates = f"{run.sweep_dates[0]}..{run.sweep_dates[-1]}"
        else:
            dates = "-"
        shards = run.merged_from_shards
        rows.append(
            [
                run.key,
                run.seed,
                run.sweeps,
                run.records,
                dates,
                shards if shards is not None else "-",
                run.digest[:12],
            ]
        )
    table = render_table(
        ["key", "seed", "sweeps", "records", "dates", "shards", "digest"],
        rows,
        title=f"Stored studies ({len(runs)})",
    )
    if registry_digest is None:
        return table
    return f"{table}\n\nregistry digest: {registry_digest}"


def _signed(value: int) -> str:
    return f"{value:+d}" if value else "0"


def render_study_diff(diff, limit: int = 10) -> str:
    """Human-readable ``repro diff`` output for one :class:`StudyDiff`.

    Shows the churn headline (appeared / disappeared / changed /
    renewals), up to ``limit`` endpoints per churn class, and only the
    non-zero policy/deficit deltas; ends with the canonical diff
    digest the cross-backend tests pin.
    """
    lines = [
        f"study diff: {diff.label_a[:12]} ({diff.date_a}) -> "
        f"{diff.label_b[:12]} ({diff.date_b})",
        f"servers: {diff.servers_a} -> {diff.servers_b} "
        f"(deficient {_signed(diff.deficient_delta)})",
        f"appeared {len(diff.appeared)}, "
        f"disappeared {len(diff.disappeared)}, "
        f"changed {len(diff.changed)}, "
        f"certificate renewals {len(diff.renewals)}",
    ]

    def endpoints(label, states):
        if not states:
            return
        shown = ", ".join(s.endpoint for s in states[:limit])
        extra = f", … ({len(states) - limit} more)" if len(states) > limit else ""
        lines.append(f"  {label}: {shown}{extra}")

    endpoints("appeared", diff.appeared)
    endpoints("disappeared", diff.disappeared)
    for change in diff.changed[:limit]:
        lines.append(
            f"  changed {change.endpoint}: {', '.join(change.fields)}"
        )
    if len(diff.changed) > limit:
        lines.append(f"  … ({len(diff.changed) - limit} more changed)")
    for name, delta in (
        ("policy", diff.policy_delta),
        ("deficit", diff.deficit_delta),
    ):
        moved = {k: v for k, v in delta.items() if v}
        if moved:
            rendered = ", ".join(
                f"{k} {_signed(v)}" for k, v in sorted(moved.items())
            )
            lines.append(f"{name} deltas: {rendered}")
    if diff.is_empty():
        lines.append("no longitudinal differences")
    lines.append(f"diff digest: {diff.digest()}")
    return "\n".join(lines)
