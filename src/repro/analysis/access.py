"""§5.4 — access control (Figure 6, Table 2).

Classifies every server by the authentication-token combination it
advertises and the outcome of the anonymous access attempt, and — for
accessible systems — into production / test / unclassified via the
namespace heuristic the paper describes (industrial standards and
manufacturer namespaces vs. example-application namespaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scanner.records import HostRecord
from repro.server.addressspace import STANDARD_NAMESPACE
from repro.uabin.enums import UserTokenType

# Namespace fragments indicating example/demo deployments (the paper
# cites the FreeOpcUa example applications).  Markers are specific so
# vendor domains never collide with them.
_TEST_NAMESPACE_MARKERS = (
    "examples.freeopcua",
    "freeopcua.github.io",
    "quickstart",
    "sampleserver",
    "/demo/",
)

# Namespace fragments indicating industrial standards or vendors.
_PRODUCTION_NAMESPACE_MARKERS = (
    "PLCopen.org/OpcUa/IEC61131",
    "iec61131",
    "bachmann",
    "beckhoff",
    "wago",
    "automatawerk",
    "controlcorp",
    "siemens",
)


def classify_system(namespaces: list[str]) -> str:
    """The paper's heuristic: production / test / unclassified."""
    informative = [ns for ns in namespaces if ns != STANDARD_NAMESPACE]
    for namespace in informative:
        lowered = namespace.lower()
        if any(marker.lower() in lowered for marker in _TEST_NAMESPACE_MARKERS):
            return "test"
    for namespace in informative:
        lowered = namespace.lower()
        if any(
            marker.lower() in lowered for marker in _PRODUCTION_NAMESPACE_MARKERS
        ):
            return "production"
    return "unclassified"


@dataclass
class AccessAnalysis:
    total_servers: int = 0
    # Table 2: (sorted token tuple) -> outcome -> count.
    table: dict[tuple, dict[str, int]] = field(default_factory=dict)
    accessible: int = 0
    production: int = 0
    test: int = 0
    unclassified: int = 0
    rejected_authentication: int = 0
    rejected_secure_channel: int = 0
    anonymous_offered: int = 0
    channel_ok: int = 0
    anonymous_offered_channel_ok: int = 0
    forced_secure_accessible: int = 0

    def cell(self, tokens, outcome: str) -> int:
        key = tuple(sorted(int(t) for t in tokens))
        return self.table.get(key, {}).get(outcome, 0)


def _outcome_for(record: HostRecord) -> str:
    if record.anonymous_accessible():
        return f"accessible-{classify_system(record.namespaces)}"[
            : len("accessible-") + 32
        ]
    if record.secure_channel is not None and not record.secure_channel.success:
        return "rejected-secure-channel"
    return "rejected-authentication"


def analyze_access_control(records: list[HostRecord]) -> AccessAnalysis:
    analysis = AccessAnalysis()
    for record in records:
        analysis.total_servers += 1
        tokens = tuple(sorted(int(t) for t in record.offered_token_types()))
        outcome = _outcome_for(record)
        if record.anonymous_accessible():
            classification = classify_system(record.namespaces)
            outcome = f"accessible-{classification}"
        bucket = analysis.table.setdefault(tokens, {})
        bucket[outcome] = bucket.get(outcome, 0) + 1

        if outcome.startswith("accessible"):
            analysis.accessible += 1
            if outcome.endswith("production"):
                analysis.production += 1
            elif outcome.endswith("test"):
                analysis.test += 1
            else:
                analysis.unclassified += 1
        elif outcome == "rejected-secure-channel":
            analysis.rejected_secure_channel += 1
        else:
            analysis.rejected_authentication += 1

        anonymous = UserTokenType.ANONYMOUS in record.offered_token_types()
        if anonymous:
            analysis.anonymous_offered += 1
        if record.secure_channel_ok():
            analysis.channel_ok += 1
            if anonymous:
                analysis.anonymous_offered_channel_ok += 1
        if record.anonymous_accessible():
            from repro.uabin.enums import MessageSecurityMode

            if MessageSecurityMode.NONE not in record.security_modes():
                analysis.forced_secure_accessible += 1
    return analysis
