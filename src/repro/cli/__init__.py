"""Command-line interface.

Usage::

    python -m repro.cli study                 # run all sweeps + experiments
    python -m repro.cli study --store .study-store --scan-only
    python -m repro.cli analyze --store .study-store
    python -m repro.cli experiment fig3       # one experiment
    python -m repro.cli list                  # known experiments
    python -m repro.cli runs --store DIR      # stored-study registry
    python -m repro.cli diff KEY_A KEY_B --store DIR
    python -m repro.cli pack KEY --out bundle/ --store DIR
    python -m repro.cli dataset out.jsonl     # anonymized dataset release
    python -m repro.cli policies              # print Table 1
    python -m repro.cli scan --live --targets targets.txt \
        --contact you@lab.example             # live lab scan (gated)

The full study builds ~1900 hosts and scans them eight times; the
first invocation also generates the RSA key cache (several minutes).
With ``--store DIR`` (or ``REPRO_STUDY_STORE=DIR``), the sweeps are
persisted content-addressed under DIR and every later invocation —
``study``, ``experiment``, ``dataset``, ``analyze`` — loads them in
well under a second instead of re-scanning.  ``analyze`` never scans:
it runs the analysis registry straight off a stored study, and the
read-side verbs ``runs``/``diff``/``pack`` never scan either — they
enumerate, compare, and export stored studies through the
:class:`~repro.dataset.catalog.StudyCatalog`.

The package is one module per subcommand (each exposing
``register(commands)`` and its ``cmd_*`` handler) over the shared
option groups in :mod:`repro.cli.options`.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import (
    analyze,
    dataset,
    diff,
    experiments,
    pack,
    policies,
    runs,
    scan,
    study,
)
from repro.cli.analyze import ANALYZE_CHOICES

__all__ = ["ANALYZE_CHOICES", "build_parser", "main"]

#: Subcommand modules in help order; each contributes one (or two)
#: parsers via ``register`` and binds its handler with set_defaults.
_SUBCOMMANDS = (
    study,
    experiments,
    analyze,
    runs,
    diff,
    pack,
    dataset,
    policies,
    scan,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Easing the Conscience with OPC UA' (IMC 2020)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for module in _SUBCOMMANDS:
        module.register(commands)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
