"""End-to-end study execution.

The pipeline mirrors the paper's §4 methodology:

1. build the ground-truth population (spec → hosts → servers);
2. for each of the eight sweep dates, assemble the Internet of that
   week and run a scan campaign (port sweep → per-host grab →
   follow-references from 2020-05-04 on);
3. keep all snapshots for the longitudinal analysis; the last sweep
   additionally runs the address-space traversal feeding Figure 7.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.client import ClientIdentity

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.dataset.store import StudyStore
from repro.core.config import StudyConfig
from repro.deployments.evolution import (
    DISCOVERY_COUNTS,
    SWEEP_DATES,
    StudyTimeline,
)
from repro.deployments.keyfactory import KeyFactory
from repro.deployments.population import BuiltHost, PopulationBuilder
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.net import SimHost, SimNetwork
from repro.scanner.campaign import ScanCampaign, ScannerIdentity
from repro.scanner.executor import build_executor
from repro.scanner.records import MeasurementSnapshot
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed


class JunkTcpService:
    """A non-OPC UA service squatting on TCP/4840 (HTTP-ish banner)."""

    closed = False

    def receive(self, data: bytes) -> bytes:
        return b"HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n"


class StudyResult:
    """Everything a downstream analysis or benchmark needs.

    A result is either *live* (``Study.run`` scanned and handed over
    the population and timeline it built) or *stored* (snapshots
    loaded from a :class:`~repro.dataset.store.StudyStore`, no ground
    truth attached).  The analyses never notice the difference — they
    only read snapshots.  The few consumers that do need the simulated
    environment (the IPv6 extension experiment, the sweep benchmarks)
    get it through the lazy ``hosts``/``timeline`` properties, which
    rebuild it deterministically from ``(config, spec)`` on first
    access: ``network_for_sweep`` re-assembles a freshly re-seeded
    Internet on every call even on a live result, so a rebuilt
    environment is indistinguishable from the original.
    """

    def __init__(
        self,
        config: StudyConfig,
        spec: PopulationSpec,
        hosts: list[BuiltHost] | None = None,
        timeline: StudyTimeline | None = None,
        snapshots: list[MeasurementSnapshot] | None = None,
    ):
        self.config = config
        self.spec = spec
        self.snapshots: list[MeasurementSnapshot] = snapshots or []
        self._hosts = hosts
        self._timeline = timeline
        self._analyses: dict[str, object] = {}
        self._analysis_context = None

    @property
    def final_snapshot(self) -> MeasurementSnapshot:
        return self.snapshots[-1]

    def final_servers(self):
        return self.final_snapshot.servers()

    # --- simulated environment (lazy for store-loaded results) -----------

    @property
    def hosts(self) -> list[BuiltHost]:
        if self._hosts is None:
            self._materialize()
        return self._hosts

    @property
    def timeline(self) -> StudyTimeline:
        if self._timeline is None:
            self._materialize()
        return self._timeline

    def _materialize(self) -> None:
        if self.spec is None:
            # Rebuilding would silently substitute the default
            # population for whatever reduced spec actually produced
            # these snapshots — a wrong environment, not a slow one.
            raise ValueError(
                "stored study has no matching population spec; its "
                "simulated environment cannot be rebuilt"
            )
        self._hosts, self._timeline = Study(
            self.config, spec=self.spec
        ).build_environment(self.spec, warm_sweeps=len(self.snapshots))

    # --- shared analyses --------------------------------------------------

    def analysis(self, name: str):
        """One registered analysis of this study's snapshots, memoized.

        Every experiment pulls its inputs through here, so a quantity
        two figures share (the longitudinal pass, the deficit flags)
        is computed once per study — and a pipeline run
        (:meth:`run_analyses`) pre-fills the same cache.
        """
        if name not in self._analyses:
            from repro.analysis.pipeline import ANALYSES, AnalysisContext

            # One context per result: its final_servers cache is
            # shared across all per-name calls.
            if self._analysis_context is None:
                self._analysis_context = AnalysisContext(
                    snapshots=self.snapshots,
                    spec=self.spec,
                    seed=self.config.seed,
                )
            self._analyses[name] = ANALYSES[name](self._analysis_context)
        return self._analyses[name]

    def run_analyses(
        self,
        executor: str = "serial",
        workers: int = 1,
        names: tuple[str, ...] | None = None,
    ):
        """Fan the analysis registry out over an executor backend and
        cache every result on this study."""
        from repro.analysis.pipeline import run_analyses

        report = run_analyses(
            self.snapshots,
            self.spec,
            seed=self.config.seed,
            executor=executor,
            workers=workers,
            names=names,
        )
        self._analyses.update(report.results)
        return report


class Study:
    """One reproducible end-to-end study run.

    ``spec`` overrides the population (default:
    :func:`~repro.deployments.spec.build_default_spec`).  The golden
    test harness passes a tiny row subset so a full eight-sweep study
    finishes in seconds while exercising every pipeline stage.

    A study is configured up front and produces a
    :class:`StudyResult` from :meth:`run` (pass a
    :class:`~repro.dataset.store.StudyStore` to load instead of
    re-scanning on a hit)::

        >>> study = Study(StudyConfig(seed=7, executor="thread",
        ...                           workers=4))
        >>> study.config.seed
        7
        >>> study.config.executor
        'thread'

    Construction is cheap — population building, key generation, and
    scanning all happen inside :meth:`run`.
    """

    def __init__(
        self,
        config: StudyConfig | None = None,
        spec: PopulationSpec | None = None,
    ):
        self.config = config or StudyConfig()
        self._spec = spec
        self._rng = DeterministicRng(self.config.seed, "study")
        self._key_factory = KeyFactory(self.config.seed)

    def scanner_identity(self) -> ScannerIdentity:
        """The research scanner's identity (contact info included,
        following the paper's ethics appendix)."""
        rng = self._rng.substream("scanner")
        # Same derivation the seed used inline (namespace
        # "study/scanner/key"), now routed through the shared key
        # factory so the disk cache — committed for CI — serves it and
        # forked scan workers inherit it in memory.
        keys = self._key_factory.key_for_namespace(
            rng.substream("key").namespace, 2048
        )
        certificate = make_self_signed(
            keys,
            common_name="research-scanner",
            application_uri="urn:repro:research-scanner",
            not_before=parse_utc("2020-01-01"),
            hash_name="sha256",
            rng=rng.substream("cert"),
            organization="Internet Measurement Research",
        )
        identity = ClientIdentity(
            application_uri="urn:repro:research-scanner",
            application_name=(
                "Research scanner - opt out: https://scan-research.example.org"
            ),
            certificate=certificate,
            private_key=keys.private,
        )
        return ScannerIdentity(identity)

    def build_environment(
        self, spec: PopulationSpec | None = None, warm_sweeps: int = 0
    ) -> tuple[list[BuiltHost], StudyTimeline]:
        """Build the ground-truth population and timeline.

        ``spec`` should be the spec the caller already resolved (so
        the population is built from the *same object* the store key
        and the result carry); ``None`` resolves it here.
        ``warm_sweeps`` replays the discovery-fleet allocations for
        that many sweeps in order.  A live run never needs it (the
        sweeps warm the caches as they execute); rebuilding the
        environment for a *stored* result does, because discovery
        addresses draw from a shared registry whose allocation order
        must match the original run's sweep order.
        """
        if spec is None:
            spec = self._spec or build_default_spec()
        builder = PopulationBuilder(
            spec, seed=self.config.seed, key_factory=self._key_factory
        )
        hosts = builder.build_hosts()
        timeline = StudyTimeline(
            builder,
            hosts,
            seed=self.config.seed,
            discovery_counts=self._discovery_counts(),
        )
        timeline.warm_discovery_allocations(warm_sweeps)
        return hosts, timeline

    def run(self, store: "StudyStore | None" = None) -> StudyResult:
        """Run the eight sweeps — or load them from ``store``.

        With a store, a hit returns the persisted (digest-validated)
        snapshots without building a single host; a miss scans as
        usual and persists the snapshots before returning.
        """
        spec = self._spec or build_default_spec()
        if store is not None:
            stored = store.load(self.config, spec)
            if stored is not None:
                return StudyResult(
                    config=self.config, spec=spec, snapshots=stored
                )
        hosts, timeline = self.build_environment(spec)
        identity = self.scanner_identity()
        result = StudyResult(
            config=self.config, spec=spec, hosts=hosts, timeline=timeline
        )
        executor = build_executor(self.config.executor, self.config.workers)
        result.snapshots.extend(self.scan_sweeps(timeline, identity, executor))
        if store is not None:
            store.save(self.config, spec, result.snapshots)
        return result

    def scan_sweeps(
        self,
        timeline: StudyTimeline,
        identity: ScannerIdentity,
        executor,
        shard=None,
    ) -> list[MeasurementSnapshot]:
        """Scan the eight sweeps through ``executor``.

        ``shard`` (a :class:`~repro.scanner.shard.ShardSpec`) restricts
        every sweep to that shard's slice of the candidate permutation;
        ``None`` scans the whole address space.  Everything else — the
        per-sweep Internet, noise hosts, campaign RNG substreams — is
        derived identically either way, which is what makes a merged
        sharded study byte-identical to an unsharded one.
        """
        snapshots: list[MeasurementSnapshot] = []
        for sweep_index, date in enumerate(SWEEP_DATES):
            network = timeline.network_for_sweep(sweep_index)
            self._add_noise_hosts(network, sweep_index)
            campaign_rng = self._rng.substream(f"campaign-{sweep_index}")
            if shard is None:
                campaign = ScanCampaign(
                    network, identity, campaign_rng, executor=executor
                )
            else:
                # Imported here: shard.py builds on ScanCampaign/Study,
                # so a module-level import would be a cycle.
                from repro.scanner.shard import ShardedScanCampaign

                campaign = ShardedScanCampaign(
                    network,
                    identity,
                    campaign_rng,
                    shard=shard,
                    executor=executor,
                )
            is_last = sweep_index == len(SWEEP_DATES) - 1
            snapshots.append(
                campaign.run_sweep(
                    label=date,
                    follow_references=(
                        sweep_index >= self.config.follow_references_from_sweep
                    ),
                    extra_candidates=self.config.extra_sweep_candidates,
                    traverse=self.config.traverse_all_sweeps or is_last,
                    batch_size=self.config.probe_batch_size,
                )
            )
        return snapshots

    def _discovery_counts(self) -> tuple[int, ...] | None:
        """Weekly discovery-fleet sizes, scaled by the config.

        ``None`` (scale 1.0) keeps the timeline's paper-accurate
        defaults — and keeps full-study RNG draws untouched.
        """
        scale = self.config.discovery_scale
        if scale == 1.0:
            return None
        return tuple(max(1, round(count * scale)) for count in DISCOVERY_COUNTS)

    def _add_noise_hosts(self, network: SimNetwork, sweep_index: int) -> None:
        """Non-OPC UA responders on 4840 (exercises the 0.5 ‰ path)."""
        rng = self._rng.substream(f"noise-{sweep_index}")
        added = 0
        while added < self.config.noise_hosts:
            address = rng.randrange(2**32)
            if network.host(address) is not None:
                continue
            host = SimHost(address=address, asn=None)
            host.listen(4840, JunkTcpService)
            network.add_host(host)
            added += 1


# --- shared cached run --------------------------------------------------------

_RESULT_CACHE: dict[int, StudyResult] = {}


def default_study_result(
    seed: int = 20200830,
    executor: str = "serial",
    workers: int = 1,
    store: "StudyStore | None | bool" = True,
) -> StudyResult:
    """The cached full-study result shared by tests/benchmarks/examples.

    The in-memory cache is keyed by seed alone: snapshots are
    bit-identical across executor backends, so whichever backend
    computes the result first serves every later caller.

    ``store`` layers on-disk persistence underneath: ``True`` (the
    default) resolves the ambient store through
    :func:`repro.dataset.store.resolve_store` (the one documented
    reader of ``REPRO_STUDY_STORE``), ``False``/``None`` disables
    persistence, and an explicit
    :class:`~repro.dataset.store.StudyStore` pins a directory.  CI's
    full tier sets the environment variable once and every consumer —
    tier-1 tests, ``repro analyze``, the benchmark suite — reuses the
    single stored scan.
    """
    if seed not in _RESULT_CACHE:
        if store is True:
            from repro.dataset.store import resolve_store

            store = resolve_store()
        elif store is False:
            store = None
        _RESULT_CACHE[seed] = Study(
            StudyConfig(seed=seed, executor=executor, workers=workers)
        ).run(store=store or None)
    return _RESULT_CACHE[seed]
