"""Experiment registry: one regeneration function per paper artifact.

Each function takes a :class:`~repro.core.study.StudyResult` and
returns an :class:`~repro.reporting.figures.ExperimentReport` whose
comparisons put the paper's published value next to the measured one.
The benchmark harness (benchmarks/) calls these, so ``pytest
benchmarks/ --benchmark-only`` regenerates every table and figure.

Analysis inputs come through ``result.analysis(name)`` — the memoized
view of the :mod:`repro.analysis.pipeline` registry — so experiments
sharing a pass (``fig2``/``sec55`` both need the longitudinal walk)
compute it once, and a pipeline run pre-fills everything.
"""

from __future__ import annotations

from repro.core.study import StudyResult
from repro.deployments.spec import (
    A,
    AC,
    ACC,
    ACCT,
    AUTH,
    C,
    CC,
    CCT,
    PROD,
    SC,
    TEST,
    UNCL,
)
from repro.reporting.charts import render_bars, render_cdf
from repro.reporting.figures import ExperimentReport
from repro.reporting.tables import render_table
from repro.secure.policies import ALL_POLICIES


def table1(result: StudyResult) -> ExperimentReport:
    """Table 1 — the security policy catalogue."""
    report = ExperimentReport("table1", "Security policies (Table 1)")
    rows = []
    for policy in ALL_POLICIES:
        rows.append(
            [
                policy.name,
                "/".join(policy.certificate_hash) or "—",
                f"[{policy.min_key_bits}; {policy.max_key_bits}]"
                if policy.provides_security
                else "—",
                policy.short_label,
                "deprecated"
                if policy.is_deprecated
                else ("none" if not policy.provides_security else "current"),
            ]
        )
    report.body = render_table(
        ["Policy", "Cert. hash", "Key len. [bit]", "A", "Status"], rows
    )
    report.add("policies", 6, len(ALL_POLICIES))
    report.add("deprecated", 2, sum(1 for p in ALL_POLICIES if p.is_deprecated))
    return report


def fig2(result: StudyResult) -> ExperimentReport:
    """Figure 2 — hosts over time by manufacturer."""
    longitudinal = result.analysis("longitudinal")
    report = ExperimentReport("fig2", "Hosts over time (Figure 2)")
    totals = [s.total_reachable for s in longitudinal.sweeps]
    report.add("measurements", 8, len(longitudinal.sweeps))
    report.add("min total in [1761, 2069]", True, 1761 <= min(totals) <= 2069)
    report.add("max total in [1761, 2069]", True, 1761 <= max(totals) <= 2069)
    last = longitudinal.sweeps[-1]
    discovery_share = last.discovery_servers / last.total_reachable
    report.add("final discovery share ~42 %", 0.42, round(discovery_share, 2))
    report.add("final servers", 1114, last.servers)
    report.add("Bachmann (final)", 406, last.by_manufacturer.get("Bachmann", 0))
    report.add("Beckhoff (final)", 112, last.by_manufacturer.get("Beckhoff", 0))
    report.add("Wago (final)", 78, last.by_manufacturer.get("Wago", 0))
    report.add(
        "non-default-port hosts found only after 2020-05-04",
        True,
        all(s.non_default_port == 0 for s in longitudinal.sweeps[:3])
        and any(s.non_default_port > 0 for s in longitudinal.sweeps[3:]),
    )
    rows = [
        [s.date, s.total_reachable, s.discovery_servers, s.servers,
         s.via_reference, s.non_default_port]
        for s in longitudinal.sweeps
    ]
    report.body = render_table(
        ["date", "total", "discovery", "servers", "via-ref", "non-4840"], rows
    )
    return report


def fig3(result: StudyResult) -> ExperimentReport:
    """Figure 3 — security modes and policies."""
    modes = result.analysis("modes")
    policies = result.analysis("policies")
    report = ExperimentReport("fig3", "Modes and policies (Figure 3)")
    for label, paper in (("N", 1035), ("S", 588), ("S&E", 843)):
        report.add(f"mode {label} supported", paper, modes.supported[label])
    for label, paper in (("N", 1035), ("S", 28), ("S&E", 51)):
        report.add(f"mode {label} least secure", paper, modes.least_secure[label])
    for label, paper in (("N", 270), ("S", 1), ("S&E", 843)):
        report.add(f"mode {label} most secure", paper, modes.most_secure[label])
    for label, paper in (
        ("N", 1035), ("D1", 715), ("D2", 762), ("S1", 10), ("S2", 564), ("S3", 8)
    ):
        report.add(f"policy {label} supported", paper, policies.supported[label])
    for label, paper in (
        ("N", 1035), ("D1", 13), ("D2", 50), ("S1", 0), ("S2", 16), ("S3", 0)
    ):
        report.add(
            f"policy {label} least secure", paper, policies.least_secure[label]
        )
    for label, paper in (
        ("N", 270), ("D1", 24), ("D2", 256), ("S1", 0), ("S2", 556), ("S3", 8)
    ):
        report.add(
            f"policy {label} most secure", paper, policies.most_secure[label]
        )
    report.add("servers offering secure mode", 844, modes.supports_secure_mode)
    report.add("None-only servers", 270, modes.none_only)
    report.add("supports deprecated (D1 or D2)", 786, policies.supports_deprecated)
    report.add("deprecated as best option", 280, policies.deprecated_as_best)
    report.add("enforce strong policies", 16, policies.enforce_secure)
    report.body = render_bars(modes.supported, title="mode support")
    return report


def fig4(result: StudyResult) -> ExperimentReport:
    """Figure 4 — certificates vs. announced policies."""
    conformance = result.analysis("certs")
    report = ExperimentReport("fig4", "Certificate conformance (Figure 4)")
    s2 = conformance.buckets["S2"]
    d1 = conformance.buckets["D1"]
    d2 = conformance.buckets["D2"]
    report.add("S2 supporters with too-weak certificate", 409, s2.too_weak)
    report.add("S2 supporters with matching certificate", 155, s2.matching)
    report.add("D1 supporters with too-strong certificate", 75, d1.too_strong)
    report.add("D1 supporters with too-weak certificate", 7, d1.too_weak)
    report.add("D2 supporters with too-strong certificate", 5, d2.too_strong)
    report.add("CA-signed certificates", 2, conformance.ca_signed)
    report.add(
        "self-signed share ~99 %",
        True,
        conformance.self_signed
        >= 0.99 * conformance.servers_with_certificate,
    )
    rows = []
    for label, bucket in conformance.buckets.items():
        for (hash_name, bits), count in sorted(bucket.by_hash_and_bits.items()):
            rows.append([label, hash_name, bits, count])
    report.body = render_table(["policy", "hash", "key bits", "servers"], rows)
    return report


def fig5(result: StudyResult) -> ExperimentReport:
    """Figure 5 — certificate reuse across hosts and ASes."""
    reuse = result.analysis("reuse")
    report = ExperimentReport("fig5", "Certificate reuse (Figure 5)")
    report.add("certificates on >= 3 hosts", 9, len(reuse.reused_on_3plus))
    largest = reuse.largest_group
    report.add("largest group size", 385, largest.host_count if largest else 0)
    report.add("largest group AS spread", 24, largest.asn_count if largest else 0)
    same_subject = [
        g for g in reuse.reused_on_3plus
        if largest and g.subject == largest.subject
    ]
    sizes = sorted((g.host_count for g in same_subject), reverse=True)
    report.add("same-manufacturer groups (sizes)", [385, 9, 6], sizes[:3])
    report.add("shared-prime key pairs", 0, reuse.shared_prime_pairs)
    rows = [
        [g.host_count, g.asn_count, g.subject[:40]]
        for g in reuse.reused_on_3plus
    ]
    report.body = render_table(["hosts", "ASes", "subject"], rows)
    return report


def fig6_table2(result: StudyResult) -> ExperimentReport:
    """Figure 6 / Table 2 — authentication and accessibility."""
    access = result.analysis("access")
    report = ExperimentReport(
        "fig6-table2", "Authentication & accessibility (Figure 6, Table 2)"
    )
    paper_cells = (
        (A, PROD, 116), (A, TEST, 8), (A, UNCL, 5), (A, AUTH, 9), (A, SC, 1),
        (C, AUTH, 464), (C, SC, 21),
        (AC, PROD, 168), (AC, TEST, 20), (AC, UNCL, 134), (AC, AUTH, 38),
        (AC, SC, 5),
        (CC, AUTH, 4), (CC, SC, 7),
        (ACC, PROD, 11), (ACC, TEST, 14), (ACC, UNCL, 17), (ACC, AUTH, 17),
        (ACC, SC, 3),
        (CCT, SC, 43),
        (ACCT, AUTH, 6),
    )
    combo_names = {
        tuple(sorted(int(t) for t in A)): "anon",
        tuple(sorted(int(t) for t in C)): "cred",
        tuple(sorted(int(t) for t in AC)): "anon+cred",
        tuple(sorted(int(t) for t in CC)): "cred+cert",
        tuple(sorted(int(t) for t in ACC)): "anon+cred+cert",
        tuple(sorted(int(t) for t in CCT)): "cred+cert+token",
        tuple(sorted(int(t) for t in ACCT)): "all four",
    }
    for tokens, outcome, paper in paper_cells:
        key = tuple(sorted(int(t) for t in tokens))
        name = combo_names[key]
        report.add(f"{name} / {outcome}", paper, access.cell(tokens, outcome))
    report.add("accessible", 493, access.accessible)
    report.add("production systems", 295, access.production)
    report.add("test systems", 42, access.test)
    report.add("unclassified", 156, access.unclassified)
    report.add("rejected (authentication)", 541, access.rejected_authentication)
    report.add("rejected (secure channel)", 80, access.rejected_secure_channel)
    report.add("channel open to anyone", 1034, access.channel_ok)
    report.add(
        "anonymous offered among channel-ok", 563,
        access.anonymous_offered_channel_ok,
    )
    report.add(
        "accessible despite forced security", 71, access.forced_secure_accessible
    )
    # Render the full measured Table 2 (Appendix B.2 layout).
    outcome_columns = (PROD, TEST, UNCL, AUTH, SC)
    rows = []
    for tokens in sorted(access.table, key=lambda t: (len(t), t)):
        label = "+".join(
            {0: "anon", 1: "cred", 2: "cert", 3: "token"}[t] for t in tokens
        )
        cells = [access.table[tokens].get(col, 0) for col in outcome_columns]
        rows.append([label] + cells + [sum(cells)])
    report.body = render_table(
        ["tokens", "prod", "test", "uncl", "auth-rej", "sc-rej", "total"],
        rows,
        title="Measured Table 2",
    )
    return report


def fig7(result: StudyResult) -> ExperimentReport:
    """Figure 7 — anonymous access rights CDFs."""
    rights = result.analysis("rights")
    report = ExperimentReport("fig7", "Access rights of anonymous users (Figure 7)")
    report.add("hosts analyzed", 493, rights.hosts_analyzed)
    # The paper reads three anchors off the CDFs; per-host profiles are
    # drawn from a distribution, so the anchors carry sampling noise
    # and are checked as ranges around the paper's values.
    report.add(
        "90 % of hosts expose >97 % readable",
        True,
        rights.survival_value("readable", 0.90) > 0.97,
    )
    writable_share = rights.fraction_of_hosts_above("writable", 0.10)
    report.add(
        "~33 % of hosts allow writes to >10 %",
        True,
        0.26 <= writable_share <= 0.40,
    )
    executable_share = rights.fraction_of_hosts_above("executable", 0.86)
    report.add(
        "~61 % of hosts allow executing >86 %",
        True,
        0.53 <= executable_share <= 0.69,
    )
    report.body = (
        f"measured anchors: write>10% on {writable_share:.2f} of hosts "
        f"(paper 0.33), exec>86% on {executable_share:.2f} (paper 0.61)\n\n"
    ) + "\n\n".join(
        [
            render_cdf(rights.readable_fractions, "readable"),
            render_cdf(rights.writable_fractions, "writable"),
            render_cdf(rights.executable_fractions, "executable"),
        ]
    )
    return report


def fig8(result: StudyResult) -> ExperimentReport:
    """Figure 8 — deficits by manufacturer and autonomous system."""
    breakdown = result.analysis("breakdown")
    report = ExperimentReport("fig8", "Deficit breakdown (Figure 8)")
    report.add("none-only hosts", 270, breakdown.class_total("none-only"))
    report.add(
        "deprecated-best hosts", 280, breakdown.class_total("deprecated-best")
    )
    report.add(
        "weak-certificate hosts", 409, breakdown.class_total("weak-certificate")
    )
    # 385 + 9 + 6 (AutomataWerk) + 5 (R4) + 17 (five small groups).
    report.add(
        "certificate-reuse hosts", 422,
        breakdown.class_total("certificate-reuse"),
    )
    report.add(
        "anonymous-access hosts", 493,
        breakdown.class_total("anonymous-access"),
    )
    # Qualitative claims of Appendix B.1.
    none_only = breakdown.by_manufacturer["none-only"]
    report.add(
        "one manufacturer entirely None-only (ControlCorp)",
        60,
        none_only.get("ControlCorp", 0),
    )
    reuse_manu, reuse_count = breakdown.dominant_manufacturer("certificate-reuse")
    report.add("reuse dominated by one manufacturer", "AutomataWerk", reuse_manu)
    weak_asn, weak_count = breakdown.dominant_asn("weak-certificate")
    report.add("weak certs concentrate on the IIoT ISP", 64600, weak_asn)
    rows = []
    for deficit_class in breakdown.by_manufacturer:
        for name, count in sorted(
            breakdown.by_manufacturer[deficit_class].items(),
            key=lambda kv: -kv[1],
        ):
            rows.append([deficit_class, name, count])
    report.body = render_table(["deficit", "manufacturer", "hosts"], rows)
    return report


def sec52_sec54(result: StudyResult) -> ExperimentReport:
    """§5.2/§5.4 takeaways — aggregate deficit shares."""
    deficits = result.analysis("deficits")
    report = ExperimentReport("deficits", "Aggregate deficits (§5.2, §5.4)")
    report.add("servers", 1114, deficits.total_servers)
    report.add("no security at all (24 %)", 270, deficits.none_only)
    report.add("deprecated as best (25 %)", 280, deficits.deprecated_best)
    report.add("weak certificate", 409, deficits.weak_certificate)
    report.add("anonymous access (44 %)", 493, deficits.anonymous_access)
    report.add("deficient servers", 1025, deficits.deficient)
    report.add(
        "deficient share ~92 %", 0.92, round(deficits.deficient_fraction, 2)
    )
    return report


def sec55(result: StudyResult) -> ExperimentReport:
    """§5.5 — longitudinal statistics."""
    longitudinal = result.analysis("longitudinal")
    report = ExperimentReport("sec55", "Longitudinal development (§5.5)")
    report.add(
        "avg deficient fraction ~92 %",
        0.92,
        round(longitudinal.avg_deficient_fraction, 2),
    )
    report.add(
        "std deficient fraction <= 0.8 pp",
        True,
        longitudinal.std_deficient_fraction <= 0.008 + 1e-9,
    )
    report.add("certificate renewals", 84, longitudinal.renewal_count)
    report.add(
        "renewals with software update", 9,
        longitudinal.renewals_with_software_update,
    )
    report.add("SHA-1 -> SHA-256 upgrades", 7, longitudinal.upgrades)
    report.add("SHA-256 -> SHA-1 downgrades", 1, longitudinal.downgrades)
    sha1_after = (
        longitudinal.sha1_after_deprecation / longitudinal.sha1_certificates
        if longitudinal.sha1_certificates
        else 0
    )
    # The paper's 2174/4296 = 50.6 %; per-certificate dates are drawn
    # from a distribution, so the measured share carries sampling
    # noise — the claim is "about half", checked as a range.
    report.add(
        "share of SHA-1 certs minted after 2017 ~ 50 %",
        True,
        0.44 <= sha1_after <= 0.58,
    )
    sha1_recent = (
        longitudinal.sha1_after_2019 / longitudinal.sha1_certificates
        if longitudinal.sha1_certificates
        else 0
    )
    report.add(
        "most post-2017 SHA-1 certs minted since 2019",
        True,
        sha1_recent >= 0.35,
    )
    report.add(
        "reuse family grows (first sweep)", 263,
        longitudinal.reuse_family_counts[0] if longitudinal.reuse_family_counts
        else 0,
    )
    report.add(
        "reuse family grows (last sweep >= 387)",
        True,
        bool(
            longitudinal.reuse_family_counts
            and longitudinal.reuse_family_counts[-1] >= 387
        ),
    )
    rows = [
        [s.date, s.servers, s.deficient, f"{s.deficient_fraction:.1%}"]
        for s in longitudinal.sweeps
    ]
    report.body = render_table(["date", "servers", "deficient", "share"], rows)
    return report


def ipv6_extension(result: StudyResult) -> ExperimentReport:
    """Future-work extension: IPv6 hitlist measurement (§6).

    Not a paper figure — the paper explicitly left IPv6 for future
    research, conjecturing the devices are "not configured more
    securely".  We give 20 % of the population IPv6 connectivity
    (identical configuration — it is the same server), scan via an
    incomplete hitlist, and compare deficiency rates.
    """
    from repro.analysis.ipv6 import compare_address_families
    from repro.deployments.dualstack import enable_ipv6
    from repro.netsim.ipv6 import sweep_hitlist
    from repro.scanner.grabber import grab_host
    from repro.util.rng import DeterministicRng

    rng = DeterministicRng(result.config.seed, "ipv6-extension")
    network = result.timeline.network_for_sweep(len(result.snapshots) - 1)
    plan = enable_ipv6(result.hosts, network, rng, fraction=0.2)
    scan = sweep_hitlist(
        network, 4840, plan.hitlist, rng.substream("sweep")
    )

    from repro.core.study import Study, StudyConfig

    identity = Study(StudyConfig(seed=result.config.seed)).scanner_identity()
    ipv6_records = []
    for address in scan.open_addresses:
        record = grab_host(
            network,
            address,
            4840,
            identity.client_identity,
            rng.substream(f"grab-{address}"),
            traverse=False,
        )
        if record.is_opcua:
            ipv6_records.append(record)

    comparison = compare_address_families(
        result.final_servers(), ipv6_records, len(plan.hitlist)
    )
    report = ExperimentReport(
        "ipv6", "IPv6 extension (future work, §6)"
    )
    report.add("IPv6-reachable OPC UA servers found > 100", True,
               comparison.ipv6_servers > 100)
    report.add(
        "IPv6 devices not configured more securely (paper conjecture)",
        True,
        not comparison.configured_more_securely,
    )
    report.add(
        "deficient share similar on both families",
        True,
        abs(
            comparison.ipv6_deficient_fraction
            - comparison.ipv4_deficient_fraction
        )
        < 0.08,
    )
    report.body = (
        f"IPv4: {comparison.ipv4_servers} servers, "
        f"{comparison.ipv4_deficient_fraction:.1%} deficient\n"
        f"IPv6: {comparison.ipv6_servers} servers via a "
        f"{comparison.hitlist_size}-entry hitlist, "
        f"{comparison.ipv6_deficient_fraction:.1%} deficient"
    )
    return report


EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6-table2": fig6_table2,
    "fig7": fig7,
    "fig8": fig8,
    "deficits": sec52_sec54,
    "sec55": sec55,
    "ipv6": ipv6_extension,
}


def run_experiment(experiment_id: str, result: StudyResult) -> ExperimentReport:
    try:
        function = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return function(result)
