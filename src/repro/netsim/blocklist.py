"""Scan opt-out blocklist.

The paper excluded 5.79 M addresses (0.13 % of the IPv4 space) on
operator request; the simulator provides the same mechanism so the
campaign honours exclusions and the ethics tests can verify it.
"""

from __future__ import annotations

from repro.util.ipaddr import CidrBlock


class Blocklist:
    """A set of excluded CIDR blocks and raw address ranges.

    Raw ranges cover the IPv6 case, where exclusions arrive as
    first/last address pairs rather than IPv4 CIDR notation.
    """

    def __init__(self, blocks: list[CidrBlock] | None = None):
        self._blocks: list[CidrBlock] = list(blocks or [])
        self._ranges: list[tuple[int, int]] = []

    def add(self, block: CidrBlock | str) -> None:
        if isinstance(block, str):
            block = CidrBlock.parse(block)
        self._blocks.append(block)

    def add_raw_range(self, first: int, last: int) -> None:
        if last < first:
            raise ValueError("range end before start")
        self._ranges.append((first, last))

    def __contains__(self, address: int) -> bool:
        if any(first <= address <= last for first, last in self._ranges):
            return True
        return any(address in block for block in self._blocks)

    def __len__(self) -> int:
        return len(self._blocks) + len(self._ranges)

    @property
    def excluded_address_count(self) -> int:
        return sum(block.size for block in self._blocks) + sum(
            last - first + 1 for first, last in self._ranges
        )
