"""Executor backends: scheduling semantics and cross-backend determinism."""

import json

import pytest

from repro.core.study import Study, StudyConfig
from repro.deployments.population import PopulationBuilder, install_hosts
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.net import SimNetwork
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import (
    DEFAULT_ASYNC_CONCURRENCY,
    AsyncScanExecutor,
    GrabTask,
    ProbeBatchTask,
    ProcessScanExecutor,
    ScanExecutorError,
    SerialScanExecutor,
    ThreadScanExecutor,
    build_executor,
    resolve_executor,
)
from repro.util.simtime import SimClock, parse_utc

SEED = 20200830  # align with the committed key cache


def _echo_grab(task):
    return f"record-{task.address}:{task.port}"


def _no_expand(task, record):
    return []


class TestSchedulingSemantics:
    @pytest.mark.parametrize(
        "executor",
        [
            SerialScanExecutor(),
            ThreadScanExecutor(4),
            ProcessScanExecutor(2),
            AsyncScanExecutor(4),
        ],
        ids=["serial", "thread", "process", "async"],
    )
    def test_every_task_grabbed_once(self, executor):
        tasks = [GrabTask(n, 4840) for n in (3, 1, 2, 1, 3)]  # dupes collapse
        results = executor.run(tasks, _echo_grab, _no_expand)
        assert sorted(t.key for t, _ in results) == [(1, 4840), (2, 4840), (3, 4840)]
        assert all(r == f"record-{t.address}:{t.port}" for t, r in results)

    @pytest.mark.parametrize(
        "executor",
        [SerialScanExecutor(), ThreadScanExecutor(4), AsyncScanExecutor(4)],
        ids=["serial", "thread", "async"],
    )
    def test_expand_feeds_pipeline_transitively(self, executor):
        # 1 -> 2 -> 3: tasks discovered from results are grabbed too,
        # and re-discovering an in-flight key never double-grabs.
        def expand(task, record):
            if task.address < 3:
                return [GrabTask(task.address + 1, 4840), GrabTask(1, 4840)]
            return []

        results = executor.run([GrabTask(1, 4840)], _echo_grab, expand)
        assert sorted(t.address for t, _ in results) == [1, 2, 3]

    @pytest.mark.parametrize(
        "executor",
        [ThreadScanExecutor(2), AsyncScanExecutor(2)],
        ids=["thread", "async"],
    )
    def test_worker_errors_surface(self, executor):
        def failing_grab(task):
            raise ValueError("boom")

        with pytest.raises(ScanExecutorError) as info:
            executor.run([GrabTask(1, 4840)], failing_grab, _no_expand)
        assert isinstance(info.value.cause, ValueError)

    def test_async_awaits_coroutine_grabs(self):
        """A grab returning an awaitable is awaited on the loop — the
        contract a real latency-bound (non-simulated) grabber uses."""

        async def async_grab(task):
            import asyncio

            await asyncio.sleep(0)
            return f"record-{task.address}:{task.port}"

        results = AsyncScanExecutor(4).run(
            [GrabTask(n, 4840) for n in (1, 2, 3)],
            async_grab,
            _no_expand,
        )
        assert sorted(r for _, r in results) == [
            "record-1:4840",
            "record-2:4840",
            "record-3:4840",
        ]

    def test_build_executor(self):
        assert build_executor("serial").name == "serial"
        assert build_executor("thread", 4).workers == 4
        assert build_executor("process", 2).name == "process"
        assert build_executor("async", 4).name == "async"
        # One worker never justifies pool overhead.
        assert build_executor("thread", 1).name == "serial"
        assert build_executor("async", 1).name == "serial"
        with pytest.raises(ValueError):
            build_executor("quantum")
        with pytest.raises(ValueError):
            build_executor("thread", 0)

    def test_resolve_executor_defaults(self):
        import os

        cpus = os.cpu_count() or 1
        assert resolve_executor(None, None) == ("serial", 1)
        # Asking for workers alone picks the backend that scales.
        assert resolve_executor(None, 8) == ("process", 8)
        # Picking a pooled backend alone gets real parallelism.
        assert resolve_executor("process", None) == ("process", cpus)
        assert resolve_executor("thread", None) == ("thread", cpus)
        assert resolve_executor("serial", None) == ("serial", 1)
        assert resolve_executor("thread", 2) == ("thread", 2)
        # The event loop's default is in-flight connections, not cores.
        assert resolve_executor("async", None) == (
            "async",
            DEFAULT_ASYNC_CONCURRENCY,
        )
        assert resolve_executor("async", 16) == ("async", 16)
        with pytest.raises(ValueError):
            resolve_executor("quantum", None)
        with pytest.raises(ValueError):
            resolve_executor(None, 0)


class TestSweepStaging:
    """Stage-0 probe batches + deferred stage-2 registration."""

    @pytest.mark.parametrize(
        "executor",
        [
            SerialScanExecutor(),
            ThreadScanExecutor(4),
            AsyncScanExecutor(4),
        ],
        ids=["serial", "thread", "async"],
    )
    def test_probe_batches_expand_into_grabs(self, executor):
        batches = [
            ProbeBatchTask(0, 4840, (1, 2)),
            ProbeBatchTask(1, 4840, (3,)),
        ]

        def perform(task):
            if isinstance(task, ProbeBatchTask):
                return list(task.addresses)  # every address is "open"
            return _echo_grab(task)

        def expand(task, record):
            if isinstance(task, ProbeBatchTask):
                return [GrabTask(address, task.port) for address in record]
            return []

        results = executor.run(batches, perform, expand)
        grabs = sorted(
            t.address for t, _ in results if isinstance(t, GrabTask)
        )
        probes = [t for t, _ in results if isinstance(t, ProbeBatchTask)]
        assert grabs == [1, 2, 3]
        assert len(probes) == 2

    @pytest.mark.parametrize(
        "executor",
        [ThreadScanExecutor(4), AsyncScanExecutor(4)],
        ids=["thread", "async"],
    )
    def test_via_reference_never_steals_first_wave_keys(self, executor):
        """A fast follow-reference discovery must not claim an address
        a still-running probe batch is about to report as first-wave.

        Batch 1 is forced slow; meanwhile the grab of address 1 (from
        fast batch 0) discovers address 3 via reference.  Address 3 is
        also open in slow batch 1 — the executor must hold the
        via-reference task back and classify 3 as first-wave, exactly
        as the serial reference does.
        """
        import time

        batches = [
            ProbeBatchTask(0, 4840, (1,)),
            ProbeBatchTask(1, 4840, (3,)),
        ]

        def perform(task):
            if isinstance(task, ProbeBatchTask):
                if task.index == 1:
                    time.sleep(0.25)
                return list(task.addresses)
            return _echo_grab(task)

        def expand(task, record):
            if isinstance(task, ProbeBatchTask):
                return [GrabTask(address, task.port) for address in record]
            if task.address == 1 and not task.via_reference:
                return [GrabTask(3, 4840, via_reference=True)]
            return []

        results = executor.run(batches, perform, expand)
        classified = {
            t.address: t.via_reference
            for t, _ in results
            if isinstance(t, GrabTask)
        }
        assert classified == {1: False, 3: False}


def _mini_sweep(executor_name, workers):
    """One follow-references sweep over a reduced population."""
    spec = build_default_spec()
    mini = PopulationSpec(rows=spec.rows[:7])
    builder = PopulationBuilder(mini, seed=SEED)
    hosts = builder.build_hosts()
    network = SimNetwork(SimClock(parse_utc("2020-08-30")))
    install_hosts(network, hosts)
    study = Study(StudyConfig(seed=SEED))
    campaign = ScanCampaign(
        network,
        study.scanner_identity(),
        study._rng.substream("mini"),
        executor=build_executor(executor_name, workers),
    )
    return campaign.run_sweep(label="2020-08-30", follow_references=True)


def _canonical(snapshot) -> str:
    payload = {
        "date": snapshot.date,
        "probed": snapshot.probed,
        "port_open": snapshot.port_open,
        "excluded": snapshot.excluded,
        "records": [r.to_json_dict() for r in snapshot.records],
    }
    return json.dumps(payload, sort_keys=True)


@pytest.mark.slow
class TestBackendDeterminism:
    """Serial is the reference; every backend must match it byte-for-byte."""

    def test_thread_pool_matches_serial(self):
        assert _canonical(_mini_sweep("thread", 4)) == _canonical(
            _mini_sweep("serial", 1)
        )

    def test_process_pool_matches_serial(self):
        assert _canonical(_mini_sweep("process", 4)) == _canonical(
            _mini_sweep("serial", 1)
        )

    def test_async_loop_matches_serial(self):
        assert _canonical(_mini_sweep("async", 8)) == _canonical(
            _mini_sweep("serial", 1)
        )


class TestChunkedSubmission:
    """The process backend's chunked IPC keeps per-task semantics."""

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            ProcessScanExecutor(2, chunk_size=0)
        assert ProcessScanExecutor(2).chunk_size >= 1
        assert ProcessScanExecutor(2, chunk_size=3).chunk_size == 3

    @pytest.mark.parametrize("chunk_size", [1, 2, 64])
    def test_chunk_sizes_produce_identical_results(self, chunk_size):
        """chunk_size only changes IPC granularity, never the results
        — including a chunk larger than the whole task stream, which
        exercises the flush-before-blocking-get path."""
        tasks = [GrabTask(n, 4840) for n in range(1, 8)]
        executor = ProcessScanExecutor(2, chunk_size=chunk_size)
        results = executor.run(tasks, _echo_grab, _no_expand)
        assert sorted((t.key, r) for t, r in results) == [
            ((n, 4840), f"record-{n}:4840") for n in range(1, 8)
        ]

    def test_chunk_worker_isolates_per_task_errors(self, monkeypatch):
        """A failing task inside a chunk yields its own error triple
        without poisoning the chunk's other tasks."""
        from repro.scanner import executor as executor_module

        def grab(task):
            if task.address == 2:
                raise ValueError("boom")
            return _echo_grab(task)

        monkeypatch.setattr(executor_module, "_PROCESS_GRAB", grab)
        chunk = tuple(GrabTask(n, 4840) for n in (1, 2, 3))
        triples = executor_module._process_chunk_worker(chunk)
        assert [t.address for t, _, _ in triples] == [1, 2, 3]
        ok = {t.address: r for t, r, e in triples if e is None}
        assert ok == {1: "record-1:4840", 3: "record-3:4840"}
        (failed,) = [t for t, _, e in triples if e is not None]
        assert failed.address == 2

    def test_buffered_tasks_ship_on_flush(self):
        """_ChunkedSubmit holds a partial chunk until flush(), and the
        relay unpacks the chunk into one queue put per task."""
        import queue

        from repro.scanner.executor import _ChunkedSubmit

        submitted = []

        class _FakeFuture:
            def __init__(self, value):
                self._value = value

            def result(self):
                return self._value

            def add_done_callback(self, callback):
                callback(self)

        class _FakePool:
            def submit(self, fn, chunk):
                submitted.append(chunk)
                return _FakeFuture([(task, f"r{task.address}", None) for task in chunk])

        results_q = queue.Queue()
        submit = _ChunkedSubmit(_FakePool(), results_q, chunk_size=3)
        submit(GrabTask(1, 4840))
        submit(GrabTask(2, 4840))
        assert submitted == []  # partial chunk: buffered, not shipped
        submit(GrabTask(3, 4840))
        assert len(submitted) == 1  # full chunk shipped immediately
        submit(GrabTask(4, 4840))
        submit.flush()
        assert len(submitted) == 2  # remainder shipped by flush
        submit.flush()
        assert len(submitted) == 2  # empty flush is a no-op
        drained = [results_q.get_nowait() for _ in range(4)]
        assert [t.address for t, _, _ in drained] == [1, 2, 3, 4]
        assert all(e is None for _, _, e in drained)

    def test_probe_batches_run_inline_not_in_pool(self, monkeypatch):
        """Stage-0 tasks never cross the IPC boundary: they execute
        inline at submit time and land in inline_results, while grabs
        still buffer toward the pool."""
        import queue

        from repro.scanner import executor as executor_module
        from repro.scanner.executor import _ChunkedSubmit

        def grab(task):
            if isinstance(task, ProbeBatchTask):
                return ("probed", task.index)
            return _echo_grab(task)

        monkeypatch.setattr(executor_module, "_PROCESS_GRAB", grab)

        class _RefusingPool:
            def submit(self, fn, chunk):  # pragma: no cover - the bug
                raise AssertionError("probe batch reached the pool")

        submit = _ChunkedSubmit(_RefusingPool(), queue.Queue(), chunk_size=8)
        submit(ProbeBatchTask(0, 4840, (1, 2)))
        submit(GrabTask(1, 4840))  # buffered, chunk not full: no submit
        submit(ProbeBatchTask(1, 4840, (3,)))
        assert [
            (t.key, r) for t, r, e in submit.inline_results if e is None
        ] == [
            (("probe", 4840, 0), ("probed", 0)),
            (("probe", 4840, 1), ("probed", 1)),
        ]

    def test_probe_expansion_pipeline_on_process_backend(self):
        """End-to-end: probe batches expand into grabs on the process
        backend and the results match the serial reference."""
        batches = [
            ProbeBatchTask(0, 4840, (1, 2)),
            ProbeBatchTask(1, 4840, (3,)),
        ]

        def perform(task):
            if isinstance(task, ProbeBatchTask):
                return list(task.addresses)
            return _echo_grab(task)

        def expand(task, record):
            if isinstance(task, ProbeBatchTask):
                return [GrabTask(address, task.port) for address in record]
            return []

        serial = SerialScanExecutor().run(batches, perform, expand)
        pooled = ProcessScanExecutor(2, chunk_size=2).run(
            batches, perform, expand
        )
        assert sorted(((t.key, r) for t, r in pooled), key=repr) == sorted(
            ((t.key, r) for t, r in serial), key=repr
        )

    def test_worker_error_surfaces_from_chunk(self):
        def failing_grab(task):
            if task.address == 2:
                raise ValueError("boom")
            return _echo_grab(task)

        executor = ProcessScanExecutor(2, chunk_size=2)
        with pytest.raises(ScanExecutorError) as info:
            executor.run(
                [GrabTask(n, 4840) for n in (1, 2, 3)],
                failing_grab,
                _no_expand,
            )
        assert info.value.task.key == (2, 4840)


class TestProfiledExecutor:
    """The --profile wrapper: counters on, results untouched."""

    @pytest.mark.parametrize(
        "inner",
        [SerialScanExecutor(), ThreadScanExecutor(2)],
        ids=["serial", "thread"],
    )
    def test_results_identical_and_stages_counted(self, inner):
        from repro.scanner.executor import ProfiledScanExecutor
        from repro.util.profiling import StageStats

        batches = [ProbeBatchTask(0, 4840, (1, 2))]

        def perform(task):
            if isinstance(task, ProbeBatchTask):
                return list(task.addresses)
            return _echo_grab(task)

        def expand(task, record):
            if isinstance(task, ProbeBatchTask):
                return [GrabTask(address, task.port) for address in record]
            return []

        plain = inner.run(batches, perform, expand)
        stats = StageStats()
        profiled = ProfiledScanExecutor(inner, stats).run(
            batches, perform, expand
        )
        assert sorted((t.key for t, _ in profiled), key=repr) == sorted(
            (t.key for t, _ in plain), key=repr
        )
        table = stats.as_dict()
        assert table["probe"]["tasks"] == 1
        assert table["grab"]["tasks"] == 2
        assert table["probe"]["seconds"] >= 0.0

    def test_wrapper_mirrors_backend_identity(self):
        from repro.scanner.executor import ProfiledScanExecutor
        from repro.util.profiling import StageStats

        wrapped = ProfiledScanExecutor(ThreadScanExecutor(3), StageStats())
        assert wrapped.name == "thread"
        assert wrapped.workers == 3


class TestKeyboardInterrupt:
    """Ctrl-C mid-campaign must tear the pool down, not hang it.

    The checkpointed-shards workflow leans on this: an operator who
    interrupts a campaign expects the process to exit promptly with
    completed shards intact on disk, and ``--resume`` to pick up from
    there.  Each backend gets the same scenario: results flow until
    the coordinator's expand hook raises KeyboardInterrupt, and the
    run must re-raise it within seconds without leaking workers.
    """

    @pytest.mark.parametrize(
        "executor",
        [
            SerialScanExecutor(),
            ThreadScanExecutor(4),
            ProcessScanExecutor(2),
            AsyncScanExecutor(8),
        ],
        ids=["serial", "thread", "process", "async"],
    )
    def test_interrupt_reraises_promptly(self, executor):
        import multiprocessing
        import time

        tasks = [GrabTask(n, 4840) for n in range(1, 121)]
        seen = []

        def interrupting_expand(task, record):
            seen.append(task)
            if len(seen) >= 3:
                raise KeyboardInterrupt
            return []

        start = time.perf_counter()
        with pytest.raises(KeyboardInterrupt):
            executor.run(tasks, _echo_grab, interrupting_expand)
        elapsed = time.perf_counter() - start
        # Teardown must not wait for the whole task list to grab: the
        # budget is generous against CI noise, but a coordinator that
        # drains all 120 tasks through a real grabber would blow it.
        assert elapsed < 10.0
        assert len(seen) >= 3
        # No worker processes survive the interrupt.
        deadline = time.monotonic() + 5
        while multiprocessing.active_children():
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"leaked workers: {multiprocessing.active_children()}"
                )
            time.sleep(0.05)

    def test_interrupt_during_pooled_grab_does_not_hang(self):
        """KeyboardInterrupt while grabs are slow and in flight: the
        thread backend cancels unstarted futures and re-raises instead
        of blocking on the full pipeline."""
        import time

        def slow_grab(task):
            time.sleep(0.05)
            return _echo_grab(task)

        def interrupt_now(task, record):
            raise KeyboardInterrupt

        start = time.perf_counter()
        with pytest.raises(KeyboardInterrupt):
            ThreadScanExecutor(2).run(
                [GrabTask(n, 4840) for n in range(1, 61)],
                slow_grab,
                interrupt_now,
            )
        # 60 tasks x 50ms over 2 workers is ~1.5s if nothing is
        # cancelled; an interrupt after the first result must beat it.
        assert time.perf_counter() - start < 1.2
