"""Certificate builder for self-signed and CA-signed certificates."""

from __future__ import annotations

import random
from datetime import datetime, timedelta

from repro.crypto.pkcs1 import pkcs1v15_sign
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey
from repro.x509.certificate import (
    Certificate,
    assemble_certificate,
    build_tbs_certificate,
    parse_certificate,
)
from repro.x509.name import DistinguishedName


class CertificateBuilder:
    """Fluent builder mirroring the common openssl/cryptography flow.

    Example::

        cert = (
            CertificateBuilder()
            .subject(DistinguishedName.build(common_name="device-1"))
            .public_key(keys.public)
            .valid_from(start)
            .valid_for_days(365 * 5)
            .application_uri("urn:device-1")
            .self_sign(keys.private, hash_name="sha256", rng=rng)
        )
    """

    def __init__(self):
        self._subject: DistinguishedName | None = None
        self._issuer: DistinguishedName | None = None
        self._public_key = None
        self._not_before: datetime | None = None
        self._not_after: datetime | None = None
        self._application_uri: str | None = None
        self._serial: int | None = None
        self._is_ca = False

    def subject(self, name: DistinguishedName) -> "CertificateBuilder":
        self._subject = name
        return self

    def issuer(self, name: DistinguishedName) -> "CertificateBuilder":
        self._issuer = name
        return self

    def public_key(self, key) -> "CertificateBuilder":
        self._public_key = key
        return self

    def valid_from(self, moment: datetime) -> "CertificateBuilder":
        self._not_before = moment
        return self

    def valid_until(self, moment: datetime) -> "CertificateBuilder":
        self._not_after = moment
        return self

    def valid_for_days(self, days: int) -> "CertificateBuilder":
        if self._not_before is None:
            raise ValueError("set valid_from before valid_for_days")
        self._not_after = self._not_before + timedelta(days=days)
        return self

    def application_uri(self, uri: str) -> "CertificateBuilder":
        self._application_uri = uri
        return self

    def serial_number(self, serial: int) -> "CertificateBuilder":
        self._serial = serial
        return self

    def ca(self, is_ca: bool = True) -> "CertificateBuilder":
        self._is_ca = is_ca
        return self

    # --- signing -------------------------------------------------------------

    def self_sign(
        self, private_key: RsaPrivateKey, hash_name: str, rng: random.Random
    ) -> Certificate:
        issuer = self._issuer or self._subject
        return self._sign(private_key, issuer, hash_name, rng)

    def sign_with_ca(
        self,
        ca_key: RsaPrivateKey,
        ca_subject: DistinguishedName,
        hash_name: str,
        rng: random.Random,
    ) -> Certificate:
        return self._sign(ca_key, ca_subject, hash_name, rng)

    def _sign(
        self,
        signing_key: RsaPrivateKey,
        issuer: DistinguishedName,
        hash_name: str,
        rng: random.Random,
    ) -> Certificate:
        if self._subject is None:
            raise ValueError("certificate requires a subject")
        if self._public_key is None:
            raise ValueError("certificate requires a public key")
        if self._not_before is None or self._not_after is None:
            raise ValueError("certificate requires a validity window")
        serial = self._serial if self._serial is not None else rng.getrandbits(63)
        tbs_der = build_tbs_certificate(
            serial_number=serial,
            hash_name=hash_name,
            issuer=issuer,
            subject=self._subject,
            not_before=self._not_before,
            not_after=self._not_after,
            public_key=self._public_key,
            application_uri=self._application_uri,
            is_ca=self._is_ca,
        )
        signature = pkcs1v15_sign(signing_key, hash_name, tbs_der)
        raw = assemble_certificate(tbs_der, hash_name, signature)
        return parse_certificate(raw)


def make_self_signed(
    keys: RsaKeyPair,
    common_name: str,
    application_uri: str,
    not_before: datetime,
    hash_name: str,
    rng: random.Random,
    organization: str | None = None,
    valid_days: int = 365 * 5,
) -> Certificate:
    """One-call helper used throughout the deployment generator."""
    subject = DistinguishedName.build(
        common_name=common_name, organization=organization
    )
    return (
        CertificateBuilder()
        .subject(subject)
        .public_key(keys.public)
        .valid_from(not_before)
        .valid_for_days(valid_days)
        .application_uri(application_uri)
        .self_sign(keys.private, hash_name=hash_name, rng=rng)
    )
