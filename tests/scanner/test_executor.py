"""Executor backends: scheduling semantics and cross-backend determinism."""

import json

import pytest

from repro.core.study import Study, StudyConfig
from repro.deployments.population import PopulationBuilder, install_hosts
from repro.deployments.spec import PopulationSpec, build_default_spec
from repro.netsim.net import SimNetwork
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import (
    GrabTask,
    ProcessScanExecutor,
    ScanExecutorError,
    SerialScanExecutor,
    ThreadScanExecutor,
    build_executor,
    resolve_executor,
)
from repro.util.simtime import SimClock, parse_utc

SEED = 20200830  # align with the committed key cache


def _echo_grab(task):
    return f"record-{task.address}:{task.port}"


def _no_expand(task, record):
    return []


class TestSchedulingSemantics:
    @pytest.mark.parametrize(
        "executor",
        [SerialScanExecutor(), ThreadScanExecutor(4), ProcessScanExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_every_task_grabbed_once(self, executor):
        tasks = [GrabTask(n, 4840) for n in (3, 1, 2, 1, 3)]  # dupes collapse
        results = executor.run(tasks, _echo_grab, _no_expand)
        assert sorted(t.key for t, _ in results) == [(1, 4840), (2, 4840), (3, 4840)]
        assert all(r == f"record-{t.address}:{t.port}" for t, r in results)

    @pytest.mark.parametrize(
        "executor",
        [SerialScanExecutor(), ThreadScanExecutor(4)],
        ids=["serial", "thread"],
    )
    def test_expand_feeds_pipeline_transitively(self, executor):
        # 1 -> 2 -> 3: tasks discovered from results are grabbed too,
        # and re-discovering an in-flight key never double-grabs.
        def expand(task, record):
            if task.address < 3:
                return [GrabTask(task.address + 1, 4840), GrabTask(1, 4840)]
            return []

        results = executor.run([GrabTask(1, 4840)], _echo_grab, expand)
        assert sorted(t.address for t, _ in results) == [1, 2, 3]

    def test_worker_errors_surface(self):
        def failing_grab(task):
            raise ValueError("boom")

        executor = ThreadScanExecutor(2)
        with pytest.raises(ScanExecutorError) as info:
            executor.run([GrabTask(1, 4840)], failing_grab, _no_expand)
        assert isinstance(info.value.cause, ValueError)

    def test_build_executor(self):
        assert build_executor("serial").name == "serial"
        assert build_executor("thread", 4).workers == 4
        assert build_executor("process", 2).name == "process"
        # One worker never justifies pool overhead.
        assert build_executor("thread", 1).name == "serial"
        with pytest.raises(ValueError):
            build_executor("quantum")
        with pytest.raises(ValueError):
            build_executor("thread", 0)

    def test_resolve_executor_defaults(self):
        import os

        cpus = os.cpu_count() or 1
        assert resolve_executor(None, None) == ("serial", 1)
        # Asking for workers alone picks the backend that scales.
        assert resolve_executor(None, 8) == ("process", 8)
        # Picking a pooled backend alone gets real parallelism.
        assert resolve_executor("process", None) == ("process", cpus)
        assert resolve_executor("thread", None) == ("thread", cpus)
        assert resolve_executor("serial", None) == ("serial", 1)
        assert resolve_executor("thread", 2) == ("thread", 2)
        with pytest.raises(ValueError):
            resolve_executor("quantum", None)
        with pytest.raises(ValueError):
            resolve_executor(None, 0)


def _mini_sweep(executor_name, workers):
    """One follow-references sweep over a reduced population."""
    spec = build_default_spec()
    mini = PopulationSpec(rows=spec.rows[:7])
    builder = PopulationBuilder(mini, seed=SEED)
    hosts = builder.build_hosts()
    network = SimNetwork(SimClock(parse_utc("2020-08-30")))
    install_hosts(network, hosts)
    study = Study(StudyConfig(seed=SEED))
    campaign = ScanCampaign(
        network,
        study.scanner_identity(),
        study._rng.substream("mini"),
        executor=build_executor(executor_name, workers),
    )
    return campaign.run_sweep(label="2020-08-30", follow_references=True)


def _canonical(snapshot) -> str:
    payload = {
        "date": snapshot.date,
        "probed": snapshot.probed,
        "port_open": snapshot.port_open,
        "excluded": snapshot.excluded,
        "records": [r.to_json_dict() for r in snapshot.records],
    }
    return json.dumps(payload, sort_keys=True)


@pytest.mark.slow
class TestBackendDeterminism:
    """Serial is the reference; every backend must match it byte-for-byte."""

    def test_thread_pool_matches_serial(self):
        assert _canonical(_mini_sweep("thread", 4)) == _canonical(
            _mini_sweep("serial", 1)
        )

    def test_process_pool_matches_serial(self):
        assert _canonical(_mini_sweep("process", 4)) == _canonical(
            _mini_sweep("serial", 1)
        )
