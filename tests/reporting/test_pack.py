"""Pack tests: bundle shape, manifest self-seal, tamper detection.

The pack's promise is the dataset-release one: a reader can verify a
published bundle byte-for-byte against its own sealed manifest, and
any post-seal edit — to an artifact or to the manifest itself — is
detected.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import StudyConfig
from repro.dataset.catalog import StudyCatalog
from repro.dataset.store import StudyStore
from repro.deployments.spec import PopulationSpec
from repro.reporting.pack import (
    MANIFEST_FILE,
    PackIntegrityError,
    verify_pack,
    write_pack,
)
from tests.analysis.test_diff import server, sweep


@pytest.fixture(scope="module")
def packed(tmp_path_factory):
    """One written bundle shared by the read-only assertions."""
    root = tmp_path_factory.mktemp("pack")
    store = StudyStore(root / "store")
    snapshots = [
        sweep("2020-07-06", [server(1), server(2)]),
        sweep("2020-08-30", [server(2, software="2.0"), server(3)]),
    ]
    key = store.save(StudyConfig(seed=5), PopulationSpec(), snapshots)
    out = root / "bundle"
    manifest = write_pack(StudyCatalog(store), key, out)
    return key, out, manifest


@pytest.fixture()
def tampered(packed, tmp_path):
    """A private, mutable copy of the bundle."""
    import shutil

    _, out, _ = packed
    copy = tmp_path / "bundle"
    shutil.copytree(out, copy)
    return copy


class TestWritePack:
    def test_bundle_holds_the_doi_kit(self, packed):
        _, out, manifest = packed
        names = {p.relative_to(out).as_posix() for p in out.rglob("*")
                 if p.is_file()}
        expected = {
            MANIFEST_FILE,
            "study.json",
            "analysis.json",
            "summary.txt",
            "environment.json",
            "reproduce.sh",
        }
        assert expected <= names
        assert any(name.startswith("tables/") for name in names)
        # Every file except the manifest itself is sealed.
        assert set(manifest["artifacts"]) == names - {MANIFEST_FILE}

    def test_manifest_records_study_and_analysis_digests(self, packed):
        key, out, manifest = packed
        assert manifest["study_key"] == key
        study = json.loads((out / "study.json").read_text())
        assert study["run"]["key"] == key
        assert manifest["study_digest"] == study["run"]["digest"]
        analysis = json.loads((out / "analysis.json").read_text())
        assert manifest["analysis_digest"] == analysis["digest"]

    def test_reproduce_script_is_executable_and_pinned(self, packed):
        key, out, manifest = packed
        script = out / "reproduce.sh"
        assert script.stat().st_mode & 0o111
        text = script.read_text()
        assert key in text
        assert manifest["study_digest"] in text
        assert "--seed 5" in text

    def test_reduced_population_skips_spec_experiments(self, packed):
        _, out, manifest = packed
        assert "ipv6" in manifest["skipped_experiments"]
        assert "not regenerable" in (out / "tables" / "ipv6.txt").read_text()


class TestVerifyPack:
    def test_fresh_bundle_verifies(self, packed):
        key, out, manifest = packed
        verified = verify_pack(out)
        assert verified["study_key"] == key
        assert verified["manifest_digest"] == manifest["manifest_digest"]

    def test_artifact_tamper_is_detected(self, tampered):
        (tampered / "analysis.json").write_text("{}")
        with pytest.raises(PackIntegrityError, match="sha256 mismatch"):
            verify_pack(tampered)

    def test_table_tamper_is_detected(self, tampered):
        path = tampered / "tables" / "table1.txt"
        path.write_text(path.read_text() + "x")
        with pytest.raises(PackIntegrityError, match="tables/table1.txt"):
            verify_pack(tampered)

    def test_manifest_edit_breaks_the_seal(self, tampered):
        path = tampered / MANIFEST_FILE
        manifest = json.loads(path.read_text())
        manifest["study_digest"] = "0" * 64
        path.write_text(json.dumps(manifest, indent=2))
        with pytest.raises(PackIntegrityError, match="seal mismatch"):
            verify_pack(tampered)

    def test_missing_artifact_is_detected(self, tampered):
        (tampered / "summary.txt").unlink()
        with pytest.raises(PackIntegrityError, match="missing"):
            verify_pack(tampered)

    def test_missing_manifest_is_an_error(self, tmp_path):
        with pytest.raises(PackIntegrityError, match="MANIFEST"):
            verify_pack(tmp_path)

    def test_unparseable_manifest_is_an_error(self, tampered):
        (tampered / MANIFEST_FILE).write_text("not json")
        with pytest.raises(PackIntegrityError, match="not valid JSON"):
            verify_pack(tampered)
