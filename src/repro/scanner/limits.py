"""Scan budgets and live-scan pacing (paper Appendix A.2).

The paper paced address-space traversal at 500 ms between requests and
capped each host at 60 minutes of scan time and 50 MB of outgoing
traffic.  :class:`TraversalBudget` tracks all three against the
(simulated or wall) clock and the socket's byte counters;
:class:`ScanRateLimiter` adds the campaign-level pacing a live scan
needs — a global connection rate plus a per-host revisit interval.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from datetime import datetime


@dataclass
class TraversalBudget:
    inter_request_delay_s: float = 0.5
    max_scan_seconds: float = 3600.0
    max_bytes: int = 50 * 1024 * 1024

    started_at: datetime | None = None
    requests_made: int = 0
    exhausted_reason: str | None = None

    def start(self, now: datetime) -> None:
        self.started_at = now
        self.requests_made = 0
        self.exhausted_reason = None

    def elapsed_seconds(self, now: datetime) -> float:
        if self.started_at is None:
            return 0.0
        return (now - self.started_at).total_seconds()

    def check(self, now: datetime, bytes_used: int) -> bool:
        """True while the budget allows another request."""
        if self.started_at is None:
            raise RuntimeError("budget not started")
        if self.elapsed_seconds(now) >= self.max_scan_seconds:
            self.exhausted_reason = "time"
            return False
        if bytes_used >= self.max_bytes:
            self.exhausted_reason = "traffic"
            return False
        return True

    def count_request(self) -> None:
        self.requests_made += 1


#: Live defaults: deliberately conservative — lab networks, not
#: Internet-scale sweeps.
DEFAULT_LIVE_RATE_PER_S = 10.0
DEFAULT_PER_HOST_INTERVAL_S = 1.0


class ScanRateLimiter:
    """Global + per-host connection pacing for live scans.

    ``acquire`` reserves the next free send slot under a lock, then
    sleeps outside it, so concurrent grab workers are paced without
    serializing their I/O.  Slots are handed out on a fixed grid
    (one per ``1/rate_per_s`` globally, one per
    ``per_host_interval_s`` per host) — the zmap model of a fixed
    send rate rather than a bursty token bucket.  Deterministic under
    test via injectable ``monotonic``/``sleep``.
    """

    def __init__(
        self,
        rate_per_s: float = DEFAULT_LIVE_RATE_PER_S,
        per_host_interval_s: float = DEFAULT_PER_HOST_INTERVAL_S,
        monotonic=time.monotonic,
        sleep=time.sleep,
    ):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        if per_host_interval_s < 0:
            raise ValueError("per_host_interval_s must be >= 0")
        self._global_interval = 1.0 / rate_per_s
        self._per_host_interval = per_host_interval_s
        self._monotonic = monotonic
        self._sleep = sleep
        self._lock = threading.Lock()
        self._next_free = 0.0
        self._next_by_host: dict = {}

    def acquire(self, host_key) -> float:
        """Block until both budgets allow a connection to ``host_key``.

        Returns the seconds waited (0.0 when a slot was free).
        """
        with self._lock:
            now = self._monotonic()
            slot = max(
                now,
                self._next_free,
                self._next_by_host.get(host_key, 0.0),
            )
            self._next_free = slot + self._global_interval
            self._next_by_host[host_key] = slot + self._per_host_interval
        wait = slot - now
        if wait > 0:
            self._sleep(wait)
        return max(wait, 0.0)
