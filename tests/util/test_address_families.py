from hypothesis import given, strategies as st
import pytest

from repro.util.ipaddr import (
    MAX_IPV4,
    MAX_IPV6,
    format_address,
    format_endpoint_host,
    format_ipv6,
    parse_ipv6,
)


class TestFormatAddress:
    def test_small_values_are_ipv4(self):
        assert format_address(0x0A000001) == "10.0.0.1"

    def test_large_values_are_ipv6(self):
        assert format_address(MAX_IPV4 + 1) == "::1:0:0"

    def test_boundary(self):
        assert format_address(MAX_IPV4) == "255.255.255.255"

    def test_endpoint_host_brackets_ipv6(self):
        value = parse_ipv6("2001:db8::7")
        assert format_endpoint_host(value) == "[2001:db8::7]"
        assert format_endpoint_host(0x0A000001) == "10.0.0.1"

    def test_endpoint_host_in_url(self):
        value = parse_ipv6("2001:db8::7")
        url = f"opc.tcp://{format_endpoint_host(value)}:4840/"
        assert url == "opc.tcp://[2001:db8::7]:4840/"


class TestIpv6Canonical:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"),
            ("0:0:0:0:0:0:0:0", "::"),
            ("fe80:0:0:0:1:0:0:1", "fe80::1:0:0:1"),
        ],
    )
    def test_compression(self, text, expected):
        assert format_ipv6(parse_ipv6(text)) == expected

    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_round_trip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value
