"""IPv6 extension analysis (paper future work, §6).

The paper: "It might be possible that various OPC UA devices are
connected via IPv6 only ... We do not anticipate that these devices
are configured more securely."  This analysis runs a hitlist-based
IPv6 measurement over the dual-stack population and compares the
deficiency rate of IPv6-reachable devices against the IPv4 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.deficits import analyze_deficits
from repro.scanner.records import HostRecord


@dataclass
class Ipv6Comparison:
    ipv4_servers: int
    ipv4_deficient_fraction: float
    ipv6_servers: int
    ipv6_deficient_fraction: float
    hitlist_size: int
    hitlist_hits: int

    @property
    def configured_more_securely(self) -> bool:
        """Is the IPv6 subset *meaningfully* more secure? (paper: no)"""
        return (
            self.ipv6_deficient_fraction
            < self.ipv4_deficient_fraction - 0.05
        )


def compare_address_families(
    ipv4_records: list[HostRecord],
    ipv6_records: list[HostRecord],
    hitlist_size: int,
) -> Ipv6Comparison:
    ipv4 = analyze_deficits(ipv4_records)
    ipv6 = analyze_deficits(ipv6_records)
    return Ipv6Comparison(
        ipv4_servers=ipv4.total_servers,
        ipv4_deficient_fraction=ipv4.deficient_fraction,
        ipv6_servers=ipv6.total_servers,
        ipv6_deficient_fraction=ipv6.deficient_fraction,
        hitlist_size=hitlist_size,
        hitlist_hits=len(ipv6_records),
    )
