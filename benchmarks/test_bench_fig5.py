"""Regenerates Figure 5 (certificate reuse) and the §5.3 shared-prime
check."""

from benchmarks.conftest import print_report
from repro.core.experiments import run_experiment


def test_bench_fig5_certificate_reuse(benchmark, study_result):
    report = benchmark(run_experiment, "fig5", study_result)
    print_report(report)
    assert report.exact_matches() == len(report.comparisons)
