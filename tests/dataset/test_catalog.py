"""StudyCatalog tests: registry, streaming folds, cross-backend diffs.

The catalog is the read-side API over the store, so the properties
pinned here are the ones `repro runs`/`repro diff` sell: listings are
deterministic, folds stream (peak memory bounded — asserted with
tracemalloc), and a diff's digest is byte-identical on every executor
backend.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.config import StudyConfig
from repro.dataset.catalog import StudyCatalog
from repro.dataset.store import StudyStore
from repro.deployments.spec import PopulationSpec
from repro.scanner.records import (
    EndpointRecord,
    HostRecord,
    MeasurementSnapshot,
)

_POLICY = "http://opcfoundation.org/UA/SecurityPolicy#Basic256Sha256"


def server(ip: int, date: str, software: str = "1.0") -> HostRecord:
    return HostRecord(
        ip=ip,
        port=4840,
        asn=1,
        timestamp=date,
        tcp_open=True,
        is_opcua=True,
        software_version=software,
        endpoints=[
            EndpointRecord(
                endpoint_url=None,
                security_mode=3,
                security_policy_uri=_POLICY,
            )
        ],
        # Bulk the record up so snapshot memory dwarfs the fold's
        # compact per-endpoint state (the memory-bound test relies on
        # a realistic record-to-state size ratio).
        namespaces=[f"urn:namespace:{ip}:{i}" for i in range(20)],
    )


def study(dates: list[str], ips: range) -> list[MeasurementSnapshot]:
    return [
        MeasurementSnapshot(
            date=date, records=[server(ip, date) for ip in ips]
        )
        for date in dates
    ]


def save(store: StudyStore, seed: int, snapshots) -> str:
    return store.save(StudyConfig(seed=seed), PopulationSpec(), snapshots)


@pytest.fixture()
def catalog(tmp_path):
    return StudyCatalog(StudyStore(tmp_path / "store"))


@pytest.fixture()
def two_studies(catalog):
    key_a = save(catalog.store, 1, study(["2020-07-06"], range(1, 40)))
    key_b = save(catalog.store, 2, study(["2020-08-30"], range(20, 60)))
    return key_a, key_b


class TestRegistry:
    def test_list_runs_in_sorted_key_order(self, catalog, two_studies):
        runs = catalog.list_runs()
        assert [r.key for r in runs] == sorted(two_studies)
        assert all(r.records == 39 or r.records == 40 for r in runs)
        assert all(r.merge is None for r in runs)

    def test_describe_exposes_meta_fields(self, catalog, two_studies):
        key_a, _ = two_studies
        info = catalog.describe(key_a)
        assert info.key == key_a
        assert info.seed == 1
        assert info.sweeps == 1
        assert info.sweep_dates == ("2020-07-06",)
        assert info.digest
        assert info.config["seed"] == 1
        assert info.merged_from_shards is None

    def test_describe_unknown_key_raises_keyerror(self, catalog):
        with pytest.raises(KeyError, match="no stored study"):
            catalog.describe("f" * 64)

    def test_registry_digest_tracks_content(self, catalog, two_studies):
        before = catalog.registry_digest()
        assert before == catalog.registry_digest()
        save(catalog.store, 3, study(["2020-08-30"], range(3)))
        assert catalog.registry_digest() != before

    def test_merge_provenance_is_surfaced(self, catalog, two_studies):
        key_a, _ = two_studies
        catalog.store.write_merge_manifest(
            key_a, {"shard_count": 4, "manifest_digest": "d" * 64}
        )
        info = catalog.describe(key_a)
        assert info.merged_from_shards == 4
        listed = {run.key: run for run in catalog.list_runs()}
        assert listed[key_a].merge is not None

    def test_empty_store_lists_nothing(self, catalog):
        assert catalog.list_runs() == []
        assert catalog.keys() == []


class TestSummarize:
    def test_fold_matches_full_materialization(self, catalog, two_studies):
        key_a, _ = two_studies
        folded = catalog.summarize(key_a)
        snapshots = list(catalog.iter_validated(key_a))
        assert folded.records_total == sum(
            len(s.records) for s in snapshots
        )
        assert folded.final_stats.servers == len(snapshots[-1].servers())
        assert set(folded.final_hosts) == {
            f"{r.ip}:{r.port}" for r in snapshots[-1].servers()
        }

    def test_streaming_fold_peak_memory_is_bounded(self, catalog):
        """The tentpole memory claim: the fold never holds the study.

        A 12-sweep study is written to the store; materializing it
        (``list(iter_validated)``) must allocate roughly 12 sweeps,
        while the streaming fold holds one sweep plus the compact
        state map.  Requiring the fold's tracemalloc peak to stay
        under half the materialized peak fails loudly if anyone
        "simplifies" summarize() into a list() call.
        """
        dates = [f"2020-07-{day:02d}" for day in range(1, 13)]
        key = save(catalog.store, 9, study(dates, range(1, 120)))

        tracemalloc.start()
        snapshots = list(catalog.iter_validated(key))
        _, materialized_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(snapshots) == 12
        del snapshots

        tracemalloc.start()
        folded = catalog.summarize(key)
        _, streaming_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert folded.records_total == 12 * 119

        assert streaming_peak < materialized_peak / 2, (
            f"streaming fold peaked at {streaming_peak} bytes, "
            f"materializing peaks at {materialized_peak} — the fold "
            "is no longer streaming"
        )


class TestDiffAcrossBackends:
    def test_diff_digest_is_byte_identical_on_every_backend(
        self, catalog, two_studies
    ):
        key_a, key_b = two_studies
        digests = {
            backend: catalog.diff(
                key_a, key_b, executor=backend, workers=2
            ).digest()
            for backend in ("serial", "thread", "process", "async")
        }
        assert len(set(digests.values())) == 1, digests

    def test_self_diff_is_empty_despite_task_dedup(
        self, catalog, two_studies
    ):
        # The executor dedups tasks by key, so diff(k, k) folds once;
        # the result must still be a well-formed empty diff.
        key_a, _ = two_studies
        d = catalog.diff(key_a, key_a)
        assert d.is_empty()
        assert d.label_a == d.label_b == key_a

    def test_diff_content_matches_inputs(self, catalog, two_studies):
        key_a, key_b = two_studies
        d = catalog.diff(key_a, key_b)
        # range(1, 40) -> range(20, 60): 1..19 vanish, 40..59 appear.
        assert [s.ip for s in d.disappeared] == list(range(1, 20))
        assert [s.ip for s in d.appeared] == list(range(40, 60))
        assert d.servers_a == 39 and d.servers_b == 40

    def test_diff_unknown_key_fails_before_fanout(
        self, catalog, two_studies
    ):
        key_a, _ = two_studies
        with pytest.raises(KeyError, match="no stored study"):
            catalog.diff(key_a, "0" * 64)


class TestResultFor:
    def test_reconstructs_config_and_snapshots(self, catalog, two_studies):
        key_a, _ = two_studies
        result = catalog.result_for(key_a)
        assert result.config.seed == 1
        assert len(result.snapshots) == 1
        # The tiny synthetic population is not the default spec, so no
        # spec is attached — and the environment cannot be rebuilt.
        assert result.spec is None
        with pytest.raises(ValueError, match="population spec"):
            result.timeline  # noqa: B018 — property access is the test
