"""Newline-delimited JSON dataset files.

Layout: one header line per snapshot (``{"snapshot": date, ...}``)
followed by one line per host record.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.scanner.records import HostRecord, MeasurementSnapshot


def write_snapshots(path: str | Path, snapshots: list[MeasurementSnapshot]) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for snapshot in snapshots:
            header = {
                "snapshot": snapshot.date,
                "probed": snapshot.probed,
                "port_open": snapshot.port_open,
                "excluded": snapshot.excluded,
                "records": len(snapshot.records),
            }
            handle.write(json.dumps(header) + "\n")
            for record in snapshot.records:
                handle.write(json.dumps(record.to_json_dict()) + "\n")


def read_snapshots(path: str | Path) -> list[MeasurementSnapshot]:
    snapshots: list[MeasurementSnapshot] = []
    current: MeasurementSnapshot | None = None
    remaining = 0
    with open(path) as handle:
        for line in handle:
            data = json.loads(line)
            if "snapshot" in data:
                current = MeasurementSnapshot(
                    date=data["snapshot"],
                    probed=data.get("probed", 0),
                    port_open=data.get("port_open", 0),
                    excluded=data.get("excluded", 0),
                )
                snapshots.append(current)
                remaining = data.get("records", 0)
            else:
                if current is None:
                    raise ValueError("record line before snapshot header")
                current.records.append(HostRecord.from_json_dict(data))
                remaining -= 1
    return snapshots
