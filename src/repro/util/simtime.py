"""Simulated wall-clock time.

The study spans eight dated measurements in 2020; all timestamps in the
simulation (certificate validity, scan timing, FILETIME fields in the
OPC UA encoding) derive from a :class:`SimClock` so runs are
reproducible and independent of the real clock.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

UTC_EPOCH_2020 = datetime(2020, 1, 1, tzinfo=timezone.utc)

# Offset between 1601-01-01 (Windows FILETIME epoch, used by OPC UA
# DateTime) and 1970-01-01 in 100-nanosecond ticks.
_FILETIME_UNIX_OFFSET = 116444736000000000


def parse_utc(text: str) -> datetime:
    """Parse ``YYYY-MM-DD`` or ``YYYY-MM-DDTHH:MM:SS[Z]`` as UTC."""
    for fmt in ("%Y-%m-%dT%H:%M:%S", "%Y-%m-%dT%H:%M:%SZ", "%Y-%m-%d"):
        try:
            return datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
        except ValueError:
            continue
    raise ValueError(f"unrecognized UTC timestamp: {text!r}")


def format_utc(moment: datetime) -> str:
    return moment.astimezone(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S")


def datetime_to_filetime(moment: datetime) -> int:
    """Convert an aware datetime to OPC UA DateTime (FILETIME ticks)."""
    unix_seconds = moment.timestamp()
    return int(round(unix_seconds * 10_000_000)) + _FILETIME_UNIX_OFFSET


def filetime_to_datetime(ticks: int) -> datetime:
    """Convert OPC UA DateTime ticks back to an aware datetime."""
    unix_ticks = ticks - _FILETIME_UNIX_OFFSET
    return datetime.fromtimestamp(unix_ticks / 10_000_000, tz=timezone.utc)


class SimClock:
    """A settable, monotonically advancing simulated clock."""

    def __init__(self, start: datetime = UTC_EPOCH_2020):
        if start.tzinfo is None:
            raise ValueError("SimClock requires an aware datetime")
        self._now = start

    def now(self) -> datetime:
        return self._now

    def advance(self, seconds: float) -> datetime:
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        self._now = self._now + timedelta(seconds=seconds)
        return self._now

    def set_to(self, moment: datetime) -> None:
        if moment.tzinfo is None:
            raise ValueError("SimClock requires an aware datetime")
        if moment < self._now:
            raise ValueError("clock cannot move backwards")
        self._now = moment
