"""Edge-case behaviour of the server engine."""

import pytest

from repro.client import ServiceFaultError
from repro.secure.policies import POLICY_BASIC256SHA256, POLICY_NONE
from repro.server import EndpointConfig
from repro.uabin.enums import MessageSecurityMode, UserTokenType
from repro.uabin.nodeid import NodeId
from repro.uabin.statuscodes import StatusCodes
from repro.util.rng import DeterministicRng

from tests.server.helpers import build_client, build_server, secure_open

DEMO_NS = 1


@pytest.fixture()
def erng():
    return DeterministicRng(555, "engine-edges")


class TestDiscoveryOnlyChannel:
    """Secure-only servers still answer GetEndpoints on a None channel
    but refuse sessions on it (OPC 10000-4 discovery rules)."""

    def make_secure_only_server(self, erng, rsa_2048):
        return build_server(
            erng,
            rsa_2048,
            endpoint_configs=[
                EndpointConfig(
                    MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC256SHA256
                )
            ],
            token_types=[UserTokenType.ANONYMOUS],
        )

    def test_get_endpoints_works(self, erng, rsa_2048, rsa_1024):
        server = self.make_secure_only_server(erng, rsa_2048)
        client = build_client(server, erng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()  # None policy, discovery-only
        endpoints = client.get_endpoints()
        assert len(endpoints) == 1
        assert endpoints[0].security_mode == MessageSecurityMode.SIGN_AND_ENCRYPT

    def test_create_session_rejected_on_discovery_channel(
        self, erng, rsa_2048, rsa_1024
    ):
        server = self.make_secure_only_server(erng, rsa_2048)
        client = build_client(server, erng.substream("c2"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        with pytest.raises(ServiceFaultError) as excinfo:
            client.create_session()
        assert excinfo.value.status == StatusCodes.BadSecurityModeInsufficient

    def test_session_works_on_proper_secure_channel(
        self, erng, rsa_2048, rsa_1024
    ):
        server = self.make_secure_only_server(erng, rsa_2048)
        client = build_client(server, erng.substream("c3"), rsa_1024)
        client.hello()
        secure_open(
            client,
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            server.config.certificate.raw_der,
        )
        client.create_session()
        response = client.activate_session()
        assert response.response_header.service_result.is_good


class TestPerEndpointTokenOverride:
    """The Table-2 host advertising anonymous only on secure endpoints."""

    def make_override_server(self, erng, rsa_2048):
        return build_server(
            erng,
            rsa_2048,
            endpoint_configs=[
                EndpointConfig(
                    MessageSecurityMode.NONE,
                    POLICY_NONE,
                    token_types=(UserTokenType.USERNAME,),
                ),
                EndpointConfig(
                    MessageSecurityMode.SIGN_AND_ENCRYPT, POLICY_BASIC256SHA256
                ),
            ],
            token_types=[UserTokenType.ANONYMOUS, UserTokenType.USERNAME],
        )

    def test_none_endpoint_does_not_advertise_anonymous(
        self, erng, rsa_2048, rsa_1024
    ):
        server = self.make_override_server(erng, rsa_2048)
        client = build_client(server, erng.substream("c"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        endpoints = client.get_endpoints()
        by_mode = {e.security_mode: e for e in endpoints}
        none_tokens = by_mode[MessageSecurityMode.NONE].token_types()
        secure_tokens = by_mode[
            MessageSecurityMode.SIGN_AND_ENCRYPT
        ].token_types()
        assert UserTokenType.ANONYMOUS not in none_tokens
        assert UserTokenType.ANONYMOUS in secure_tokens

    def test_anonymous_rejected_on_none_channel(self, erng, rsa_2048, rsa_1024):
        server = self.make_override_server(erng, rsa_2048)
        client = build_client(server, erng.substream("c2"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        client.create_session()
        with pytest.raises(ServiceFaultError) as excinfo:
            client.activate_session()
        assert excinfo.value.status == StatusCodes.BadIdentityTokenRejected

    def test_anonymous_accepted_on_secure_channel(self, erng, rsa_2048, rsa_1024):
        server = self.make_override_server(erng, rsa_2048)
        client = build_client(server, erng.substream("c3"), rsa_1024)
        client.hello()
        secure_open(
            client,
            POLICY_BASIC256SHA256,
            MessageSecurityMode.SIGN_AND_ENCRYPT,
            server.config.certificate.raw_der,
        )
        client.create_session()
        response = client.activate_session()
        assert response.response_header.service_result.is_good


class TestWriteService:
    @pytest.fixture()
    def active_client(self, erng, rsa_2048, rsa_1024):
        server = build_server(erng, rsa_2048)
        client = build_client(server, erng.substream("w"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        client.create_session()
        client.activate_session()
        return client

    def _write(self, client, node_id, value):
        from repro.uabin.types_attribute import WriteRequest, WriteValue
        from repro.uabin.variant import DataValue, Variant, VariantType

        request = WriteRequest(
            request_header=client._request_header(),
            nodes_to_write=[
                WriteValue(
                    node_id=node_id,
                    value=DataValue(
                        value=Variant(value, VariantType.DOUBLE)
                    ),
                )
            ],
        )
        return client._invoke(request).results[0]

    def test_anonymous_write_to_open_node(self, active_client):
        status = self._write(
            active_client, NodeId(DEMO_NS, "Plant/rSetFillLevel"), 55.0
        )
        assert status.is_good
        values = active_client.read_values(
            [NodeId(DEMO_NS, "Plant/rSetFillLevel")]
        )
        assert values[0].value.value == 55.0

    def test_anonymous_write_denied_on_readonly_node(self, active_client):
        status = self._write(
            active_client, NodeId(DEMO_NS, "Plant/m3InflowPerHour"), 1.0
        )
        assert status == StatusCodes.BadUserAccessDenied

    def test_write_unknown_node(self, active_client):
        status = self._write(active_client, NodeId(9, 12345), 1.0)
        assert status == StatusCodes.BadNodeIdUnknown


class TestBrowseNext:
    def test_continuation_points_invalid(self, erng, rsa_2048, rsa_1024):
        from repro.uabin.types_view import BrowseNextRequest

        server = build_server(erng, rsa_2048)
        client = build_client(server, erng.substream("bn"), rsa_1024)
        client.hello()
        client.open_secure_channel()
        client.create_session()
        client.activate_session()
        request = BrowseNextRequest(
            request_header=client._request_header(),
            continuation_points=[b"stale"],
        )
        response = client._invoke(request)
        assert response.results[0].status_code.is_bad


class TestMalformedTraffic:
    def test_garbage_bytes_get_error_frame(self, erng, rsa_2048):
        server = build_server(erng, rsa_2048)
        connection = server.new_connection()
        out = connection.receive(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        assert out.startswith(b"ERR") or connection.closed

    def test_opn_before_hello_rejected(self, erng, rsa_2048):
        server = build_server(erng, rsa_2048)
        connection = server.new_connection()
        from repro.transport.connection import encode_frame
        from repro.transport.messages import MessageType

        out = connection.receive(encode_frame(MessageType.OPEN_CHANNEL, "F", b"x" * 20))
        assert out.startswith(b"ERR")
        assert connection.closed

    def test_msg_without_channel_rejected(self, erng, rsa_2048):
        from repro.transport.connection import encode_frame
        from repro.transport.messages import (
            HelloMessage,
            MessageType,
        )

        server = build_server(erng, rsa_2048)
        connection = server.new_connection()
        connection.receive(
            encode_frame(
                MessageType.HELLO, "F", HelloMessage().encode_body()
            )
        )
        out = connection.receive(
            encode_frame(MessageType.MESSAGE, "F", b"\x00" * 16)
        )
        assert out.startswith(b"ERR")
