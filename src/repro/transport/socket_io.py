"""Live socket transport: asyncio streams behind a blocking facade.

The protocol stack above this module is synchronous and stream-shaped:
:class:`~repro.client.client.UaClient` writes request bytes and reads
whatever the peer produced, and
:class:`~repro.transport.connection.FrameReader` reassembles frames
from arbitrary byte slices.  This module supplies the missing lane —
bytes that move over a real TCP connection instead of the simulator —
without the stack noticing the difference:

* :class:`Transport` names the seam: the duplex-stream surface both
  the simulated :class:`~repro.netsim.net.SimSocket` and the live
  transports satisfy.  Everything above it records *what the scanner
  saw*; everything below decides *how bytes move*.
* :class:`AsyncSocketTransport` is the live implementation proper:
  asyncio streams with per-operation timeouts and an optional
  per-connection deadline.
* :class:`BlockingSocketTransport` is the blocking wrapper that lets
  the synchronous client drive an asyncio connection from any worker
  thread.  All live connections multiplex on one process-wide I/O
  event loop (:func:`shared_io_loop`); the scan executor only decides
  how many grabs are in flight.
* :class:`WallClock` gives the live lane the simulator's clock
  interface: ``now`` reads real UTC and ``advance`` sleeps, so the
  traversal's inter-request pacing becomes real pacing on the wire.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import suppress
from datetime import datetime, timezone
from typing import Protocol, runtime_checkable

from repro.transport.messages import TransportError, TransportTimeout

#: Timeout for establishing a TCP connection.
DEFAULT_CONNECT_TIMEOUT_S = 5.0
#: Timeout for one read (one response, or one slice of one).
DEFAULT_READ_TIMEOUT_S = 5.0
#: Hard ceiling on one connection's total lifetime; every read and
#: write is clipped against it, so a drip-feeding peer cannot pin a
#: grab slot forever.
DEFAULT_CONNECTION_DEADLINE_S = 60.0

_READ_CHUNK = 65536
#: Extra seconds a blocking caller waits beyond the transport's own
#: timeout before declaring the I/O loop unresponsive.
_RESULT_SLACK_S = 10.0


@runtime_checkable
class Transport(Protocol):
    """The duplex byte-stream surface the protocol stack drives.

    ``write`` sends request bytes; ``read`` returns whatever the peer
    has produced (possibly a partial frame — the
    :class:`~repro.transport.connection.FrameReader` reassembles), and
    returns ``b""`` only when the peer closed the connection.  The
    byte counters feed the scan budget and the per-host record.

    Three lanes satisfy it: the simulator
    (:class:`~repro.netsim.net.SimSocket`), live sockets
    (:class:`BlockingSocketTransport`), and recorded traffic
    (:class:`~repro.transport.replay.ReplayTransport`).  The protocol
    is runtime-checkable, so a structural match is enough::

        >>> class Minimal:
        ...     bytes_sent = bytes_received = 0
        ...     def write(self, data): pass
        ...     def read(self): return b""
        ...     def close(self): pass
        >>> isinstance(Minimal(), Transport)
        True
        >>> isinstance(object(), Transport)
        False
    """

    bytes_sent: int
    bytes_received: int

    def write(self, data: bytes) -> None: ...

    def read(self) -> bytes: ...

    def close(self) -> None: ...


class WallClock:
    """Real time behind the :class:`~repro.util.simtime.SimClock`
    interface: ``now`` reads UTC, ``advance`` sleeps.

    Handing this to the grabber turns the traversal's simulated
    inter-request delay into actual pacing on a live connection, and
    makes the per-host time budget measure real elapsed time.
    """

    def __init__(self, sleep=time.sleep):
        self._sleep = sleep

    def now(self) -> datetime:
        return datetime.now(timezone.utc)

    def advance(self, seconds: float) -> datetime:
        if seconds < 0:
            raise ValueError("clock cannot move backwards")
        if seconds:
            self._sleep(seconds)
        return self.now()


class AsyncSocketTransport:
    """One live TCP connection on asyncio streams.

    Every operation enforces the per-operation timeout *and* the
    per-connection deadline set at :meth:`open` time; both surface as
    :class:`~repro.transport.messages.TransportTimeout`, which the
    scanner records as a ``timeout`` rather than mislabelling the host
    as "not OPC UA".
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        deadline: float | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self.read_timeout_s = read_timeout_s
        self._deadline = deadline
        self.bytes_sent = 0
        self.bytes_received = 0
        self.closed = False

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        connection_deadline_s: float | None = DEFAULT_CONNECTION_DEADLINE_S,
    ) -> "AsyncSocketTransport":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout_s
            )
        except asyncio.TimeoutError:
            raise TransportTimeout(
                f"connect to {host}:{port} timed out "
                f"after {connect_timeout_s:g}s"
            ) from None
        deadline = (
            time.monotonic() + connection_deadline_s
            if connection_deadline_s is not None
            else None
        )
        return cls(reader, writer, read_timeout_s, deadline)

    def _op_timeout(self) -> float:
        timeout = self.read_timeout_s
        if self._deadline is not None:
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout("connection deadline exhausted")
            timeout = min(timeout, remaining)
        return timeout

    async def write(self, data: bytes) -> None:
        if self.closed:
            raise TransportError("transport is closed")
        timeout = self._op_timeout()
        self._writer.write(data)
        self.bytes_sent += len(data)
        try:
            await asyncio.wait_for(self._writer.drain(), timeout)
        except asyncio.TimeoutError:
            raise TransportTimeout(
                f"write stalled for {timeout:g}s"
            ) from None

    async def read(self) -> bytes:
        if self.closed:
            return b""
        timeout = self._op_timeout()
        try:
            data = await asyncio.wait_for(
                self._reader.read(_READ_CHUNK), timeout
            )
        except asyncio.TimeoutError:
            raise TransportTimeout(
                f"no data within {timeout:g}s"
            ) from None
        self.bytes_received += len(data)
        return data

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._writer.close()
        with suppress(OSError, asyncio.TimeoutError):
            await asyncio.wait_for(self._writer.wait_closed(), 5)


class BlockingSocketTransport:
    """Blocking :class:`Transport` facade over an asyncio connection.

    Each call schedules the corresponding coroutine on the I/O loop
    and blocks the calling thread on its result, so the synchronous
    stack (``UaClient``, grabber, traversal) drives a real socket
    without knowing about asyncio.  Must never be called from the I/O
    loop's own thread — that would deadlock the loop on itself.
    """

    def __init__(
        self, inner: AsyncSocketTransport, loop: asyncio.AbstractEventLoop
    ):
        self._inner = inner
        self._loop = loop

    @property
    def bytes_sent(self) -> int:
        return self._inner.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._inner.bytes_received

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def _call(self, coro, budget_s: float):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(budget_s + _RESULT_SLACK_S)
        except FutureTimeoutError:
            future.cancel()
            raise TransportTimeout(
                "I/O loop unresponsive for "
                f"{budget_s + _RESULT_SLACK_S:g}s"
            ) from None

    def write(self, data: bytes) -> None:
        self._call(self._inner.write(data), self._inner.read_timeout_s)

    def read(self) -> bytes:
        return self._call(self._inner.read(), self._inner.read_timeout_s)

    def close(self) -> None:
        with suppress(TransportError, OSError):
            self._call(self._inner.close(), 5)


_IO_LOOP: asyncio.AbstractEventLoop | None = None
_IO_LOOP_LOCK = threading.Lock()


def shared_io_loop() -> asyncio.AbstractEventLoop:
    """The process-wide I/O event loop (daemon thread, lazily started).

    All live connections multiplex here regardless of which scan
    executor drives the campaign: the executor bounds how many grabs
    are in flight, while this loop services their socket I/O.  The
    loopback server host reuses it too, so tests exercise a genuine
    client/server byte exchange on one loop.
    """
    global _IO_LOOP
    with _IO_LOOP_LOCK:
        if _IO_LOOP is None or _IO_LOOP.is_closed():
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="repro-io-loop", daemon=True
            )
            thread.start()
            _IO_LOOP = loop
    return _IO_LOOP


def connect_blocking(
    host: str,
    port: int,
    connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
    connection_deadline_s: float | None = DEFAULT_CONNECTION_DEADLINE_S,
    loop: asyncio.AbstractEventLoop | None = None,
) -> BlockingSocketTransport:
    """Open a live connection and wrap it for synchronous callers.

    Raises :class:`TransportTimeout` when the connect deadline
    expires, and propagates ``OSError`` (refusal, unreachable network)
    for the caller to map into its own failure taxonomy.
    """
    loop = loop or shared_io_loop()
    future = asyncio.run_coroutine_threadsafe(
        AsyncSocketTransport.open(
            host,
            port,
            connect_timeout_s=connect_timeout_s,
            read_timeout_s=read_timeout_s,
            connection_deadline_s=connection_deadline_s,
        ),
        loop,
    )
    try:
        inner = future.result(connect_timeout_s + _RESULT_SLACK_S)
    except FutureTimeoutError:
        future.cancel()
        raise TransportTimeout(
            f"connect to {host}:{port} timed out"
        ) from None
    return BlockingSocketTransport(inner, loop)
