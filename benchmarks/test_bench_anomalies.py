"""Hostile-population benchmark: grab throughput through the device zoo.

Times the full eight-sweep hostile golden study once per executor
backend.  Every grab in this population hits a pathology — stalled
writers, mid-handshake drops, transport rejections, junk banners —
so this is the worst-case complement of ``test_bench_sweep.py``'s
well-behaved population: it guards the *failure* paths (error
classification, stall deadlines, early aborts) against throughput
regressions, and re-asserts cross-backend byte-identity while doing
so.  Also times the ``anomalies`` analysis over the resulting
snapshots.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.anomalies import analyze_anomalies
from repro.core.golden import (
    run_tiny_hostile_study,
    study_digest,
    tiny_hostile_spec,
)

BACKENDS = (("serial", 1), ("thread", 4), ("process", 4), ("async", 8))
METRICS_PATH = Path(__file__).resolve().parent / ".sweep_metrics.json"


def _update_metrics(section: str, data: dict) -> None:
    """Merge one section into the shared side file (report.py input).

    Same merge protocol as ``test_bench_sweep.py``: keep whatever
    other benchmarks wrote, replace only this section.
    """
    merged = {}
    if METRICS_PATH.exists():
        try:
            merged = json.loads(METRICS_PATH.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged["cpu_count"] = os.cpu_count()
    merged[section] = data
    METRICS_PATH.write_text(json.dumps(merged, indent=2))


def test_bench_hostile_grab_throughput():
    metrics = {}
    reference_digest = None
    serial_seconds = None
    serial_result = None

    for name, workers in BACKENDS:
        start = time.perf_counter()
        result = run_tiny_hostile_study(name, workers)
        elapsed = time.perf_counter() - start
        digest = study_digest(result)
        if reference_digest is None:
            reference_digest = digest
            serial_seconds = elapsed
            serial_result = result
        else:
            assert digest == reference_digest, (
                f"{name} backend diverged on the hostile population"
            )
        grabs = sum(len(s.records) for s in result.snapshots)
        metrics[f"{name}x{workers}"] = {
            "seconds": round(elapsed, 3),
            "hosts": grabs,
            "hosts_per_second": round(grabs / elapsed, 1),
            "speedup_vs_serial": round(serial_seconds / elapsed, 2),
        }
        print(
            f"[hostile] {name}x{workers}: {grabs} grabs in {elapsed:.2f}s "
            f"({grabs / elapsed:.0f} hosts/s, "
            f"{serial_seconds / elapsed:.2f}x serial)"
        )

    _update_metrics("hostile", metrics)

    # The analysis itself is cheap; assert it stays that way and that
    # its ground truth holds on the bench run too.
    start = time.perf_counter()
    stats = analyze_anomalies(serial_result.snapshots, tiny_hostile_spec())
    analysis_seconds = time.perf_counter() - start
    print(f"[hostile] anomalies analysis: {analysis_seconds * 1000:.1f}ms")
    assert stats.spec_personalities == tiny_hostile_spec().personality_counts()
    assert stats.stalled_hosts == stats.spec_personalities["slow-loris"]
