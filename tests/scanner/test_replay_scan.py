"""Live capture → replay round trip over real loopback sockets.

The replay lane's central guarantee, asserted end-to-end: a live grab
recorded to a corpus and replayed through
:class:`~repro.transport.replay.ReplayTransport` yields a
byte-identical grab record — same endpoints, same certificate, same
timing fields, same error taxonomy — with zero packets sent.
"""

from __future__ import annotations

import pytest

from repro.client import ClientIdentity
from repro.core.golden import canonical_json, snapshot_digest
from repro.scanner.campaign import (
    LiveScanCampaign,
    LiveScanConfig,
    ReplayScanCampaign,
    ScannerIdentity,
)
from repro.scanner.limits import ScanRateLimiter, TraversalBudget
from repro.server import TcpServerHost
from repro.transport.capture import CaptureRecorder, read_corpus, write_corpus
from repro.util.ipaddr import parse_ipv4
from repro.util.rng import DeterministicRng
from repro.util.simtime import parse_utc
from repro.x509.builder import make_self_signed

from tests.server.helpers import build_server

LOOPBACK = parse_ipv4("127.0.0.1")


def _free_port() -> int:
    import socket as socketlib

    probe = socketlib.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def _identity(rng, keys) -> ScannerIdentity:
    certificate = make_self_signed(
        keys,
        common_name="research-scanner",
        application_uri="urn:repro:tests:replay-scan",
        not_before=parse_utc("2020-01-01"),
        hash_name="sha256",
        rng=rng.substream("scanner-cert"),
    )
    return ScannerIdentity(
        ClientIdentity(
            application_uri="urn:repro:tests:replay-scan",
            application_name=(
                "Research Scanner (contact: research@example.org)"
            ),
            certificate=certificate,
            private_key=keys.private,
        )
    )


@pytest.fixture()
def replay_rng():
    return DeterministicRng(31337, "replay-scan-tests")


@pytest.fixture()
def scanner(replay_rng, rsa_1024):
    return _identity(replay_rng, rsa_1024)


def _record_loopback(replay_rng, scanner, rsa_1024, targets_for):
    """Run one recorded live campaign; returns (corpus, snapshot)."""
    recorder = CaptureRecorder({"seed": 31337})
    campaign = LiveScanCampaign(
        scanner,
        replay_rng.substream("campaign"),
        config=LiveScanConfig(workers=4, traverse=True),
        limiter=ScanRateLimiter(
            rate_per_s=10_000, per_host_interval_s=0.0
        ),
        budget=TraversalBudget(inter_request_delay_s=0.0),
        recorder=recorder,
    )
    server = build_server(
        DeterministicRng(99, "replay-scan-profile"), rsa_1024
    )
    with TcpServerHost(server) as (_, port):
        snapshot = campaign.run(
            targets_for(port), label="2020-08-30"
        )
    return recorder.corpus(), snapshot


class TestLoopbackRoundTrip:
    def test_replay_reproduces_live_snapshot_byte_for_byte(
        self, replay_rng, scanner, rsa_1024, tmp_path
    ):
        corpus, live = _record_loopback(
            replay_rng,
            scanner,
            rsa_1024,
            lambda port: [(LOOPBACK, port), (LOOPBACK, _free_port())],
        )
        # Serialize through the real on-disk format, like a CI corpus.
        path = tmp_path / "corpus.jsonl.gz"
        write_corpus(path, corpus)
        replayed = ReplayScanCampaign(
            read_corpus(path),
            scanner,
            replay_rng.substream("campaign"),
            budget=TraversalBudget(inter_request_delay_s=0.0),
            traverse=True,
        ).run()

        assert len(live.records) == 2
        # Canonical order is (address, port): the refused free port
        # may sort before or after the server port.
        live_grab = next(r for r in live.records if r.tcp_open)
        refused = next(r for r in live.records if not r.tcp_open)
        assert refused.error_category in ("refused", "unreachable")
        assert live_grab.is_opcua and live_grab.session.success
        assert live_grab.nodes is not None  # traversal on the wire
        # Record-level: every field, including timestamps, durations,
        # byte counters, and the refused target's error taxonomy.
        for live_record, replay_record in zip(
            live.records, replayed.records
        ):
            assert canonical_json(
                live_record.to_json_dict()
            ) == canonical_json(replay_record.to_json_dict())
        # Snapshot-level: counters come from the corpus metadata.
        assert snapshot_digest(replayed) == snapshot_digest(live)

    def test_corpus_metadata_restores_scan_settings(
        self, replay_rng, scanner, rsa_1024
    ):
        corpus, live = _record_loopback(
            replay_rng,
            scanner,
            rsa_1024,
            lambda port: [(LOOPBACK, port)],
        )
        assert corpus.meta["label"] == "2020-08-30"
        assert corpus.meta["traverse"] is True
        assert corpus.meta["budget"]["inter_request_delay_s"] == 0.0
        # The campaign defaults to the recorded settings: no explicit
        # budget/traverse needed for a faithful replay.
        replayed = ReplayScanCampaign(
            corpus, scanner, replay_rng.substream("campaign")
        ).run()
        assert snapshot_digest(replayed) == snapshot_digest(live)

    def test_replay_sends_no_packets(
        self, replay_rng, scanner, rsa_1024, monkeypatch
    ):
        """The replay lane must never touch a socket."""
        corpus, _ = _record_loopback(
            replay_rng,
            scanner,
            rsa_1024,
            lambda port: [(LOOPBACK, port)],
        )
        import socket as socketlib

        def _refuse(*args, **kwargs):
            raise AssertionError("replay opened a real socket")

        monkeypatch.setattr(socketlib.socket, "connect", _refuse)
        monkeypatch.setattr(socketlib.socket, "connect_ex", _refuse)
        snapshot = ReplayScanCampaign(
            corpus, scanner, replay_rng.substream("campaign")
        ).run()
        assert snapshot.records[0].is_opcua
