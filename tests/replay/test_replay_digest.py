"""The committed capture corpus replays to its pinned digest.

This is the replay lane's ``tests/golden``: a real loopback scan —
an OPC UA engine, a junk banner service, a refused port — was
recorded once, and every CI run re-drives the full protocol stack
from that recording.  A digest mismatch means the stack now produces
different records from identical traffic; a :class:`ReplayMismatch`
means it now *sends* different bytes.  Both are regressions (or
intentional changes that must regenerate the fixture — see
``regenerate.py``).
"""

from __future__ import annotations

import pytest

from repro.core.golden import snapshot_digest
from repro.scanner.executor import build_executor

from tests.replay.fixture import LABEL, replay_campaign

pytestmark = pytest.mark.golden


def test_corpus_matches_committed_content_digest(
    committed_corpus, committed_replay_digests
):
    assert (
        committed_corpus.digest()
        == committed_replay_digests["corpus_digest"]
    )
    assert (
        len(committed_corpus.targets)
        == committed_replay_digests["targets"]
    )


def test_serial_replay_matches_committed_digest(
    committed_corpus, committed_replay_digests, rsa_1024
):
    snapshot = replay_campaign(committed_corpus, rsa_1024).run()
    assert snapshot.date == LABEL
    assert snapshot_digest(snapshot) == committed_replay_digests["digest"]


def test_replay_covers_all_three_outcomes(committed_corpus, rsa_1024):
    """The fixture spans success, junk, and refusal — keep it that way."""
    snapshot = replay_campaign(committed_corpus, rsa_1024).run()
    assert len(snapshot.records) == 3
    outcomes = {
        (record.tcp_open, record.is_opcua)
        for record in snapshot.records
    }
    assert outcomes == {(True, True), (True, False), (False, False)}
    accessible = [
        record
        for record in snapshot.records
        if record.anonymous_accessible()
    ]
    assert len(accessible) == 1
    assert accessible[0].nodes is not None  # traversal was replayed


@pytest.mark.parametrize("backend", ["thread", "process", "async"])
def test_parallel_replay_is_byte_identical(
    committed_corpus, committed_replay_digests, rsa_1024, backend
):
    """Replay fans out like any campaign; backends must not matter."""
    executor = build_executor(backend, 4)
    snapshot = replay_campaign(
        committed_corpus, rsa_1024, executor=executor
    ).run()
    assert snapshot_digest(snapshot) == committed_replay_digests["digest"]
