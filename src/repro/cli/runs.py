"""``repro runs``: the run registry over a study store."""

from __future__ import annotations

from repro.cli.options import add_store, require_catalog


def register(commands) -> None:
    runs = commands.add_parser(
        "runs",
        help="list stored studies (key, seed, sweeps, provenance)",
    )
    add_store(runs)
    runs.add_argument(
        "--key",
        metavar="KEY",
        default=None,
        help="describe one stored study in full instead of listing all",
    )
    runs.set_defaults(handler=cmd_runs)


def cmd_runs(args) -> int:
    from repro.reporting.summary import render_runs

    catalog = require_catalog(args, "runs lists stored studies")
    if args.key:
        try:
            info = catalog.describe(args.key)
        except KeyError as exc:
            raise SystemExit(f"repro: error: {exc.args[0]}")
        print(f"key:      {info.key}")
        print(f"seed:     {info.seed}")
        print(f"sweeps:   {info.sweeps} ({', '.join(info.sweep_dates)})")
        print(f"records:  {info.records}")
        print(f"spec:     {info.spec_rows} rows / {info.spec_servers} servers")
        print(f"digest:   {info.digest}")
        if info.merge is not None:
            print(
                f"merged:   {info.merged_from_shards} shards "
                f"(manifest {info.merge.get('manifest_digest', '')[:12]})"
            )
        return 0
    print(render_runs(catalog.list_runs(), catalog.registry_digest()))
    return 0
