"""repro — reproduction of "Easing the Conscience with OPC UA:
An Internet-Wide Study on Insecure Deployments" (IMC 2020).

A from-scratch OPC UA stack (binary encoding, UA-TCP transport,
secure channels, server, client), a simulated IPv4 Internet, a
zmap/zgrab2-style scan pipeline, a ground-truth deployment population
encoding the paper's published distributions, and the analyses that
regenerate every table and figure.

Quickstart::

    from repro import Study, StudyConfig, run_experiment

    result = Study(StudyConfig(seed=20200830)).run()
    print(run_experiment("fig3", result).render())
"""

from repro.core.config import StudyConfig
from repro.core.study import Study, StudyResult, default_study_result
from repro.core.experiments import EXPERIMENTS, run_experiment

__version__ = "1.0.0"

__all__ = [
    "EXPERIMENTS",
    "Study",
    "StudyConfig",
    "StudyResult",
    "default_study_result",
    "run_experiment",
    "__version__",
]
