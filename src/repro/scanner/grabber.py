"""Per-host OPC UA grab (the paper's zgrab2 OPC UA module).

Sequence for each open port:

1. TCP connect + HEL/ACK — failures mean "not OPC UA" (the paper saw
   OPC UA on only 0.5 ‰ of hosts with TCP/4840 open).
2. None-policy discovery channel, GetEndpoints — yields the endpoint
   descriptions and the server certificate.
3. Secure-channel probe: OpenSecureChannel on the *most secure*
   offered (mode, policy) with our self-signed certificate — strict
   servers reject it here (Table 2's "Secure Channel" column).
4. Anonymous session attempt on the preferred anonymous endpoint.
5. If accessible: namespace read, SoftwareVersion read, and the
   budgeted address-space traversal.
6. Secure re-grab: complete a full Sign/SignAndEncrypt channel at the
   best advertised pair and run one protected service round trip,
   recording the negotiated ``(policy, mode)`` — or why negotiation
   failed — on the session attempt.
"""

from __future__ import annotations

from repro.client import (
    CONNECTION_FAILURE_CATEGORIES,
    ClientIdentity,
    ServiceFaultError,
    TransportRejectedError,
    UaClient,
    UaClientError,
    categorize_error,
)
from repro.netsim.net import ConnectionRefused, HostDown, NetworkView, SimNetwork
from repro.scanner.limits import TraversalBudget
from repro.scanner.ranking import most_secure_endpoint, weakest_anonymous_endpoint
from repro.scanner.records import (
    CertificateInfo,
    EndpointRecord,
    HostRecord,
    SecureChannelAttempt,
    SessionAttempt,
)
from repro.scanner.traversal import traverse_address_space
from repro.secure.negotiation import ChannelSecurity
from repro.secure.policies import POLICY_NONE
from repro.server.addressspace import NodeIds
from repro.transport.messages import TransportError
from repro.transport.replay import ReplayError
from repro.uabin.enums import UserTokenType
from repro.uabin.statuscodes import lookup_status
from repro.util.ipaddr import format_endpoint_host
from repro.util.rng import DeterministicRng
from repro.util.simtime import format_utc


def grab_host(
    network: SimNetwork | NetworkView,
    address: int,
    port: int,
    identity: ClientIdentity,
    rng: DeterministicRng,
    budget: TraversalBudget | None = None,
    via_reference: bool = False,
    traverse: bool = True,
) -> HostRecord:
    """Run the full grab sequence against one host/port.

    ``network`` may be the shared :class:`SimNetwork` or a per-task
    :class:`NetworkView`; the campaign engine passes views so parallel
    grabs never race on the sweep clock.  All randomness comes from
    pure substreams of ``rng`` keyed by address and port (and, through
    the sweep stream's namespace, the sweep date), so the record is a
    function of ``(seed, date, address, port)`` alone — never of grab
    ordering.
    """
    host = network.host(address)
    record = HostRecord(
        ip=address,
        port=port,
        asn=host.asn if host is not None else None,
        timestamp=format_utc(network.clock.now()),
        via_reference=via_reference,
    )
    start_time = network.clock.now()

    try:
        socket = network.connect(address, port)
    except (ConnectionRefused, HostDown) as exc:
        record.error = str(exc)
        record.error_category = categorize_error(exc)
        return record
    record.tcp_open = True

    endpoint_url = f"opc.tcp://{format_endpoint_host(address)}:{port}/"
    client = UaClient(
        socket, identity, rng.substream(f"grab-{address}-{port}"), endpoint_url
    )

    try:
        try:
            client.hello()
            client.open_secure_channel()
            endpoints = client.get_endpoints()
        except (UaClientError, Exception) as exc:
            if isinstance(exc, ReplayError):
                # Replay divergence is a harness failure (stale corpus
                # or wrong replay configuration), never a scan
                # observation — recording it as "not OPC UA" would
                # fabricate a result the wire never produced.
                raise
            record.error = f"not OPC UA: {exc}"
            # A connection-level failure (timeout, reset) is not
            # evidence about the protocol; record the category so
            # analyses can separate silent hosts from hosts that
            # answered with a non-OPC-UA payload.
            category = categorize_error(exc)
            if category in CONNECTION_FAILURE_CATEGORIES:
                record.error_category = category
            record.scan_duration_s = (
                network.clock.now() - start_time
            ).total_seconds()
            record.scan_bytes = socket.bytes_sent
            return record

        record.is_opcua = True
        _fill_endpoint_records(record, endpoints)

        # FindServers yields the responding application's own
        # description; the endpoint list of a discovery server only
        # describes *other* applications, so attribution must not rely
        # on it.
        try:
            servers = client.find_servers()
            if servers:
                own = servers[0]
                record.application_uri = own.application_uri
                record.product_uri = own.product_uri
                record.application_type = int(own.application_type)
        except (UaClientError, TransportError):
            pass  # FindServers is optional; endpoint fallback stands

        # Secure-channel probe with our self-signed certificate.
        record.secure_channel = _probe_secure_channel(
            network, address, port, identity, rng, record
        )

        # Anonymous session attempt.
        record.session = _attempt_anonymous_session(
            network, address, port, identity, rng, record, budget, traverse
        )

        # Secure re-grab at the best advertised pair.
        _negotiate_security(network, address, port, identity, rng, record)

        record.scan_duration_s = (
            network.clock.now() - start_time
        ).total_seconds()
        record.scan_bytes = socket.bytes_sent
        return record
    finally:
        _close_quietly(socket)


def _fill_endpoint_records(record: HostRecord, endpoints) -> None:
    for endpoint in endpoints:
        record.endpoints.append(
            EndpointRecord(
                endpoint_url=endpoint.endpoint_url,
                security_mode=int(endpoint.security_mode),
                security_policy_uri=endpoint.security_policy_uri,
                token_types=sorted(int(t) for t in endpoint.token_types()),
                security_level=endpoint.security_level,
            )
        )
        server = endpoint.server
        if record.application_uri is None and server.application_uri:
            record.application_uri = server.application_uri
            record.product_uri = server.product_uri
            record.application_type = int(server.application_type)
        if record.certificate is None and endpoint.server_certificate:
            record.certificate = CertificateInfo.from_der(
                endpoint.server_certificate
            )


def _probe_secure_channel(
    network, address, port, identity, rng, record
) -> SecureChannelAttempt | None:
    choice = most_secure_endpoint(record.endpoints)
    if choice is None:
        return None  # only None endpoints; nothing to probe
    endpoint, policy = choice
    cert_der = (
        bytes.fromhex(record.certificate.der_hex) if record.certificate else None
    )
    if cert_der is None:
        return SecureChannelAttempt(
            security_policy_uri=policy.uri,
            security_mode=int(endpoint.mode),
            success=False,
            error_reason="no server certificate available",
        )
    socket = None
    try:
        socket = network.connect(address, port)
        client = UaClient(
            socket,
            identity,
            rng.substream(f"sc-{address}-{port}"),
            f"opc.tcp://{format_endpoint_host(address)}:{port}/",
        )
        client.hello()
        client.open_secure_channel(
            ChannelSecurity.for_endpoint(policy, endpoint.mode, identity, cert_der)
        )
        client.close()
        return SecureChannelAttempt(
            security_policy_uri=policy.uri,
            security_mode=int(endpoint.mode),
            success=True,
        )
    except TransportRejectedError as exc:
        return SecureChannelAttempt(
            security_policy_uri=policy.uri,
            security_mode=int(endpoint.mode),
            success=False,
            error_status=exc.status.value,
            error_reason=exc.reason,
        )
    except (UaClientError, TransportError, ConnectionRefused, HostDown) as exc:
        return SecureChannelAttempt(
            security_policy_uri=policy.uri,
            security_mode=int(endpoint.mode),
            success=False,
            error_reason=str(exc),
        )
    finally:
        _close_quietly(socket)


def _attempt_anonymous_session(
    network, address, port, identity, rng, record, budget, traverse=True
) -> SessionAttempt:
    choice = weakest_anonymous_endpoint(record.endpoints)
    if choice is None:
        # No anonymous token advertised: the paper counts these as
        # rejected by authentication without attempting credentials.
        return SessionAttempt(attempted=False)
    endpoint, policy = choice

    # If the secure-channel probe already failed and there is no None
    # endpoint, the session cannot be attempted either.
    if (
        policy is not POLICY_NONE
        and record.secure_channel is not None
        and not record.secure_channel.success
    ):
        return SessionAttempt(
            attempted=True,
            token_type=int(UserTokenType.ANONYMOUS),
            security_mode=int(endpoint.mode),
            security_policy_uri=policy.uri,
            success=False,
            error_status=record.secure_channel.error_status,
        )

    cert_der = (
        bytes.fromhex(record.certificate.der_hex) if record.certificate else None
    )
    attempt = SessionAttempt(
        attempted=True,
        token_type=int(UserTokenType.ANONYMOUS),
        security_mode=int(endpoint.mode),
        security_policy_uri=policy.uri,
    )
    socket = None
    try:
        try:
            socket = network.connect(address, port)
            client = UaClient(
                socket,
                identity,
                rng.substream(f"session-{address}-{port}"),
                f"opc.tcp://{format_endpoint_host(address)}:{port}/",
            )
            client.hello()
            client.open_secure_channel(
                ChannelSecurity.for_endpoint(
                    policy, endpoint.mode, identity, cert_der
                )
            )
            client.create_session()
            client.activate_session()
            attempt.success = True
        except ServiceFaultError as exc:
            # The fault status code is the whole story here (and the
            # simulated lane exercises this path, whose bytes the
            # golden digests pin) — no category needed.
            attempt.error_status = exc.status.value
            return attempt
        except TransportRejectedError as exc:
            # Previously erased into error_status=None: an ERR frame
            # carries a status code worth keeping (Table 2 separates
            # secure-channel rejections from authentication ones).
            attempt.error_status = exc.status.value
            attempt.error_category = exc.category
            return attempt
        except (
            UaClientError,
            TransportError,
            ConnectionRefused,
            HostDown,
        ) as exc:
            # Connection-level failure: there is no status code, but
            # "timed out" and "connection refused" are different facts
            # — record which one instead of a bare None.
            attempt.error_category = categorize_error(exc)
            return attempt

        # Anonymous access worked: collect namespaces, software
        # version, and (optionally) the budgeted traversal.  A failure
        # here must not masquerade as a clean grab — mark the attempt
        # partial — and the session is closed regardless, so live
        # servers are not left holding scanner sessions.
        try:
            _collect_session_details(
                client, network, record, budget, socket, traverse
            )
        except (UaClientError, TransportError) as exc:
            attempt.details_error = f"{categorize_error(exc)}: {exc}"
        finally:
            try:
                client.close_session()
            except (UaClientError, TransportError, ConnectionRefused):
                pass  # best-effort: the transport may already be gone
        return attempt
    finally:
        _close_quietly(socket)


def _negotiate_security(network, address, port, identity, rng, record) -> None:
    """Secure re-grab: complete a channel at the best advertised pair.

    The probe (step 3) only proves the server *answers* an
    OpenSecureChannel; this step completes the negotiation — nonce
    exchange, key derivation, and one protected service round trip —
    and records the ``(policy, mode)`` pair that actually worked on
    the session attempt.  When the probe already failed, its error is
    the negotiation outcome (re-connecting would only repeat the same
    channel-level rejection), so no extra connection is opened.
    """
    choice = most_secure_endpoint(record.endpoints)
    if choice is None:
        return  # only None endpoints: nothing to negotiate
    endpoint, policy = choice
    session = record.session
    if session is None:
        return
    probe = record.secure_channel
    if probe is not None and not probe.success:
        if probe.error_status is not None:
            session.negotiation_error = lookup_status(probe.error_status).name
        else:
            session.negotiation_error = probe.error_reason
        return
    cert_der = (
        bytes.fromhex(record.certificate.der_hex) if record.certificate else None
    )
    if cert_der is None:
        session.negotiation_error = "no server certificate available"
        return
    socket = None
    client = None
    try:
        socket = network.connect(address, port)
        client = UaClient(
            socket,
            identity,
            rng.substream(f"negotiate-{address}-{port}"),
            f"opc.tcp://{format_endpoint_host(address)}:{port}/",
        )
        client.hello()
        client.open_secure_channel(
            ChannelSecurity.for_endpoint(policy, endpoint.mode, identity, cert_der)
        )
        # One protected round trip proves both symmetric keysets agree.
        client.get_endpoints()
        session.negotiated_policy_uri = policy.uri
        session.negotiated_mode = int(endpoint.mode)
    except TransportRejectedError as exc:
        session.negotiation_error = exc.status.name
    except (UaClientError, TransportError, ConnectionRefused, HostDown) as exc:
        session.negotiation_error = categorize_error(exc)
    else:
        # Channel proven; exercising a session over it (signature
        # proofs both ways) is best-effort — an authentication
        # rejection here is the session attempt's story, not a
        # negotiation failure.
        try:
            if UserTokenType.ANONYMOUS in endpoint.token_type_set():
                client.create_session()
                client.activate_session()
                client.close_session()
            client.close()
        except (UaClientError, TransportError):
            pass
    finally:
        _close_quietly(socket)


def _close_quietly(socket) -> None:
    """Release a transport without letting teardown mask the result.

    Simulated sockets make this a no-op flag flip; live transports
    tear down a real TCP connection here.
    """
    if socket is None:
        return
    close = getattr(socket, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:
        pass


def _collect_session_details(
    client, network, record, budget, socket, traverse
) -> None:
    values = client.read_values(
        [NodeIds.Server_NamespaceArray, NodeIds.Server_SoftwareVersion]
    )
    if values and values[0].value is not None and values[0].value.value:
        record.namespaces = list(values[0].value.value)
    if len(values) > 1 and values[1].value is not None:
        record.software_version = values[1].value.value
    if traverse:
        record.nodes = traverse_address_space(
            client,
            network.clock,
            budget or TraversalBudget(),
            socket=socket,
        )
